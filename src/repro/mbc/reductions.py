"""One-hop and two-hop reductions (the "maximum biclique preserved subgraph").

Before each Branch&Bound run, vertices that provably cannot belong to a
biclique with at least ``tau_p`` upper and ``tau_w`` lower vertices are
removed (Lyu et al. [5]):

- **one-hop (degree) reduction** — an upper vertex of such a biclique
  has degree ≥ ``tau_w`` and a lower vertex degree ≥ ``tau_p``;
  removal cascades (this is the (``tau_w``, ``tau_p``)-core in local
  orientation).
- **two-hop (wedge) reduction** — an upper vertex needs at least
  ``tau_p − 1`` *other* upper vertices sharing ≥ ``tau_w`` neighbors
  with it (and symmetrically for lower vertices).

Two-hop counting costs one wedge enumeration, so it is skipped when the
estimated wedge count exceeds ``wedge_budget``.

Like the Branch&Bound, the reductions run on any compute kernel (see
:mod:`repro.kernel`): the packed kernels reuse the per-extraction
packed adjacency (:func:`repro.kernel.pack_local`) and replace the
degree cascade and wedge enumeration with the mask-narrowing passes of
:mod:`repro.kernel.ops` (``"bitset"``) or the in-place word-array
peeling of :mod:`repro.kernel.words` (``"words"``).  All kernels kill
vertices in the same order and compute the same survivor fixpoint, so
the reduced subgraph — and the ``reduction`` prune counter derived from
it — is identical.
"""

from __future__ import annotations

from collections import Counter, deque

from repro.graph.subgraph import LocalGraph
from repro.kernel import is_packed_kernel, resolve_kernel
from repro.kernel.ops import reduce_alive
from repro.kernel.packed import iter_bits, pack_local
from repro.kernel.words import reduce_alive_words

#: Default cap on enumerated wedges before the two-hop rule is skipped.
DEFAULT_WEDGE_BUDGET = 500_000


def _one_hop_survivors(
    local: LocalGraph,
    tau_p: int,
    tau_w: int,
    upper_alive: list[bool],
    lower_alive: list[bool],
) -> None:
    """Cascade degree-based removals in place on the alive masks."""
    adj_upper = local.adj_upper
    adj_lower = local.adj_lower
    deg_upper = [
        sum(lower_alive[v] for v in adj_upper[u]) if upper_alive[u] else 0
        for u in range(local.num_upper)
    ]
    deg_lower = [
        sum(upper_alive[u] for u in adj_lower[v]) if lower_alive[v] else 0
        for v in range(local.num_lower)
    ]
    queue: deque[tuple[bool, int]] = deque()
    for u in range(local.num_upper):
        if upper_alive[u] and deg_upper[u] < tau_w:
            upper_alive[u] = False
            queue.append((True, u))
    for v in range(local.num_lower):
        if lower_alive[v] and deg_lower[v] < tau_p:
            lower_alive[v] = False
            queue.append((False, v))
    while queue:
        is_upper, idx = queue.popleft()
        if is_upper:
            for v in adj_upper[idx]:
                if not lower_alive[v]:
                    continue
                deg_lower[v] -= 1
                if deg_lower[v] < tau_p:
                    lower_alive[v] = False
                    queue.append((False, v))
        else:
            for u in adj_lower[idx]:
                if not upper_alive[u]:
                    continue
                deg_upper[u] -= 1
                if deg_upper[u] < tau_w:
                    upper_alive[u] = False
                    queue.append((True, u))


def _two_hop_filter(
    adjacency: list[set[int]],
    other_adjacency: list[set[int]],
    alive: list[bool],
    other_alive: list[bool],
    need_partners: int,
    need_common: int,
) -> bool:
    """Drop vertices lacking ``need_partners − 1`` peers with
    ``need_common`` shared neighbors.  Returns True if anything died."""
    changed = False
    for x in range(len(adjacency)):
        if not alive[x]:
            continue
        partner_common: Counter[int] = Counter()
        for mid in adjacency[x]:
            if not other_alive[mid]:
                continue
            for y in other_adjacency[mid]:
                if alive[y]:
                    partner_common[y] += 1
        qualified = sum(
            1
            for y, count in partner_common.items()
            if count >= need_common and y != x
        )
        if qualified + 1 < need_partners:
            alive[x] = False
            changed = True
    return changed


def reduce_preserving_maximum(
    local: LocalGraph,
    tau_p: int,
    tau_w: int,
    use_two_hop: bool = True,
    wedge_budget: int = DEFAULT_WEDGE_BUDGET,
    kernel: str | None = None,
) -> LocalGraph:
    """The subgraph preserving all bicliques of shape ≥ (tau_p × tau_w).

    Applies the one-hop fixpoint, optionally one round of two-hop
    filtering on each side, then the one-hop fixpoint again.  The
    result is a re-compacted :class:`LocalGraph`; the anchor survives
    in ``q_local`` when it is not pruned.  ``kernel`` picks the compute
    kernel (None defers to :func:`repro.kernel.default_kernel`); both
    kernels produce the identical reduced subgraph.
    """
    resolved = resolve_kernel(kernel)
    if is_packed_kernel(resolved):
        packed = pack_local(local)
        masked_reduce = (
            reduce_alive_words if resolved == "words" else reduce_alive
        )
        alive_u, alive_l = masked_reduce(
            packed,
            tau_p,
            tau_w,
            packed.all_upper,
            packed.all_lower,
            use_two_hop=use_two_hop,
            wedge_budget=wedge_budget,
        )
        return local.restrict(
            [packed.upper_order[b] for b in iter_bits(alive_u)],
            [packed.lower_order[b] for b in iter_bits(alive_l)],
        )

    upper_alive = [True] * local.num_upper
    lower_alive = [True] * local.num_lower
    _one_hop_survivors(local, tau_p, tau_w, upper_alive, lower_alive)

    if use_two_hop:
        adj_upper = local.adj_upper
        adj_lower = local.adj_lower
        wedges = sum(
            len(adj_lower[v]) ** 2
            for v in range(local.num_lower)
            if lower_alive[v]
        ) + sum(
            len(adj_upper[u]) ** 2
            for u in range(local.num_upper)
            if upper_alive[u]
        )
        if wedges <= wedge_budget:
            changed = _two_hop_filter(
                adj_upper,
                adj_lower,
                upper_alive,
                lower_alive,
                tau_p,
                tau_w,
            )
            changed |= _two_hop_filter(
                adj_lower,
                adj_upper,
                lower_alive,
                upper_alive,
                tau_w,
                tau_p,
            )
            if changed:
                _one_hop_survivors(
                    local, tau_p, tau_w, upper_alive, lower_alive
                )

    return local.restrict(
        [u for u, ok in enumerate(upper_alive) if ok],
        [v for v, ok in enumerate(lower_alive) if ok],
    )
