"""Brute-force reference implementations (test oracles).

These run in exponential time and are only meant for small graphs in
the test suite.  They enumerate *closed* bicliques — pairs
``(S, common(S))`` where ``common(S)`` is the set of vertices adjacent
to every vertex of ``S`` — which dominate every biclique in any
size-constrained maximization, so maxima computed over them are exact.
"""

from __future__ import annotations

from itertools import combinations

from repro.graph.bipartite import BipartiteGraph, Side

#: Refuse brute force beyond this many subset-side vertices.
MAX_SUBSET_SIDE = 20


def _common_neighbors(
    graph: BipartiteGraph, side: Side, vertices: frozenset[int]
) -> frozenset[int]:
    iterator = iter(vertices)
    first = next(iterator)
    common = set(graph.neighbor_set(side, first))
    for v in iterator:
        common &= graph.neighbor_set(side, v)
        if not common:
            break
    return frozenset(common)


def _subset_side(graph: BipartiteGraph) -> Side:
    side = (
        Side.UPPER if graph.num_upper <= graph.num_lower else Side.LOWER
    )
    if graph.num_vertices_on(side) > MAX_SUBSET_SIDE:
        raise ValueError(
            f"graph too large for brute force: min layer has "
            f"{graph.num_vertices_on(side)} > {MAX_SUBSET_SIDE} vertices"
        )
    return side


def all_closed_bicliques(
    graph: BipartiteGraph,
) -> list[tuple[frozenset[int], frozenset[int]]]:
    """All closed bicliques as ``(upper_ids, lower_ids)`` pairs.

    For every non-empty subset ``S`` of the smaller layer with a
    non-empty common neighborhood ``T``, the pair ``(S, T)`` is
    emitted (oriented back to upper/lower order).  Every biclique of
    the graph is contained in one of these with the same subset-side
    vertex set.
    """
    side = _subset_side(graph)
    n = graph.num_vertices_on(side)
    results = []
    for size in range(1, n + 1):
        for subset in combinations(range(n), size):
            s = frozenset(subset)
            t = _common_neighbors(graph, side, s)
            if not t:
                continue
            if side is Side.UPPER:
                results.append((s, t))
            else:
                results.append((t, s))
    return results


def max_biclique_brute(
    graph: BipartiteGraph, tau_u: int = 1, tau_l: int = 1
) -> tuple[frozenset[int], frozenset[int]] | None:
    """The maximum biclique under layer-size constraints, or None.

    Ties are broken arbitrarily; callers should compare sizes, not
    vertex sets.
    """
    best = None
    best_size = 0
    for upper, lower in all_closed_bicliques(graph):
        if len(upper) < tau_u or len(lower) < tau_l:
            continue
        size = len(upper) * len(lower)
        if size > best_size:
            best = (upper, lower)
            best_size = size
    return best


def personalized_max_brute(
    graph: BipartiteGraph, side: Side, q: int, tau_u: int = 1, tau_l: int = 1
) -> tuple[frozenset[int], frozenset[int]] | None:
    """The personalized maximum biclique of ``q`` (Definition 3), or None.

    Exhaustive over closed bicliques; a closed biclique not containing
    ``q`` may still witness a ``q``-containing one when ``q`` is
    adjacent to the full opposite side, so membership is checked after
    augmenting with ``q`` where possible.
    """
    best = None
    best_size = 0
    for upper, lower in all_closed_bicliques(graph):
        if side is Side.UPPER:
            own, other = upper, lower
        else:
            own, other = lower, upper
        if q not in own:
            if other <= graph.neighbor_set(side, q):
                own = own | {q}
            else:
                continue
        upper_set, lower_set = (
            (own, other) if side is Side.UPPER else (other, own)
        )
        if len(upper_set) < tau_u or len(lower_set) < tau_l:
            continue
        size = len(upper_set) * len(lower_set)
        if size > best_size:
            best = (upper_set, lower_set)
            best_size = size
    return best
