"""The greedy initial solution ``C*_0`` of the progressive framework.

The paper (Section IV) seeds the search with a biclique grown greedily
from the query vertex: "it first initializes C*_0 as {q} and then
iteratively adds a vertex that maximizes |C*_0|".  For an anchored
two-hop subgraph the anchor is adjacent to every local lower vertex, so
``({q}, L(H_q))`` is already a biclique and the greedy phase only needs
to trade lower vertices for additional upper vertices.
"""

from __future__ import annotations

from repro.graph.subgraph import LocalGraph


def greedy_biclique(
    local: LocalGraph,
    tau_p: int = 1,
    tau_w: int = 1,
) -> tuple[frozenset[int], frozenset[int]] | None:
    """A greedily grown biclique in local ids, or None.

    Starts from ``({anchor}, N(anchor))`` (or the highest-degree upper
    vertex when the graph is unanchored) and repeatedly adds the upper
    vertex whose addition maximizes, lexicographically, (constraint
    satisfaction, edge count).  Returns None when the greedy result
    violates the (tau_p, tau_w) constraints — callers then start the
    search without a seed.
    """
    if local.num_upper == 0 or local.num_lower == 0:
        return None
    if local.q_local is not None:
        start = local.q_local
    else:
        start = max(range(local.num_upper), key=local.degree_upper)
    upper = {start}
    lower = set(local.adj_upper[start])
    if not lower:
        return None

    candidates = set(range(local.num_upper)) - upper
    while candidates:
        best_u = None
        best_key = _objective(len(upper), len(lower), tau_p, tau_w)
        for u in candidates:
            new_lower_size = len(lower & local.adj_upper[u])
            key = _objective(len(upper) + 1, new_lower_size, tau_p, tau_w)
            if key > best_key:
                best_key = key
                best_u = u
        if best_u is None:
            break
        upper.add(best_u)
        lower &= local.adj_upper[best_u]
        candidates.discard(best_u)
        candidates = {u for u in candidates if lower & local.adj_upper[u]}

    if len(upper) < tau_p or len(lower) < tau_w:
        return None
    return frozenset(upper), frozenset(lower)


def _objective(
    num_upper: int, num_lower: int, tau_p: int, tau_w: int
) -> tuple[int, int]:
    """Lexicographic greedy objective: satisfy constraints, then size."""
    satisfied = min(num_upper, tau_p) + min(num_lower, tau_w)
    return (satisfied, num_upper * num_lower)
