"""The greedy initial solution ``C*_0`` of the progressive framework.

The paper (Section IV) seeds the search with a biclique grown greedily
from the query vertex: "it first initializes C*_0 as {q} and then
iteratively adds a vertex that maximizes |C*_0|".  For an anchored
two-hop subgraph the anchor is adjacent to every local lower vertex, so
``({q}, L(H_q))`` is already a biclique and the greedy phase only needs
to trade lower vertices for additional upper vertices.

Every compute kernel (see :mod:`repro.kernel`) grows the seed over the
same defined candidate order — stable degree-descending, ties by
ascending local id — so they pick identical vertices on ties and return
identical seeds; that order is exactly the packed bit order of
:func:`repro.kernel.pack_local`, which lets the packed variant scan
candidate masks in ascending bit order.  Because the seed is
kernel-independent it is memoized per extraction
(:func:`repro.kernel.batch.cached_seed`), so batched requests and index
builds that revisit a floor pair pay the greedy cost once.
"""

from __future__ import annotations

from repro.graph.subgraph import LocalGraph
from repro.kernel import is_packed_kernel, resolve_kernel
from repro.kernel.batch import cached_seed
from repro.kernel.packed import pack_local


def greedy_biclique(
    local: LocalGraph,
    tau_p: int = 1,
    tau_w: int = 1,
    kernel: str | None = None,
) -> tuple[frozenset[int], frozenset[int]] | None:
    """A greedily grown biclique in local ids, or None.

    Starts from ``({anchor}, N(anchor))`` (or the highest-degree upper
    vertex when the graph is unanchored) and repeatedly adds the upper
    vertex whose addition maximizes, lexicographically, (constraint
    satisfaction, edge count).  Returns None when the greedy result
    violates the (tau_p, tau_w) constraints — callers then start the
    search without a seed.  ``kernel`` picks the compute kernel; both
    kernels return the identical seed.
    """
    if local.num_upper == 0 or local.num_lower == 0:
        return None
    # The seed is a pure function of (local, tau_p, tau_w) — identical
    # across kernels — so it is memoized on the extraction: batched
    # requests sharing H_q and repeated floor pairs inside one index
    # build grow it once (see repro.kernel.batch).
    if is_packed_kernel(resolve_kernel(kernel)):
        return cached_seed(
            local, tau_p, tau_w, lambda: _greedy_bitset(local, tau_p, tau_w)
        )
    return cached_seed(
        local, tau_p, tau_w, lambda: _greedy_set(local, tau_p, tau_w)
    )


def _greedy_set(
    local: LocalGraph, tau_p: int, tau_w: int
) -> tuple[frozenset[int], frozenset[int]] | None:
    adj_upper = local.adj_upper
    order = sorted(
        range(local.num_upper), key=local.degree_upper, reverse=True
    )
    start = local.q_local if local.q_local is not None else order[0]
    upper = {start}
    lower = set(adj_upper[start])
    if not lower:
        return None

    candidates = [u for u in order if u != start]
    while candidates:
        num_upper = len(upper)
        # _objective, inlined in the scan (it dominates greedy cost):
        # satisfaction of a candidate round is constant, so the
        # comparison reduces to (satisfied, product) done on ints.
        grown_sat = min(num_upper + 1, tau_p)
        lower_size = len(lower)
        best_sat = min(num_upper, tau_p) + min(lower_size, tau_w)
        best_product = num_upper * lower_size
        best_u = None
        for u in candidates:
            # Candidates come in degree-descending order, and the
            # candidate's gain is capped by its degree — once the cap
            # cannot strictly beat the incumbent, nothing later can.
            degree = len(adj_upper[u])
            cap = degree if degree < lower_size else lower_size
            bound_sat = grown_sat + (cap if cap < tau_w else tau_w)
            bound_product = (num_upper + 1) * cap
            if bound_sat < best_sat or (
                bound_sat == best_sat and bound_product <= best_product
            ):
                break
            new_lower_size = len(lower & adj_upper[u])
            sat = grown_sat + (
                new_lower_size if new_lower_size < tau_w else tau_w
            )
            product = (num_upper + 1) * new_lower_size
            if sat > best_sat or (sat == best_sat and product > best_product):
                best_sat = sat
                best_product = product
                best_u = u
        if best_u is None:
            break
        upper.add(best_u)
        lower &= adj_upper[best_u]
        candidates = [
            u for u in candidates if u != best_u and lower & adj_upper[u]
        ]

    if len(upper) < tau_p or len(lower) < tau_w:
        return None
    return frozenset(upper), frozenset(lower)


def _greedy_bitset(
    local: LocalGraph, tau_p: int, tau_w: int
) -> tuple[frozenset[int], frozenset[int]] | None:
    packed = pack_local(local)
    adj_upper = packed.adj_upper
    if local.q_local is not None:
        start = packed.upper_rank[local.q_local]
    else:
        start = 0  # bit 0 = highest degree, lowest id on ties
    upper = 1 << start
    lower = adj_upper[start]
    if not lower:
        return None
    num_upper = 1

    candidates = packed.all_upper & ~upper
    while candidates:
        lower_size = lower.bit_count()
        # Same inlined objective comparison as the set variant; the
        # candidate scan order (ascending bits = stable degree
        # descending) matches it too, so ties resolve identically.
        grown_sat = min(num_upper + 1, tau_p)
        best_sat = min(num_upper, tau_p) + min(lower_size, tau_w)
        best_product = num_upper * lower_size
        best_bit = -1
        drop = 0
        rest = candidates
        deg_upper = packed.deg_upper
        while rest:
            low = rest & -rest
            rest ^= low
            bit = low.bit_length() - 1
            # Same degree-bounded early break as the set variant: the
            # scan is full-degree-descending, so once the degree cap on
            # the objective cannot strictly beat the incumbent, stop.
            degree = deg_upper[bit]
            cap = degree if degree < lower_size else lower_size
            bound_sat = grown_sat + (cap if cap < tau_w else tau_w)
            bound_product = (num_upper + 1) * cap
            if bound_sat < best_sat or (
                bound_sat == best_sat and bound_product <= best_product
            ):
                break
            new_lower_size = (lower & adj_upper[bit]).bit_count()
            if not new_lower_size:
                # A candidate disjoint from the current lower side can
                # never win a round (it cannot beat the no-op
                # objective), so dropping it here cannot change any
                # round's argmax — it only shortens future scans.
                drop |= low
                continue
            sat = grown_sat + (
                new_lower_size if new_lower_size < tau_w else tau_w
            )
            product = (num_upper + 1) * new_lower_size
            if sat > best_sat or (sat == best_sat and product > best_product):
                best_sat = sat
                best_product = product
                best_bit = bit
        if best_bit < 0:
            break
        candidates &= ~(drop | (1 << best_bit))
        upper |= 1 << best_bit
        lower &= adj_upper[best_bit]
        num_upper += 1

    if num_upper < tau_p or lower.bit_count() < tau_w:
        return None
    return packed.upper_locals(upper), packed.lower_locals(lower)


def _objective(
    num_upper: int, num_lower: int, tau_p: int, tau_w: int
) -> tuple[int, int]:
    """Lexicographic greedy objective: satisfy constraints, then size."""
    satisfied = min(num_upper, tau_p) + min(num_lower, tau_w)
    return (satisfied, num_upper * num_lower)
