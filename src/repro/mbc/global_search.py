"""Global (non-personalized) maximum biclique search.

The substrate algorithm of Lyu et al. [5] exposed standalone: the same
progressive bounding + Branch&Bound machinery run over the whole graph
(as an unanchored :class:`~repro.graph.subgraph.LocalGraph` view)
instead of a two-hop subgraph.  Useful on its own and as the
non-personalized comparison point in the examples.
"""

from __future__ import annotations

from repro.core.result import Biclique
from repro.corenum.bounds import CoreBounds
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.subgraph import LocalGraph
from repro.mbc.greedy import greedy_biclique
from repro.mbc.progressive import SearchOptions, maximum_biclique_local


def whole_graph_view(graph: BipartiteGraph) -> LocalGraph:
    """The full graph as an unanchored LocalGraph (upper side up)."""
    return LocalGraph(
        adj_upper=[
            set(graph.neighbors(Side.UPPER, u))
            for u in range(graph.num_upper)
        ],
        adj_lower=[
            set(graph.neighbors(Side.LOWER, v))
            for v in range(graph.num_lower)
        ],
        upper_globals=list(range(graph.num_upper)),
        lower_globals=list(range(graph.num_lower)),
        upper_side=Side.UPPER,
        q_local=None,
    )


def maximum_biclique(
    graph: BipartiteGraph,
    tau_u: int = 1,
    tau_l: int = 1,
    bounds: CoreBounds | None = None,
    kernel: str | None = None,
) -> Biclique | None:
    """The maximum biclique of ``graph`` under layer-size constraints
    (Definition 2), or None when no biclique satisfies them."""
    local = whole_graph_view(graph)
    seed = greedy_biclique(local, tau_p=tau_u, tau_w=tau_l, kernel=kernel)
    options = SearchOptions(bounds=bounds, kernel=kernel)
    found = maximum_biclique_local(local, tau_u, tau_l, seed, options)
    if found is None:
        return None
    upper = frozenset(found[0])
    lower = frozenset(found[1])
    return Biclique(upper=upper, lower=lower)
