"""The Branch&Bound procedure (Algorithm 1, lines 11–22).

Adapted from the maximal-biclique-enumeration branch-and-bound of
Zhang et al. (iMBEA) as done by Lyu et al. [5]: the search enumerates
(left-closed) bicliques by growing the lower vertex set ``W`` and
maintaining ``P`` as the exact set of upper vertices adjacent to all of
``W``.  Four vertex sets drive the recursion:

- ``P`` — upper vertices of the current biclique (common neighbors of W);
- ``W`` — lower vertices chosen (plus "free" vertices whose
  neighborhood covers ``P``);
- ``R`` — candidate lower vertices still addable;
- ``X`` — lower vertices excluded earlier (for non-maximality pruning).

Interchangeable compute kernels drive the recursion (selected per
call, per engine, or process-wide — see :mod:`repro.kernel`):

- ``"bitset"`` (default) — :mod:`repro.kernel.bitset`: the sets above
  are packed int bitmasks over degree-ordered local ids; intersections
  are big-int ``&`` and sizes are ``int.bit_count()``.
- ``"words"`` — shares this bitmask recursion; it differs from
  ``"bitset"`` only in the reduction passes (see
  :mod:`repro.kernel.words`).
- ``"set"`` — the original ``frozenset`` recursion in this module, the
  differential-testing reference.

All kernels visit the same nodes, make the same pruning decisions and
return identical answers; the property suite asserts this on random
graphs.

Extensions over the plain procedure, all optional via
:class:`BranchBoundConfig`:

- **Lemma 6 shape caps** (``max_u``/``max_l``) used during index
  construction: a child node's answer is known to have strictly fewer
  vertices on one layer than its parent's, so recordings beyond the cap
  are skipped and branches whose ``W`` exceeds ``max_l`` are pruned
  (``W`` only grows down a branch).
- **(α,β)-core bounds of PMBC-OL*** — callbacks that bound the best
  biclique a vertex can still participate in (Section VI-C): candidates
  are skipped and upper vertices dropped when their bound cannot beat
  the incumbent.
- **Anchor protection** — the anchored query vertex is never dropped
  from ``P`` by the upper-bound pruning, which guarantees every
  recorded biclique contains it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.subgraph import LocalGraph
from repro.kernel import is_packed_kernel, resolve_kernel
from repro.kernel.bitset import bitset_search
from repro.objectives import PMBC_OBJECTIVE, Objective
from repro.obs.trace import current_trace


@dataclass
class BranchBoundConfig:
    """Knobs for one Branch&Bound run (all sizes in *local* orientation)."""

    tau_p: int = 1
    """Minimum number of upper (P-side) vertices in a recorded biclique."""

    tau_w: int = 1
    """Minimum number of lower (W-side) vertices in a recorded biclique."""

    max_p: int | None = None
    """Inclusive Lemma 6 cap on upper vertices of a recorded biclique."""

    max_w: int | None = None
    """Inclusive Lemma 6 cap on lower vertices; also prunes branches."""

    prune_non_maximal: bool = True
    """Prune branches dominated by an excluded vertex (standard MBEA rule)."""

    lower_bound_at_least: Callable[[int, int], int] | None = None
    """``f(v, k)`` — max size of a biclique containing lower vertex ``v``
    with at least ``k`` lower vertices (PMBC-OL* suffix bound)."""

    upper_bound_at_most: Callable[[int, int], int] | None = None
    """``f(u, i)`` — max size of a biclique containing upper vertex ``u``
    with at most ``i`` upper vertices (PMBC-OL* prefix bound)."""

    protected_upper: int | None = None
    """Local upper vertex that must never be pruned (the anchor ``q``)."""

    objective: Objective = PMBC_OBJECTIVE
    """Query-family scoring/bounding rule; the default is the paper's
    edge-count objective (see :mod:`repro.objectives`)."""


class _SearchState:
    """Mutable incumbent shared across the recursion.

    Besides the incumbent, the state accumulates per-rule prune tallies
    as plain integers — the near-zero-cost half of the tracing design:
    the hot recursion only ever increments ints, and
    :func:`branch_and_bound` flushes the totals to the active
    :mod:`repro.obs` trace once per run (a no-op under the null trace).
    """

    __slots__ = (
        "best_upper",
        "best_lower",
        "best_size",
        "nodes",
        "skip_suffix",
        "drop_prefix",
        "skip_tau",
        "prune_shape",
        "prune_dominated",
        "prune_bound",
    )

    def __init__(self, best_size: int) -> None:
        self.best_upper: frozenset[int] | None = None
        self.best_lower: frozenset[int] | None = None
        self.best_size = best_size
        self.nodes = 0
        self.skip_suffix = 0      # Lemma 9 suffix bound skipped v*
        self.drop_prefix = 0      # Lemma 9 prefix bound dropped u from P'
        self.skip_tau = 0         # P' fell below tau_p
        self.prune_shape = 0      # Lemma 6 cap on |W'|
        self.prune_dominated = 0  # excluded vertex dominates (non-maximal)
        self.prune_bound = 0      # size bound: cannot beat the incumbent


def branch_and_bound(
    local: LocalGraph,
    config: BranchBoundConfig,
    initial_best_size: int = 0,
    kernel: str | None = None,
) -> tuple[frozenset[int], frozenset[int]] | None:
    """Find a biclique scoring above ``initial_best_size`` under ``config``.

    Returns local ``(upper_ids, lower_ids)`` of the best biclique whose
    ``config.objective`` score strictly exceeds ``initial_best_size``
    while meeting the minimum constraints and Lemma 6 caps, or None
    when no such biclique exists.  Every returned biclique contains
    ``config.protected_upper`` when that vertex is adjacent to all
    local lower vertices (true for an anchored two-hop subgraph).

    ``kernel`` picks the compute kernel (``"bitset"``/``"set"``/
    ``"words"``); None defers to :func:`repro.kernel.default_kernel`.
    """
    state = _SearchState(initial_best_size)
    if is_packed_kernel(resolve_kernel(kernel)):
        bitset_search(local, config, state)
    else:
        p_all = frozenset(range(local.num_upper))
        candidates = sorted(
            range(local.num_lower), key=local.degree_lower, reverse=True
        )
        _recurse(local, config, state, p_all, frozenset(), candidates, [])
    flush_search_trace(state)
    if state.best_upper is None:
        return None
    return state.best_upper, state.best_lower


def flush_search_trace(state: _SearchState) -> None:
    """Flush one run's accumulated counters to the active trace.

    Shared by both kernels (and the mask-space progressive loop, which
    runs the bitset search directly) so every branch-and-bound run
    reports ``bb_calls``/``bb_nodes`` and per-rule prune tallies the
    same way.  A no-op under the null trace.
    """
    trace = current_trace()
    if trace.enabled:
        trace.add("bb_calls")
        trace.add("bb_nodes", state.nodes)
        trace.prune("core_suffix_bound", state.skip_suffix)
        trace.prune("core_prefix_bound", state.drop_prefix)
        trace.prune("tau_filter", state.skip_tau)
        trace.prune("shape_cap", state.prune_shape)
        trace.prune("non_maximal", state.prune_dominated)
        trace.prune("size_bound", state.prune_bound)


def _recurse(
    local: LocalGraph,
    config: BranchBoundConfig,
    state: _SearchState,
    p: frozenset[int],
    w: frozenset[int],
    r: list[int],
    x: list[int],
) -> None:
    state.nodes += 1
    _maybe_record(config, state, p, w)

    adj_lower = local.adj_lower
    x_current = list(x)
    for idx, v_star in enumerate(r):
        # PMBC-OL* candidate skip: v_star would be the (|W|+1)-th lower
        # vertex of anything recorded below.
        if config.lower_bound_at_least is not None:
            if config.lower_bound_at_least(v_star, len(w) + 1) <= state.best_size:
                state.skip_suffix += 1
                x_current.append(v_star)
                continue

        p_new = p & adj_lower[v_star]
        if config.upper_bound_at_most is not None:
            limit = len(p_new)
            p_new = frozenset(
                u
                for u in p_new
                if u == config.protected_upper
                or config.upper_bound_at_most(u, limit) > state.best_size
            )
            state.drop_prefix += limit - len(p_new)
        if len(p_new) < config.tau_p:
            state.skip_tau += 1
            x_current.append(v_star)
            continue

        w_new = set(w)
        w_new.add(v_star)
        r_new: list[int] = []
        p_size = len(p_new)
        for v in r[idx + 1 :]:
            overlap = len(p_new & adj_lower[v])
            if overlap == p_size:
                w_new.add(v)  # free vertex: adjacent to all of P'
            elif overlap >= config.tau_p:
                r_new.append(v)

        if config.max_w is not None and len(w_new) > config.max_w:
            state.prune_shape += 1
            x_current.append(v_star)
            continue

        dominated = False
        x_new: list[int] = []
        for v in x_current:
            overlap = len(p_new & adj_lower[v])
            if overlap == p_size:
                dominated = True
                if config.prune_non_maximal:
                    break
            if overlap >= config.tau_p:
                x_new.append(v)
        if config.prune_non_maximal and dominated:
            state.prune_dominated += 1
            x_current.append(v_star)
            continue

        max_possible_p = len(p_new)
        if config.max_p is not None:
            max_possible_p = min(max_possible_p, config.max_p)
        max_possible_w = len(w_new) + len(r_new)
        if config.max_w is not None:
            max_possible_w = min(max_possible_w, config.max_w)
        can_improve = (
            max_possible_p >= config.tau_p
            and max_possible_w >= config.tau_w
            and config.objective.bound(max_possible_p, max_possible_w)
            > state.best_size
        )
        if can_improve:
            _recurse(
                local, config, state, p_new, frozenset(w_new), r_new, x_new
            )
        else:
            state.prune_bound += 1
        x_current.append(v_star)


def _maybe_record(
    config: BranchBoundConfig,
    state: _SearchState,
    p: frozenset[int],
    w: frozenset[int],
) -> None:
    if len(p) < config.tau_p or len(w) < config.tau_w:
        return
    if config.max_p is not None and len(p) > config.max_p:
        return
    if config.max_w is not None and len(w) > config.max_w:
        return
    score = config.objective.score(len(p), len(w))
    if score > state.best_size:
        state.best_upper = p
        state.best_lower = w
        state.best_size = score
