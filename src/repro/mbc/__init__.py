"""Maximum biclique search substrate (Lyu et al., VLDB 2020 — ref [5]).

The paper's online algorithms run the state-of-the-art maximum (edge)
biclique search on the two-hop subgraph of the query vertex.  This
package implements that substrate from scratch:

- :mod:`~repro.mbc.greedy` — the greedy initial solution ``C*_0``;
- :mod:`~repro.mbc.reductions` — one-hop (degree) and two-hop (wedge)
  reductions producing the "maximum biclique preserved subgraph";
- :mod:`~repro.mbc.branch_bound` — the Branch&Bound procedure
  (Algorithm 1, lines 11–22) with optional Lemma 6 shape caps and the
  (α,β)-core bounds of PMBC-OL*;
- :mod:`~repro.mbc.progressive` — the progressive bounding framework
  (Algorithm 1, lines 2–9);
- :mod:`~repro.mbc.oracle` — exponential-time brute-force reference
  implementations used by the test suite.
"""

from repro.mbc.branch_bound import BranchBoundConfig, branch_and_bound
from repro.mbc.global_search import maximum_biclique, whole_graph_view
from repro.mbc.greedy import greedy_biclique
from repro.mbc.oracle import (
    all_closed_bicliques,
    max_biclique_brute,
    personalized_max_brute,
)
from repro.mbc.progressive import maximum_biclique_local
from repro.mbc.reductions import reduce_preserving_maximum

__all__ = [
    "branch_and_bound",
    "BranchBoundConfig",
    "maximum_biclique",
    "whole_graph_view",
    "greedy_biclique",
    "maximum_biclique_local",
    "reduce_preserving_maximum",
    "all_closed_bicliques",
    "max_biclique_brute",
    "personalized_max_brute",
]
