"""The progressive bounding framework (Algorithm 1 / Algorithm 5).

Drives Branch&Bound over a local (two-hop) subgraph with progressively
lowered lower-layer floors:

- ``τ_L^0`` = the maximum upper-vertex degree in ``H_q`` (no biclique
  has more lower vertices than that);
- each round searches with minimum constraints
  ``τ_U^{k+1} = max(⌊|C*_k| / τ_L^k⌋, τ_U)`` and
  ``τ_L^{k+1} = max(⌊τ_L^k / 2⌋, τ_L)``;
- rounds stop once the floor reaches ``τ_L``.

Every round first prunes with Lemma 9 (``z`` bounds, when a
:class:`~repro.corenum.bounds.CoreBounds` is supplied — this is what
upgrades PMBC-OL to PMBC-OL*) and with the one-/two-hop reductions,
then runs Branch&Bound seeded with the best answer so far.  Raised
floors early on shrink the reduced subgraph dramatically, which is the
point of the framework.

All inputs and outputs here are in *local* coordinates relative to the
supplied :class:`~repro.graph.subgraph.LocalGraph`; the
:mod:`repro.core.online` layer translates to global ids and handles
query-side orientation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corenum.bounds import CoreBounds
from repro.graph.subgraph import LocalGraph
from repro.kernel import is_packed_kernel, resolve_kernel
from repro.kernel.progressive import bitset_progressive
from repro.mbc.branch_bound import BranchBoundConfig, branch_and_bound
from repro.mbc.reductions import reduce_preserving_maximum
from repro.objectives import Objective, get_objective
from repro.obs.trace import current_trace


@dataclass
class SearchOptions:
    """Optional accelerations for one progressive search."""

    bounds: CoreBounds | None = None
    """Global (α,β)-core bounds; enables Lemma 9 pruning and the
    prefix/suffix bounds inside Branch&Bound (PMBC-OL*).  Ignored when
    the objective's ``uses_size_bounds`` is False — the Lemma 9 bounds
    cap the *edge count*, which is only admissible for ``"pmbc"``."""

    max_p: int | None = None
    """Lemma 6 cap on local-upper vertices of the answer (inclusive)."""

    max_w: int | None = None
    """Lemma 6 cap on local-lower vertices of the answer (inclusive)."""

    use_two_hop_reduction: bool = True
    prune_non_maximal: bool = True

    kernel: str | None = None
    """Compute kernel (``"bitset"``/``"set"``/``"words"``) for the
    reductions and Branch&Bound; None defers to
    :func:`repro.kernel.default_kernel`."""

    objective: Objective | str | None = None
    """Query-family objective (name, instance, or None for the default
    ``"pmbc"``); see :mod:`repro.objectives`."""


def maximum_biclique_local(
    local: LocalGraph,
    tau_p: int,
    tau_w: int,
    seed: tuple[frozenset[int], frozenset[int]] | None = None,
    options: SearchOptions | None = None,
) -> tuple[frozenset[int], frozenset[int]] | None:
    """The maximum biclique of ``local`` under local-size constraints.

    ``tau_p``/``tau_w`` constrain the local upper/lower layer sizes.
    ``seed`` is a known valid biclique (local ids) acting as a lower
    bound; the return value is the seed itself when nothing better
    exists, or None when no valid biclique exists at all.  When the
    graph is anchored (``local.q_local`` set), the answer is guaranteed
    to contain the anchor provided the seed does.
    """
    options = options or SearchOptions()
    if tau_p < 1 or tau_w < 1:
        raise ValueError(
            f"size constraints must be >= 1, got ({tau_p}, {tau_w})"
        )
    objective = get_objective(options.objective)
    tau_p, tau_w = objective.effective_floors(tau_p, tau_w)
    best = seed
    best_size = objective.score(len(seed[0]), len(seed[1])) if seed else 0

    floor_w = local.max_upper_degree()
    if floor_w < tau_w or local.num_upper < tau_p:
        return best

    anchored = local.q_local is not None
    bounds = options.bounds if objective.uses_size_bounds else None
    kernel = resolve_kernel(options.kernel)
    if is_packed_kernel(kernel):
        # The packed kernels run the whole round loop in mask space over
        # one packed view — no per-round restricted graphs (see
        # repro.kernel.progressive).  Same rounds, prunes and answer.
        return bitset_progressive(
            local, tau_p, tau_w, best, best_size, floor_w, options
        )
    trace = current_trace()
    while True:
        tau_p_k, tau_w_k = objective.round_floors(
            best_size, floor_w, tau_p, tau_w
        )
        if trace.enabled:
            trace.add("progressive_rounds")
            nodes_before = trace.counters.get("bb_nodes", 0)
            round_info: dict[str, int] = {
                "tau_p": tau_p_k,
                "tau_w": tau_w_k,
            }

        working = local
        if bounds is not None:
            working = _prune_by_z(working, bounds, best_size, anchored)
            if trace.enabled:
                kept = (
                    0
                    if working is None
                    else working.num_upper + working.num_lower
                )
                trace.prune(
                    "core_z_bound",
                    local.num_upper + local.num_lower - kept,
                )
        if working is not None:
            before = working.num_upper + working.num_lower
            working = reduce_preserving_maximum(
                working,
                tau_p_k,
                tau_w_k,
                use_two_hop=options.use_two_hop_reduction,
                kernel=kernel,
            )
            if trace.enabled:
                trace.prune(
                    "reduction",
                    before - working.num_upper - working.num_lower,
                )
                round_info["working_upper"] = working.num_upper
                round_info["working_lower"] = working.num_lower
            if not anchored or working.q_local is not None:
                found = _run_branch_bound(
                    working,
                    tau_p_k,
                    tau_w_k,
                    best_size,
                    options,
                    kernel,
                    bounds=bounds,
                    objective=objective,
                )
                if found is not None:
                    best = _map_back(local, working, found)
                    best_size = objective.score(len(best[0]), len(best[1]))
        if trace.enabled:
            round_info["nodes"] = (
                trace.counters.get("bb_nodes", 0) - nodes_before
            )
            round_info["best_size"] = best_size
            trace.add_round(**round_info)
        if tau_w_k <= tau_w:
            break
        floor_w = tau_w_k
    return best


def _prune_by_z(
    local: LocalGraph, bounds: CoreBounds, best_size: int, anchored: bool
) -> LocalGraph | None:
    """Lemma 9: drop vertices whose z bound cannot beat the incumbent.

    Returns None when the anchor itself is bounded out — no anchored
    biclique can improve, so the caller skips the search entirely.
    """
    if best_size <= 0:
        return local
    own_side = local.upper_side
    other_side = own_side.other
    if anchored:
        q_global = local.upper_globals[local.q_local]
        if bounds.z_bound(own_side, q_global) <= best_size:
            return None
    upper_keep = [
        u
        for u, g in enumerate(local.upper_globals)
        if bounds.z_bound(own_side, g) > best_size
    ]
    lower_keep = [
        v
        for v, g in enumerate(local.lower_globals)
        if bounds.z_bound(other_side, g) > best_size
    ]
    if len(upper_keep) == local.num_upper and len(lower_keep) == local.num_lower:
        return local
    return local.restrict(upper_keep, lower_keep)


def _run_branch_bound(
    working: LocalGraph,
    tau_p_k: int,
    tau_w_k: int,
    best_size: int,
    options: SearchOptions,
    kernel: str | None = None,
    *,
    bounds: CoreBounds | None = None,
    objective: Objective | None = None,
) -> tuple[frozenset[int], frozenset[int]] | None:
    objective = get_objective(objective if objective is not None else options.objective)
    lower_hook = None
    upper_hook = None
    if bounds is not None:
        own_side = working.upper_side
        other_side = own_side.other
        lower_globals = working.lower_globals
        upper_globals = working.upper_globals

        def lower_hook(v: int, k: int) -> int:
            return bounds.own_side_at_least(other_side, lower_globals[v], k)

        def upper_hook(u: int, i: int) -> int:
            return bounds.own_side_at_most(own_side, upper_globals[u], i)

    config = BranchBoundConfig(
        tau_p=tau_p_k,
        tau_w=tau_w_k,
        max_p=options.max_p,
        max_w=options.max_w,
        # PMBC-OL* discards the maximality check (Section VI-C): the
        # core bounds make it redundant, and with bounds-based skips it
        # is cheaper to drop it.
        prune_non_maximal=options.prune_non_maximal and bounds is None,
        lower_bound_at_least=lower_hook,
        upper_bound_at_most=upper_hook,
        protected_upper=working.q_local,
        objective=objective,
    )
    return branch_and_bound(working, config, best_size, kernel=kernel)


def _map_back(
    original: LocalGraph,
    working: LocalGraph,
    found: tuple[frozenset[int], frozenset[int]],
) -> tuple[frozenset[int], frozenset[int]]:
    """Translate a result from the reduced graph back to original local ids."""
    upper_global_to_local = original.upper_index()
    lower_global_to_local = original.lower_index()
    upper = frozenset(
        upper_global_to_local[working.upper_globals[u]] for u in found[0]
    )
    lower = frozenset(
        lower_global_to_local[working.lower_globals[v]] for v in found[1]
    )
    return upper, lower
