"""The dataset zoo: one seeded synthetic analogue per paper dataset.

Each :class:`DatasetSpec` preserves the original's layer-size ratio
(Table II of the paper) at roughly 1/300–1/2000 scale.  Graphs are
drawn from a capped-Zipf configuration model — hub degrees are capped
at a few percent of the opposite layer, matching the *relative* hub
sizes of the real KONECT graphs (naive Zipf sampling at reduced scale
concentrates far too much mass on hubs, which distorts search cost) —
and overlapping complete bicliques are planted so personalized maxima
are non-trivial.  The paper's original sizes are retained in each spec
for documentation and EXPERIMENTS.md reporting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    capped_power_law_bipartite,
    with_planted_blocks,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Generation recipe plus the paper-side metadata it mimics."""

    name: str
    category: str
    num_upper: int
    num_lower: int
    num_edges: int
    seed: int
    paper_upper: int
    paper_lower: int
    paper_edges: int
    num_planted: int = 6
    exponent_upper: float = 2.1
    exponent_lower: float = 1.7
    hub_fraction: float = 0.08

    @property
    def cap_upper(self) -> int:
        """Max upper-vertex degree: a small fraction of the lower layer."""
        return max(6, round(self.hub_fraction * self.num_lower))

    @property
    def cap_lower(self) -> int:
        """Max lower-vertex degree: a small fraction of the upper layer."""
        return max(6, round(self.hub_fraction * self.num_upper))

    def planted_blocks(self) -> tuple[tuple[int, int], ...]:
        """Seeded overlapping block shapes, scaled with dataset size."""
        rng = random.Random(self.seed * 7919 + 13)
        blocks = []
        for __ in range(self.num_planted):
            a = rng.randint(3, 8)
            b = rng.randint(3, 8)
            blocks.append((a, b))
        return tuple(blocks)


def _spec(
    name: str,
    category: str,
    shape: tuple[int, int, int],
    paper_shape: tuple[int, int, int],
    seed: int,
    num_planted: int,
) -> DatasetSpec:
    num_upper, num_lower, num_edges = shape
    paper_upper, paper_lower, paper_edges = paper_shape
    return DatasetSpec(
        name=name,
        category=category,
        num_upper=num_upper,
        num_lower=num_lower,
        num_edges=num_edges,
        seed=seed,
        paper_upper=paper_upper,
        paper_lower=paper_lower,
        paper_edges=paper_edges,
        num_planted=num_planted,
    )


#: The ten analogues, in the paper's Table II order (ascending |E|).
ZOO: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        _spec("Writers", "Authorship", (270, 140, 400),
              (89_355, 46_213, 144_340), 101, 4),
        _spec("YouTube", "Affiliation", (330, 105, 700),
              (94_238, 30_087, 293_360), 102, 5),
        _spec("Github", "Authorship", (260, 560, 1000),
              (56_519, 120_867, 440_237), 103, 5),
        _spec("BookCrossing", "Rating", (340, 1100, 1700),
              (105_278, 340_523, 1_149_739), 104, 6),
        _spec("StackOverflow", "Rating", (1250, 220, 1900),
              (545_195, 96_678, 1_301_942), 105, 6),
        _spec("Teams", "Affiliation", (1500, 57, 2000),
              (901_130, 34_461, 1_366_466), 106, 6),
        _spec("ActorMovies", "Affiliation", (420, 1260, 2100),
              (127_823, 383_640, 1_470_404), 107, 6),
        _spec("Wikipedia", "Feature", (1960, 193, 2600),
              (1_853_493, 182_947, 3_795_796), 108, 7),
        _spec("Amazon", "Rating", (1500, 860, 3000),
              (2_146_057, 1_230_915, 5_743_258), 109, 7),
        _spec("DBLP", "Authorship", (820, 2300, 3600),
              (1_425_813, 4_000_150, 8_649_016), 110, 8),
    )
}


def dataset_names() -> list[str]:
    """All zoo dataset names in Table II order."""
    return list(ZOO)


def scalability_dataset_names() -> list[str]:
    """The four datasets used in Figs 7–9 of the paper."""
    return ["ActorMovies", "Wikipedia", "Amazon", "DBLP"]


def spec(name: str) -> DatasetSpec:
    """The spec for a dataset name (KeyError on unknown names)."""
    return ZOO[name]


@lru_cache(maxsize=None)
def load_dataset(name: str) -> BipartiteGraph:
    """Generate (and cache) the analogue graph for ``name``."""
    dataset = spec(name)
    graph = capped_power_law_bipartite(
        dataset.num_upper,
        dataset.num_lower,
        dataset.num_edges,
        exponent_upper=dataset.exponent_upper,
        exponent_lower=dataset.exponent_lower,
        cap_upper=dataset.cap_upper,
        cap_lower=dataset.cap_lower,
        seed=dataset.seed,
    )
    return with_planted_blocks(
        graph, dataset.planted_blocks(), seed=dataset.seed + 1
    )
