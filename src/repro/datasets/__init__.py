"""Synthetic analogues of the paper's 10 KONECT datasets.

The paper evaluates on Writers, YouTube, Github, BookCrossing,
StackOverflow, Teams, ActorMovies, Wikipedia, Amazon and DBLP
(144K–8.6M edges).  Those graphs are not redistributable here and a
pure-Python index build at millions of edges is infeasible, so
:mod:`repro.datasets.zoo` generates a seeded, scale-reduced analogue of
each: layer-size ratios match the originals, degrees are heavy-tailed,
and overlapping complete bicliques are planted so personalized maxima
are non-trivial.  See DESIGN.md ("Substitutions").
"""

from repro.datasets.zoo import (
    DatasetSpec,
    ZOO,
    dataset_names,
    load_dataset,
    scalability_dataset_names,
    spec,
)

__all__ = [
    "DatasetSpec",
    "ZOO",
    "dataset_names",
    "load_dataset",
    "scalability_dataset_names",
    "spec",
]
