"""Packed (bitmask) views of a :class:`~repro.graph.subgraph.LocalGraph`.

A :class:`PackedLocalGraph` re-encodes the local adjacency as Python
ints: bit ``i`` of ``adj_lower[v]`` says whether the lower vertex at
*bit position* ``v`` is adjacent to the upper vertex at bit position
``i``.  Bit positions are assigned by a stable degree-descending
relabeling on **both** layers:

- dense vertices share low bit positions, so the intermediate ints the
  branch-and-bound intersects stay short (high zero bits are free in
  CPython's big-int representation);
- on the lower layer, ascending bit order *is* the branch-and-bound's
  candidate order (``sorted`` by degree descending, ties by local id —
  exactly the order the set kernel visits), which is what makes the two
  kernels explore identical search trees.

Packing is performed **once per extracted subgraph**: :func:`pack_local`
memoizes its result on the ``LocalGraph`` instance, so the engine's
two-hop LRU and the per-worker caches of :mod:`repro.exec` reuse one
packed view across every query and progressive round that hits the same
extraction.  :func:`pack_count` exposes a process-wide tally of real
(non-memoized) packs for regression tests against per-task re-packing.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.subgraph import LocalGraph

__all__ = [
    "PackedLocalGraph",
    "pack_local",
    "pack_count",
    "iter_bits",
    "two_hop_packed",
]

#: Process-wide count of non-memoized :func:`pack_local` calls.
_pack_calls = 0


def pack_count() -> int:
    """How many times a ``LocalGraph`` was actually packed (not reused)."""
    return _pack_calls


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


@dataclass
class PackedLocalGraph:
    """Bitmask adjacency of a ``LocalGraph`` in degree-ordered bit space.

    ``upper_order``/``lower_order`` map bit positions back to the local
    ids of the wrapped graph; ``upper_rank``/``lower_rank`` are the
    inverse permutations.  ``adj_lower[v]`` is the upper-bit mask of the
    lower vertex at bit position ``v`` and ``adj_upper[u]`` the
    lower-bit mask of the upper vertex at bit position ``u``;
    ``deg_upper``/``deg_lower`` are their popcounts (full degrees in
    bit order), precomputed for degree-floor cascades and greedy scan
    bounds.
    """

    local: LocalGraph
    upper_order: list[int]
    lower_order: list[int]
    upper_rank: list[int]
    lower_rank: list[int]
    adj_upper: list[int]
    adj_lower: list[int]
    deg_upper: list[int]
    deg_lower: list[int]
    all_upper: int
    all_lower: int

    @property
    def num_upper(self) -> int:
        return len(self.upper_order)

    @property
    def num_lower(self) -> int:
        return len(self.lower_order)

    def upper_locals(self, mask: int) -> frozenset[int]:
        """Translate an upper-bit mask back to local upper ids."""
        order = self.upper_order
        return frozenset(order[b] for b in iter_bits(mask))

    def lower_locals(self, mask: int) -> frozenset[int]:
        """Translate a lower-bit mask back to local lower ids."""
        order = self.lower_order
        return frozenset(order[b] for b in iter_bits(mask))

    def pack_lower(self, lower_locals: Iterable[int]) -> int:
        """Pack local lower ids into a lower-bit mask."""
        rank = self.lower_rank
        mask = 0
        for v in lower_locals:
            mask |= 1 << rank[v]
        return mask


def _degree_order(adjacency: list[set[int]]) -> list[int]:
    # Stable degree-descending order: exactly the candidate order of the
    # set kernel (sorted with reverse=True keeps ties in id order).
    return sorted(
        range(len(adjacency)), key=lambda i: len(adjacency[i]), reverse=True
    )


def pack_local(local: LocalGraph) -> PackedLocalGraph:
    """The packed view of ``local`` (built once, memoized on the graph)."""
    packed = getattr(local, "_packed", None)
    if packed is not None:
        return packed
    global _pack_calls
    _pack_calls += 1
    upper_order = _degree_order(local.adj_upper)
    lower_order = _degree_order(local.adj_lower)
    upper_rank = [0] * len(upper_order)
    for bit, u in enumerate(upper_order):
        upper_rank[u] = bit
    lower_rank = [0] * len(lower_order)
    for bit, v in enumerate(lower_order):
        lower_rank[v] = bit
    adj_upper = [
        _pack(local.adj_upper[u], lower_rank) for u in upper_order
    ]
    adj_lower = [
        _pack(local.adj_lower[v], upper_rank) for v in lower_order
    ]
    packed = PackedLocalGraph(
        local=local,
        upper_order=upper_order,
        lower_order=lower_order,
        upper_rank=upper_rank,
        lower_rank=lower_rank,
        adj_upper=adj_upper,
        adj_lower=adj_lower,
        deg_upper=[len(local.adj_upper[u]) for u in upper_order],
        deg_lower=[len(local.adj_lower[v]) for v in lower_order],
        all_upper=(1 << len(upper_order)) - 1,
        all_lower=(1 << len(lower_order)) - 1,
    )
    local._packed = packed
    return packed


def _pack(ids: set[int], rank: list[int]) -> int:
    mask = 0
    for i in ids:
        mask |= 1 << rank[i]
    return mask


def two_hop_packed(graph: BipartiteGraph, side: Side, q: int) -> LocalGraph:
    """Extract ``H_q`` straight into bitmasks, skipping the set build.

    The fused counterpart of
    :func:`repro.graph.subgraph.two_hop_subgraph` + :func:`pack_local`
    for the bitset kernel: two sweeps over the ``N(q)`` neighbor lists
    build the degree-ordered adjacency masks directly, and the returned
    :class:`~repro.graph.subgraph.LocalGraph` (with ``_packed`` already
    attached) materializes its adjacency *sets* lazily from the masks —
    a pure-bitset query never constructs them.  Local ids, bit order,
    and degree arrays are identical to the unfused path, so the two
    extractions are interchangeable.
    """
    other = side.other
    neighbors = graph.neighbors
    lower_globals = list(neighbors(side, q))
    # Pass 1: H_q upper degrees.  Every H_q edge has its lower endpoint
    # in N(q), so the counts fall out of the N(q) neighbor lists — and
    # a lower vertex's H_q degree is simply its full degree.
    nbrs = [neighbors(other, v) for v in lower_globals]
    counts: dict[int, int] = {q: 0}
    get = counts.get
    for ns in nbrs:
        for u in ns:
            counts[u] = get(u, 0) + 1
    counts[q] = len(lower_globals)
    upper_globals = sorted(counts)
    num_upper = len(upper_globals)
    num_lower = len(lower_globals)
    upper_degrees = [counts[u] for u in upper_globals]
    lower_degrees = [len(ns) for ns in nbrs]
    upper_order = sorted(
        range(num_upper), key=upper_degrees.__getitem__, reverse=True
    )
    lower_order = sorted(
        range(num_lower), key=lower_degrees.__getitem__, reverse=True
    )
    upper_rank = [0] * num_upper
    for bit, u in enumerate(upper_order):
        upper_rank[u] = bit
    lower_rank = [0] * num_lower
    for bit, v in enumerate(lower_order):
        lower_rank[v] = bit
    # Pass 2: set bits.  Global upper id -> bit position, resolved once.
    gbit = {upper_globals[u]: bit for bit, u in enumerate(upper_order)}
    adj_upper = [0] * num_upper
    adj_lower = [0] * num_lower
    for vi, ns in enumerate(nbrs):
        vsel = 1 << lower_rank[vi]
        row = 0
        for u in ns:
            ubit = gbit[u]
            row |= 1 << ubit
            adj_upper[ubit] |= vsel
        adj_lower[lower_rank[vi]] = row

    local = LocalGraph(
        upper_globals=upper_globals,
        lower_globals=lower_globals,
        upper_side=side,
        q_local=bisect_left(upper_globals, q),
        adj_builder=lambda: _unpack_adjacency(local),
    )
    global _pack_calls
    _pack_calls += 1
    local._packed = PackedLocalGraph(
        local=local,
        upper_order=upper_order,
        lower_order=lower_order,
        upper_rank=upper_rank,
        lower_rank=lower_rank,
        adj_upper=adj_upper,
        adj_lower=adj_lower,
        deg_upper=[upper_degrees[u] for u in upper_order],
        deg_lower=[lower_degrees[v] for v in lower_order],
        all_upper=(1 << num_upper) - 1,
        all_lower=(1 << num_lower) - 1,
    )
    return local


def _unpack_adjacency(local: LocalGraph) -> tuple[list[set[int]], list[set[int]]]:
    """Materialize local-id adjacency sets from the packed masks."""
    packed = local._packed
    upper_order = packed.upper_order
    lower_order = packed.lower_order
    adj_upper: list[set[int]] = [set()] * packed.num_upper
    for bit, mask in enumerate(packed.adj_upper):
        adj_upper[upper_order[bit]] = {
            lower_order[b] for b in iter_bits(mask)
        }
    adj_lower: list[set[int]] = [set()] * packed.num_lower
    for bit, mask in enumerate(packed.adj_lower):
        adj_lower[lower_order[bit]] = {
            upper_order[b] for b in iter_bits(mask)
        }
    return adj_upper, adj_lower
