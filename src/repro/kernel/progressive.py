"""The packed kernels' progressive-bounding loop (mask-space rounds).

:func:`repro.mbc.progressive.maximum_biclique_local` delegates here when
the resolved kernel is packed (``"bitset"`` or ``"words"`` — the latter
swaps the reduction passes for the word-array peeling of
:mod:`repro.kernel.words`).  The set kernel materializes a
restricted :class:`~repro.graph.subgraph.LocalGraph` per round (Lemma 9
z-prune, then the one-/two-hop reductions, each rebuilding adjacency
sets); profiling showed those rebuilds — not the branch-and-bound — to
dominate personalized queries once the core bounds have shrunk the
search tree.  This loop instead packs the extracted subgraph **once**
(memoized per extraction, see :mod:`repro.kernel.packed`) and runs every
round as alive-mask narrowing over that single packed view:

- z-prune clears bits (:func:`repro.kernel.ops.z_alive_masks`);
- reductions narrow the masks (:func:`repro.kernel.ops.reduce_alive`,
  memoized per extraction by :func:`repro.kernel.batch.cached_reduce`
  so batched requests sharing ``H_q`` replay rounds for free);
- the branch-and-bound starts from ``P = alive_upper`` with candidates
  drawn from ``alive_lower`` — adjacency intersections against ``P``
  induce the restricted graph for free.

Trace bookkeeping (round records, ``core_z_bound``/``reduction`` prune
tallies, per-run branch-and-bound flushes) mirrors the set path event
for event, and the candidate order is the set kernel's stable
degree-descending order computed on the alive masks, so both kernels
explore identical search trees and return identical answers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.subgraph import LocalGraph
from repro.kernel import resolve_kernel
from repro.kernel.batch import cached_reduce
from repro.kernel.bitset import bitset_search
from repro.kernel.ops import z_alive_masks
from repro.kernel.packed import iter_bits, pack_local
from repro.mbc.branch_bound import (
    BranchBoundConfig,
    _SearchState,
    flush_search_trace,
)
from repro.objectives import get_objective
from repro.obs.trace import current_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mbc.progressive import SearchOptions

__all__ = ["bitset_progressive"]


def bitset_progressive(
    local: LocalGraph,
    tau_p: int,
    tau_w: int,
    best: tuple[frozenset[int], frozenset[int]] | None,
    best_size: int,
    floor_w: int,
    options: "SearchOptions",
) -> tuple[frozenset[int], frozenset[int]] | None:
    """Run the progressive rounds of Algorithm 1/5 in mask space.

    ``best``/``best_size``/``floor_w`` are the seed incumbent and the
    initial lower floor computed by the shared prologue in
    :func:`repro.mbc.progressive.maximum_biclique_local`; the return
    value is in the same local coordinates as the set path's.
    """
    packed = pack_local(local)
    adj_lower = packed.adj_lower
    lower_order = packed.lower_order
    total = local.num_upper + local.num_lower
    anchored = local.q_local is not None
    q_bit = packed.upper_rank[local.q_local] if anchored else None
    objective = get_objective(options.objective)
    bounds = options.bounds if objective.uses_size_bounds else None
    kernel = resolve_kernel(options.kernel)
    trace = current_trace()

    while True:
        tau_p_k, tau_w_k = objective.round_floors(
            best_size, floor_w, tau_p, tau_w
        )
        if trace.enabled:
            trace.add("progressive_rounds")
            nodes_before = trace.counters.get("bb_nodes", 0)
            round_info: dict[str, int] = {
                "tau_p": tau_p_k,
                "tau_w": tau_w_k,
            }

        alive = (packed.all_upper, packed.all_lower)
        if bounds is not None:
            alive = z_alive_masks(packed, bounds, best_size, anchored)
            if trace.enabled:
                kept = (
                    0
                    if alive is None
                    else alive[0].bit_count() + alive[1].bit_count()
                )
                trace.prune("core_z_bound", total - kept)
        if alive is not None:
            before = alive[0].bit_count() + alive[1].bit_count()
            alive_u, alive_l = cached_reduce(
                packed,
                kernel,
                tau_p_k,
                tau_w_k,
                alive[0],
                alive[1],
                options.use_two_hop_reduction,
            )
            if trace.enabled:
                trace.prune(
                    "reduction",
                    before - alive_u.bit_count() - alive_l.bit_count(),
                )
                round_info["working_upper"] = alive_u.bit_count()
                round_info["working_lower"] = alive_l.bit_count()
            if not anchored or (alive_u >> q_bit) & 1:
                found = _run_masked_search(
                    local,
                    packed,
                    adj_lower,
                    lower_order,
                    alive_u,
                    alive_l,
                    tau_p_k,
                    tau_w_k,
                    best_size,
                    options,
                    bounds=bounds,
                    objective=objective,
                )
                if found is not None:
                    best = found
                    best_size = objective.score(len(best[0]), len(best[1]))
        if trace.enabled:
            round_info["nodes"] = (
                trace.counters.get("bb_nodes", 0) - nodes_before
            )
            round_info["best_size"] = best_size
            trace.add_round(**round_info)
        if tau_w_k <= tau_w:
            break
        floor_w = tau_w_k
    return best


def _run_masked_search(
    local: LocalGraph,
    packed,
    adj_lower: list[int],
    lower_order: list[int],
    alive_u: int,
    alive_l: int,
    tau_p_k: int,
    tau_w_k: int,
    best_size: int,
    options: "SearchOptions",
    *,
    bounds=None,
    objective=None,
) -> tuple[frozenset[int], frozenset[int]] | None:
    """One branch-and-bound run over the alive masks.

    Builds the same :class:`BranchBoundConfig` the set path would for
    its restricted working graph — the bound hooks resolve through the
    extraction's global ids, which the restricted graph would have
    carried over unchanged — and visits candidates in the set kernel's
    order: stable degree-descending, with degrees counted against the
    alive upper mask and ties broken by ascending local id.
    """
    objective = get_objective(
        objective if objective is not None else options.objective
    )
    lower_hook = None
    upper_hook = None
    if bounds is not None:
        own_side = local.upper_side
        other_side = own_side.other
        lower_globals = local.lower_globals
        upper_globals = local.upper_globals

        def lower_hook(v: int, k: int) -> int:
            return bounds.own_side_at_least(other_side, lower_globals[v], k)

        def upper_hook(u: int, i: int) -> int:
            return bounds.own_side_at_most(own_side, upper_globals[u], i)

    config = BranchBoundConfig(
        tau_p=tau_p_k,
        tau_w=tau_w_k,
        max_p=options.max_p,
        max_w=options.max_w,
        prune_non_maximal=options.prune_non_maximal and bounds is None,
        lower_bound_at_least=lower_hook,
        upper_bound_at_most=upper_hook,
        protected_upper=local.q_local,
        objective=objective,
    )
    survivors = sorted(iter_bits(alive_l), key=lambda b: lower_order[b])
    candidates = sorted(
        survivors,
        key=lambda b: (adj_lower[b] & alive_u).bit_count(),
        reverse=True,
    )
    state = _SearchState(best_size)
    bitset_search(local, config, state, p0=alive_u, candidates=candidates)
    flush_search_trace(state)
    if state.best_upper is None:
        return None
    return state.best_upper, state.best_lower
