"""The packed compute kernels and kernel selection.

Every query surface (``pmbc_online``/``pmbc_online_star``, the caching
engine, the serving layer, index construction) funnels into the same
branch-and-bound over candidate vertex sets.  This package provides
three interchangeable implementations of that hot path — *kernels* —
plus the machinery to pick one:

- ``"bitset"`` (the default) — candidate sets are Python ints used as
  packed bitmasks over degree-ordered local ids; intersections are
  big-int ``&`` and set sizes are ``int.bit_count()``.  CPython big-int
  arithmetic processes 30 bits (or 64 on some builds) per machine word,
  so the per-node constant factor drops by roughly an order of
  magnitude on medium subgraphs — the same packed-set trick BBK
  (Baudin et al., 2024) and Chen et al. (2020) credit for their
  constant factors, with zero new dependencies.
- ``"words"`` — the bitset kernel with the mutation-heavy reduction
  loops rewritten over ``array('Q')`` word arrays
  (:mod:`repro.kernel.words`): alive flags and degree counters mutate
  in place, so the one-hop peeling cascade never reallocates a big int.
  The branch-and-bound and all scan-heavy passes are shared with
  ``"bitset"``.
- ``"set"`` — the original ``frozenset`` implementation, kept forever
  as the differential-testing reference.

All kernels explore the identical search tree (same candidate order,
same pruning decisions, same recorded answers and obs counters); see
``docs/kernel.md`` for the argument and ``tests/property`` for the
machine-checked version.

Selection, in priority order: an explicit ``kernel=`` argument on the
query/build API, :func:`set_default_kernel`, the ``PMBC_KERNEL``
environment variable, then the built-in default ``"bitset"``.
"""

from __future__ import annotations

import os

from repro.kernel.dynadj import DEFAULT_CHURN_BUDGET, DynamicPackedAdjacency
from repro.kernel.packed import (
    PackedLocalGraph,
    iter_bits,
    pack_count,
    pack_local,
)

__all__ = [
    "KERNEL_KINDS",
    "PACKED_KERNELS",
    "DEFAULT_KERNEL",
    "default_kernel",
    "set_default_kernel",
    "resolve_kernel",
    "is_packed_kernel",
    "PackedLocalGraph",
    "pack_local",
    "pack_count",
    "iter_bits",
    "DynamicPackedAdjacency",
    "DEFAULT_CHURN_BUDGET",
]

#: Valid ``kernel=`` selector values; CLI, config and env use these.
KERNEL_KINDS = ("bitset", "set", "words")

#: Kernels that run on the packed (mask-space) machinery.  They share
#: the fused two-hop extractor, the packed view, the greedy seed and
#: the branch-and-bound; they differ only in the reduction loops.
PACKED_KERNELS = ("bitset", "words")

#: The built-in default when nothing else selects a kernel.
DEFAULT_KERNEL = "bitset"

#: Environment variable consulted by :func:`default_kernel`.
KERNEL_ENV_VAR = "PMBC_KERNEL"

_override: str | None = None


def _validate(kernel: str) -> str:
    if kernel not in KERNEL_KINDS:
        raise ValueError(
            f"kernel must be one of {KERNEL_KINDS}, got {kernel!r}"
        )
    return kernel


def default_kernel() -> str:
    """The kernel used when no explicit ``kernel=`` is given.

    :func:`set_default_kernel` takes precedence over the
    ``PMBC_KERNEL`` environment variable, which takes precedence over
    the built-in default (``"bitset"``).
    """
    if _override is not None:
        return _override
    env = os.environ.get(KERNEL_ENV_VAR)
    if env:
        return _validate(env)
    return DEFAULT_KERNEL


def set_default_kernel(kernel: str | None) -> None:
    """Install a process-wide default kernel (None restores env/default)."""
    global _override
    _override = _validate(kernel) if kernel is not None else None


def resolve_kernel(kernel: str | None = None) -> str:
    """Validate an explicit kernel name, or fall back to the default.

    Call sites resolve once per query/engine/worker — never per search
    node — so the environment lookup stays off the hot path.
    """
    if kernel is None:
        return default_kernel()
    return _validate(kernel)


def is_packed_kernel(kernel: str) -> bool:
    """Whether a *resolved* kernel name runs on the packed machinery."""
    return kernel in PACKED_KERNELS
