"""The word-array kernel variant: in-place reductions on ``array('Q')``.

The bitset kernel keeps every candidate set in one Python big int, which
makes *scans* (intersection + popcount) fast but *mutations* expensive:
``alive ^= low`` inside the one-hop sweep reallocates and copies the
whole integer per cleared bit, so a reduction that peels hundreds of
vertices from a wide mask pays quadratic copying.  The ``"words"``
kernel (selected via ``kernel="words"`` on any query/build API) replaces
exactly those mutation-heavy loops:

- alive flags live in an ``array('Q')`` of 64-bit words mutated in
  place (clearing a bit touches one word, never the whole mask);
- alive degrees live in a parallel ``array('q')`` counter per vertex,
  maintained incrementally — the one-hop fixpoint becomes the classic
  peeling cascade (cost proportional to edges incident to *dead*
  vertices) instead of repeated whole-mask sweeps.

Everything scan-heavy is shared with the bitset kernel unchanged: the
fused two-hop extractor, the packed view, the greedy seed, the two-hop
(wedge) pass and the branch-and-bound all operate on int masks, and the
word arrays convert to/from ints at the pass boundary via
``int.to_bytes``/``int.from_bytes`` (single C-level copies).

Parity is load-bearing, exactly as for the bitset kernel: the one-hop
fixpoint is the unique greatest fixpoint, so the peeling cascade and the
bitset sweep cannot disagree, and the surrounding pass structure of
:func:`reduce_alive_words` mirrors :func:`repro.kernel.ops.reduce_alive`
decision for decision (same wedge-budget estimate on the entry masks,
same pass order).  The differential suite asserts identical answers,
trace counters and serialized indexes across all three kernels.
"""

from __future__ import annotations

from array import array

from repro.kernel.ops import two_hop_alive
from repro.kernel.packed import PackedLocalGraph, iter_bits

__all__ = ["one_hop_alive_words", "reduce_alive_words"]


def _to_words(mask: int, num_bits: int) -> array:
    """Pack an int mask into a little-endian ``array('Q')``."""
    num_bytes = ((num_bits + 63) >> 6) << 3
    words = array("Q")
    words.frombytes(mask.to_bytes(num_bytes or 8, "little"))
    return words


def _to_mask(words: array) -> int:
    """The int mask of a word array."""
    return int.from_bytes(words.tobytes(), "little")


def one_hop_alive_words(
    packed: PackedLocalGraph,
    tau_p: int,
    tau_w: int,
    alive_u: int,
    alive_l: int,
) -> tuple[int, int]:
    """The (tau_w, tau_p)-core fixpoint via word-array peeling.

    Computes the same unique greatest fixpoint as
    :func:`repro.kernel.ops.one_hop_alive`, but by incremental degree
    peeling: each vertex carries an alive-degree counter, deaths push
    onto a stack, and a death decrements its neighbors' counters —
    alive flags and counters mutate in place, so no pass ever copies a
    whole mask.
    """
    adj_upper = packed.adj_upper
    adj_lower = packed.adj_lower
    words_u = _to_words(alive_u, packed.num_upper)
    words_l = _to_words(alive_l, packed.num_lower)
    if alive_u == packed.all_upper and alive_l == packed.all_lower:
        deg_u = array("q", packed.deg_upper)
        deg_l = array("q", packed.deg_lower)
    else:
        deg_u = array("q", bytes(8 * max(1, packed.num_upper)))
        for b in iter_bits(alive_u):
            deg_u[b] = (adj_upper[b] & alive_l).bit_count()
        deg_l = array("q", bytes(8 * max(1, packed.num_lower)))
        for b in iter_bits(alive_l):
            deg_l[b] = (adj_lower[b] & alive_u).bit_count()

    # Seed the cascade with every under-floor vertex, then peel: the
    # stack order is irrelevant because the greatest fixpoint is unique.
    stack: list[int] = []
    for b in iter_bits(alive_u):
        if deg_u[b] < tau_w:
            words_u[b >> 6] &= ~(1 << (b & 63))
            stack.append(b << 1)
    for b in iter_bits(alive_l):
        if deg_l[b] < tau_p:
            words_l[b >> 6] &= ~(1 << (b & 63))
            stack.append((b << 1) | 1)
    while stack:
        tagged = stack.pop()
        b = tagged >> 1
        if tagged & 1:  # a lower vertex died: relax its upper neighbors
            for u in iter_bits(adj_lower[b]):
                if (words_u[u >> 6] >> (u & 63)) & 1:
                    deg_u[u] -= 1
                    if deg_u[u] < tau_w:
                        words_u[u >> 6] &= ~(1 << (u & 63))
                        stack.append(u << 1)
        else:
            for v in iter_bits(adj_upper[b]):
                if (words_l[v >> 6] >> (v & 63)) & 1:
                    deg_l[v] -= 1
                    if deg_l[v] < tau_p:
                        words_l[v >> 6] &= ~(1 << (v & 63))
                        stack.append((v << 1) | 1)
    return _to_mask(words_u), _to_mask(words_l)


def reduce_alive_words(
    packed: PackedLocalGraph,
    tau_p: int,
    tau_w: int,
    alive_u: int,
    alive_l: int,
    use_two_hop: bool = True,
    wedge_budget: int | None = None,
) -> tuple[int, int]:
    """The words-kernel :func:`repro.kernel.ops.reduce_alive`.

    Identical pass structure — one-hop fixpoint, wedge estimate against
    the entry masks, at most one two-hop pass per side, one-hop fixpoint
    again if anything died — with the one-hop passes running on word
    arrays.  The two-hop pass is scan-dominated, so it stays on int
    masks (shared with the bitset kernel), keeping its mid-pass kill
    order — and therefore the survivor set — bit-for-bit identical.
    """
    if wedge_budget is None:
        from repro.mbc.reductions import DEFAULT_WEDGE_BUDGET

        wedge_budget = DEFAULT_WEDGE_BUDGET
    entry_u, entry_l = alive_u, alive_l
    adj_upper = packed.adj_upper
    adj_lower = packed.adj_lower
    alive_u, alive_l = one_hop_alive_words(
        packed, tau_p, tau_w, alive_u, alive_l
    )
    if use_two_hop:
        wedges = sum(
            (adj_lower[b] & entry_u).bit_count() ** 2
            for b in iter_bits(alive_l)
        ) + sum(
            (adj_upper[b] & entry_l).bit_count() ** 2
            for b in iter_bits(alive_u)
        )
        if wedges <= wedge_budget:
            alive_u, changed_u = two_hop_alive(
                adj_upper, packed.upper_order, alive_u, alive_l, tau_p, tau_w
            )
            alive_l, changed_l = two_hop_alive(
                adj_lower, packed.lower_order, alive_l, alive_u, tau_w, tau_p
            )
            if changed_u or changed_l:
                alive_u, alive_l = one_hop_alive_words(
                    packed, tau_p, tau_w, alive_u, alive_l
                )
    return alive_u, alive_l
