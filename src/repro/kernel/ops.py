"""Mask-space search-space prunes over a :class:`PackedLocalGraph`.

These are the bitset kernel's counterparts of the per-round passes the
set kernel runs on materialized :class:`~repro.graph.subgraph.LocalGraph`
copies: Lemma 9 z-bound filtering and the one-/two-hop reductions of
:mod:`repro.mbc.reductions`.  Instead of restricting the graph, every
pass narrows a pair of *alive masks* (upper-bit and lower-bit ints) over
one packed view built once per two-hop extraction — no intermediate sets
or adjacency rebuilds between progressive rounds.

Exact parity with the set kernel is load-bearing (the differential suite
asserts identical answers *and* identical prune tallies), so each pass
reproduces the set implementation's decision order:

- the one-hop fixpoint is the unique greatest fixpoint, so a sweep over
  alive bits equals the set kernel's queue cascade;
- the two-hop filter kills vertices mid-pass in ascending local-id
  order (the packed rank array recovers that order from degree-ordered
  bit space), so later vertices see earlier kills exactly as in the set
  kernel;
- the wedge-budget estimate counts degrees against the masks that were
  alive *on entry*, matching the set kernel's use of the z-restricted
  working graph's degrees.
"""

from __future__ import annotations

from bisect import bisect_right
from operator import neg
from typing import TYPE_CHECKING

from repro.kernel.packed import PackedLocalGraph, iter_bits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corenum.bounds import CoreBounds

__all__ = [
    "z_alive_masks",
    "one_hop_alive",
    "two_hop_alive",
    "reduce_alive",
]


def _z_index(packed: PackedLocalGraph, bounds: "CoreBounds"):
    """Per-extraction Lemma 9 lookup: sorted z values + suffix masks.

    Each layer's bits are sorted by ascending z bound; ``suffix[i]`` is
    the OR of all bits from position ``i`` on, so "every vertex with
    z bound > best_size" is one ``bisect`` plus one table lookup per
    round instead of a per-vertex ``z_bound`` call.  Memoized on the
    packed view, keyed by the bounds object (stable per workload).
    """
    cache = getattr(packed, "_z_index", None)
    if cache is not None and cache[0] is bounds:
        return cache[1]
    local = packed.local
    own_side = local.upper_side
    upper_globals = local.upper_globals
    lower_globals = local.lower_globals
    z_own = bounds.z[own_side]
    z_other = bounds.z[own_side.other]

    def layer(order, globals_, z_arr):
        pairs = sorted(
            [(z_arr[globals_[v]], bit) for bit, v in enumerate(order)]
        )
        zs = [z for z, _ in pairs]
        suffix = [0] * (len(pairs) + 1)
        for i in range(len(pairs) - 1, -1, -1):
            suffix[i] = suffix[i + 1] | (1 << pairs[i][1])
        return zs, suffix

    z_q = (
        z_own[upper_globals[local.q_local]]
        if local.q_local is not None
        else None
    )
    index = (layer(packed.upper_order, upper_globals, z_own),
             layer(packed.lower_order, lower_globals, z_other),
             z_q)
    packed._z_index = (bounds, index)
    return index


def z_alive_masks(
    packed: PackedLocalGraph,
    bounds: "CoreBounds",
    best_size: int,
    anchored: bool,
) -> tuple[int, int] | None:
    """Lemma 9 alive masks: clear bits whose z bound cannot beat the
    incumbent.  Returns None when the anchor itself is bounded out."""
    if best_size <= 0:
        return packed.all_upper, packed.all_lower
    (zs_u, suffix_u), (zs_l, suffix_l), z_q = _z_index(packed, bounds)
    if anchored and z_q <= best_size:
        return None
    alive_u = suffix_u[bisect_right(zs_u, best_size)]
    alive_l = suffix_l[bisect_right(zs_l, best_size)]
    return alive_u, alive_l


def one_hop_alive(
    packed: PackedLocalGraph,
    tau_p: int,
    tau_w: int,
    alive_u: int,
    alive_l: int,
) -> tuple[int, int]:
    """The (tau_w, tau_p)-core fixpoint of the alive submask.

    Sweeps each layer, clearing vertices whose alive degree (popcount
    of adjacency ∩ other-layer alive mask) is below the floor, until
    stable — the greatest fixpoint, identical to the set kernel's queue
    cascade.
    """
    adj_upper = packed.adj_upper
    adj_lower = packed.adj_lower
    # Initial under-floor detection.  On full masks it is one bisection
    # per layer: bit order is degree-descending, so the precomputed
    # degree arrays are sorted and the initial survivors are a bit
    # prefix.  Otherwise, one popcount sweep over the alive bits.
    if alive_u == packed.all_upper and alive_l == packed.all_lower:
        ku = bisect_right(packed.deg_upper, -tau_w, key=neg)
        kl = bisect_right(packed.deg_lower, -tau_p, key=neg)
        died_u = alive_u >> ku << ku
        died_l = alive_l >> kl << kl
    else:
        died_u = 0
        mask = alive_u
        while mask:
            low = mask & -mask
            mask ^= low
            if (adj_upper[low.bit_length() - 1] & alive_l).bit_count() < tau_w:
                died_u |= low
        died_l = 0
        mask = alive_l
        while mask:
            low = mask & -mask
            mask ^= low
            if (adj_lower[low.bit_length() - 1] & alive_u).bit_count() < tau_p:
                died_l |= low
    alive_u ^= died_u
    alive_l ^= died_l
    # Change-filtered sweeps to the fixpoint: only survivors adjacent
    # to this round's deaths (one word-level AND to test) are
    # re-popcounted, so rounds after the initial extinction touch a
    # handful of vertices.  The greatest fixpoint is unique, so the
    # sweep order cannot diverge from the set kernel's queue cascade.
    while died_u or died_l:
        new_l = 0
        if died_u:
            mask = alive_l
            while mask:
                low = mask & -mask
                mask ^= low
                adj = adj_lower[low.bit_length() - 1]
                if adj & died_u and (adj & alive_u).bit_count() < tau_p:
                    new_l |= low
            alive_l ^= new_l
        died_l |= new_l
        new_u = 0
        if died_l:
            mask = alive_u
            while mask:
                low = mask & -mask
                mask ^= low
                adj = adj_upper[low.bit_length() - 1]
                if adj & died_l and (adj & alive_l).bit_count() < tau_w:
                    new_u |= low
            alive_u ^= new_u
        died_u, died_l = new_u, 0
    return alive_u, alive_l


def two_hop_alive(
    masks: list[int],
    order: list[int],
    alive: int,
    alive_other: int,
    need_partners: int,
    need_common: int,
) -> tuple[int, int]:
    """One own-side pass of the two-hop (wedge) reduction on masks.

    ``masks`` is the own-side adjacency (bit-indexed, masks over the
    other side); ``order`` maps bit positions to local ids — alive
    vertices are visited, and killed mid-pass, in ascending local-id
    order, matching the set kernel.  Returns ``(alive, changed)``.
    """
    changed = 0
    for x_bit in sorted(iter_bits(alive), key=order.__getitem__):
        x_sel = 1 << x_bit
        if not alive & x_sel:
            continue
        mask_x = masks[x_bit] & alive_other
        qualified = 0
        if mask_x:
            rest = alive & ~x_sel
            while rest:
                low = rest & -rest
                rest ^= low
                if (mask_x & masks[low.bit_length() - 1]).bit_count() >= need_common:
                    qualified += 1
                    if qualified + 1 >= need_partners:
                        break
        if qualified + 1 < need_partners:
            alive ^= x_sel
            changed = 1
    return alive, changed


def reduce_alive(
    packed: PackedLocalGraph,
    tau_p: int,
    tau_w: int,
    alive_u: int,
    alive_l: int,
    use_two_hop: bool = True,
    wedge_budget: int | None = None,
) -> tuple[int, int]:
    """Mask-space :func:`repro.mbc.reductions.reduce_preserving_maximum`.

    One-hop fixpoint, optionally one two-hop pass per side (skipped when
    the wedge estimate exceeds the budget), then the one-hop fixpoint
    again if anything died.  The entry masks stand in for the working
    graph the set kernel would have materialized: the wedge estimate
    counts degrees against them, so both kernels take the same skip
    decision.
    """
    if wedge_budget is None:
        from repro.mbc.reductions import DEFAULT_WEDGE_BUDGET

        wedge_budget = DEFAULT_WEDGE_BUDGET
    entry_u, entry_l = alive_u, alive_l
    adj_upper = packed.adj_upper
    adj_lower = packed.adj_lower
    alive_u, alive_l = one_hop_alive(packed, tau_p, tau_w, alive_u, alive_l)
    if use_two_hop:
        wedges = sum(
            (adj_lower[b] & entry_u).bit_count() ** 2
            for b in iter_bits(alive_l)
        ) + sum(
            (adj_upper[b] & entry_l).bit_count() ** 2
            for b in iter_bits(alive_u)
        )
        if wedges <= wedge_budget:
            alive_u, changed_u = two_hop_alive(
                adj_upper, packed.upper_order, alive_u, alive_l, tau_p, tau_w
            )
            alive_l, changed_l = two_hop_alive(
                adj_lower, packed.lower_order, alive_l, alive_u, tau_w, tau_p
            )
            if changed_u or changed_l:
                alive_u, alive_l = one_hop_alive(
                    packed, tau_p, tau_w, alive_u, alive_l
                )
    return alive_u, alive_l
