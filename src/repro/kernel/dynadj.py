"""Dynamic full-graph packed adjacency with in-place edge patching.

The packed kernels win their benchmarks by re-encoding adjacency as
degree-ordered bitmasks — but a mutating workload would naively pay a
full re-pack per edge update.  :class:`DynamicPackedAdjacency` keeps
*global* packed rows (one big-int mask **and** one ``array('Q')``
word row per vertex, mirroring the bitset and words kernels) live under
insertions and deletions:

- **Patching** sets/clears one bit in the two incident rows per update
  — the word rows genuinely in place, the int rows by a single-row
  rebind — so mutation never re-packs untouched vertices.
- **Degree-order bookkeeping**: bit positions are assigned by the same
  stable degree-descending rule as :func:`repro.kernel.packed.pack_local`.
  Updates drift real degrees away from the packed order; the total
  drift (``Σ |deg - deg_at_pack|``) is tracked O(1) per patch and a
  full re-pack is amortized behind ``churn_budget`` — the re-pack
  counter stays 0 while drift remains inside the budget.
- **Extraction**: :meth:`extract` builds a two-hop
  :class:`~repro.graph.subgraph.LocalGraph` (with the packed view
  attached) straight from the live adjacency, bit-for-bit identical to
  :func:`repro.kernel.packed.two_hop_packed` on a materialized
  snapshot — so post-update search-tree rebuilds skip the snapshot
  round-trip entirely.

Byte-level equality is testable at two granularities:
:meth:`canonical_bytes` (id-space, order-independent — invariant under
patch-vs-rebuild within any churn budget) and :meth:`packed_bytes`
(bit-space rows — identical to a from-scratch instance after
:meth:`force_repack`).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left

from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.subgraph import LocalGraph
from repro.kernel.packed import PackedLocalGraph, _unpack_adjacency

__all__ = ["DynamicPackedAdjacency", "DEFAULT_CHURN_BUDGET"]

#: Default degree-drift budget before a full re-pack is triggered.
DEFAULT_CHURN_BUDGET = 256


class DynamicPackedAdjacency:
    """Patchable packed adjacency of a whole (mutating) bipartite graph.

    Parameters
    ----------
    graph:
        Starting graph; its adjacency is copied into mutable sets.
    churn_budget:
        Total absolute degree drift (summed over vertices) tolerated
        before the bit order is recomputed and all rows re-packed.
        ``0`` re-packs on every effective update (the naive baseline).
    """

    def __init__(
        self, graph: BipartiteGraph, churn_budget: int = DEFAULT_CHURN_BUDGET
    ) -> None:
        self._adj: dict[Side, list[set[int]]] = {
            side: [
                set(graph.neighbors(side, v))
                for v in range(graph.num_vertices_on(side))
            ]
            for side in Side
        }
        self.churn_budget = churn_budget
        self.patch_count = 0
        self.repack_count = 0
        self.drift = 0
        self._order: dict[Side, list[int]] = {}
        self._rank: dict[Side, list[int]] = {}
        self._bit_rows: dict[Side, list[int]] = {}
        self._word_rows: dict[Side, list[array]] = {}
        self._packed_deg: dict[Side, list[int]] = {}
        self._edges = sum(len(ns) for ns in self._adj[Side.UPPER])
        # Sorted-row cache for snapshot(): only rows dirtied since the
        # last snapshot are re-sorted, so steady-state snapshots cost
        # O(touched vertices), not O(E).
        self._snap_rows: dict[Side, list[tuple[int, ...]]] | None = None
        self._snap_dirty: dict[Side, set[int]] = {
            Side.UPPER: set(),
            Side.LOWER: set(),
        }
        self._repack()
        self.repack_count = 0  # the initial pack is construction, not churn

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------
    def num_vertices_on(self, side: Side) -> int:
        """Current vertex count on ``side``."""
        return len(self._adj[side])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` (upper id, lower id) exists."""
        return (
            u < len(self._adj[Side.UPPER]) and v in self._adj[Side.UPPER][u]
        )

    def degree(self, side: Side, x: int) -> int:
        """Current degree of vertex ``x``."""
        return len(self._adj[side][x])

    def neighbors(self, side: Side, x: int) -> set[int]:
        """Current neighbor set of ``x`` (live, do not mutate)."""
        return self._adj[side][x]

    def ensure_vertex(self, side: Side, x: int) -> None:
        """Extend ``side`` so vertex id ``x`` exists (isolated if new)."""
        self._grow(side, x)

    def bit_row(self, side: Side, x: int) -> int:
        """The big-int mask row of ``x`` over the opposite bit space."""
        return self._bit_rows[side][x]

    def word_row(self, side: Side, x: int) -> array:
        """The ``array('Q')`` word row of ``x`` (shared, do not mutate)."""
        return self._word_rows[side][x]

    def stats(self) -> dict:
        """JSON-friendly patching counters."""
        return {
            "patches": self.patch_count,
            "repacks": self.repack_count,
            "drift": self.drift,
            "churn_budget": self.churn_budget,
        }

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert edge ``(u, v)``; returns False for a no-op."""
        self._grow(Side.UPPER, u)
        self._grow(Side.LOWER, v)
        if v in self._adj[Side.UPPER][u]:
            return False
        self._adj[Side.UPPER][u].add(v)
        self._adj[Side.LOWER][v].add(u)
        self._edges += 1
        self._snap_dirty[Side.UPPER].add(u)
        self._snap_dirty[Side.LOWER].add(v)
        self._patch(u, v, set_bit=True)
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete edge ``(u, v)``; returns False for a no-op."""
        if not self.has_edge(u, v):
            return False
        self._adj[Side.UPPER][u].discard(v)
        self._adj[Side.LOWER][v].discard(u)
        self._edges -= 1
        self._snap_dirty[Side.UPPER].add(u)
        self._snap_dirty[Side.LOWER].add(v)
        self._patch(u, v, set_bit=False)
        return True

    def force_repack(self) -> None:
        """Recompute the bit order and re-pack every row now."""
        self._repack()

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def extract(
        self,
        graph: BipartiteGraph | None,
        side: Side,
        q: int,
        kernel: str = "bitset",
    ) -> LocalGraph:
        """Two-hop ``H_q`` with the packed view attached, from live rows.

        Signature-compatible with
        :func:`repro.core.online.extract_local` (the ``graph`` argument
        is ignored — the live adjacency is authoritative), and
        bit-identical to ``two_hop_packed(snapshot(), side, q)``.
        """
        adj = self._adj
        other = side.other
        lower_globals = sorted(adj[side][q])
        nbrs = [adj[other][v] for v in lower_globals]
        counts: dict[int, int] = {q: 0}
        get = counts.get
        for ns in nbrs:
            for u in ns:
                counts[u] = get(u, 0) + 1
        counts[q] = len(lower_globals)
        upper_globals = sorted(counts)
        num_upper = len(upper_globals)
        num_lower = len(lower_globals)
        upper_degrees = [counts[u] for u in upper_globals]
        lower_degrees = [len(ns) for ns in nbrs]
        upper_order = sorted(
            range(num_upper), key=upper_degrees.__getitem__, reverse=True
        )
        lower_order = sorted(
            range(num_lower), key=lower_degrees.__getitem__, reverse=True
        )
        upper_rank = [0] * num_upper
        for bit, u in enumerate(upper_order):
            upper_rank[u] = bit
        lower_rank = [0] * num_lower
        for bit, v in enumerate(lower_order):
            lower_rank[v] = bit
        gbit = {upper_globals[u]: bit for bit, u in enumerate(upper_order)}
        adj_upper = [0] * num_upper
        adj_lower = [0] * num_lower
        for vi, ns in enumerate(nbrs):
            vsel = 1 << lower_rank[vi]
            row = 0
            for u in ns:
                ubit = gbit[u]
                row |= 1 << ubit
                adj_upper[ubit] |= vsel
            adj_lower[lower_rank[vi]] = row

        local = LocalGraph(
            upper_globals=upper_globals,
            lower_globals=lower_globals,
            upper_side=side,
            q_local=bisect_left(upper_globals, q),
            adj_builder=lambda: _unpack_adjacency(local),
        )
        local._packed = PackedLocalGraph(
            local=local,
            upper_order=upper_order,
            lower_order=lower_order,
            upper_rank=upper_rank,
            lower_rank=lower_rank,
            adj_upper=adj_upper,
            adj_lower=adj_lower,
            deg_upper=[upper_degrees[u] for u in upper_order],
            deg_lower=[lower_degrees[v] for v in lower_order],
            all_upper=(1 << num_upper) - 1,
            all_lower=(1 << num_lower) - 1,
        )
        return local

    def snapshot(self) -> BipartiteGraph:
        """An immutable :class:`BipartiteGraph` of the current state.

        Incremental: sorted rows are cached between calls and only the
        vertices touched since the previous snapshot are re-sorted, so
        a steady-state update batch pays O(affected · deg), not O(E).
        """
        if self._snap_rows is None:
            self._snap_rows = {
                side: [tuple(sorted(ns)) for ns in self._adj[side]]
                for side in Side
            }
        else:
            for side in Side:
                rows = self._snap_rows[side]
                adj = self._adj[side]
                while len(rows) < len(adj):
                    rows.append(())
                for x in self._snap_dirty[side]:
                    rows[x] = tuple(sorted(adj[x]))
        self._snap_dirty[Side.UPPER].clear()
        self._snap_dirty[Side.LOWER].clear()
        return BipartiteGraph._from_sorted_rows(
            tuple(self._snap_rows[Side.UPPER]),
            tuple(self._snap_rows[Side.LOWER]),
            self._edges,
        )

    # ------------------------------------------------------------------
    # Serialization (differential-test surface)
    # ------------------------------------------------------------------
    def canonical_bytes(self) -> bytes:
        """Id-space serialization, independent of the packed bit order.

        Equal across any two instances holding the same graph, no
        matter how they got there (patched vs rebuilt) or how far the
        bit order has drifted.
        """
        out = bytearray()
        out += len(self._adj[Side.UPPER]).to_bytes(8, "big")
        out += len(self._adj[Side.LOWER]).to_bytes(8, "big")
        for ns in self._adj[Side.UPPER]:
            out += len(ns).to_bytes(4, "big")
            for v in sorted(ns):
                out += v.to_bytes(4, "big")
        return bytes(out)

    def packed_bytes(self) -> bytes:
        """Bit-space serialization of orders and mask rows.

        Equal to a from-scratch instance's only when the bit order is
        fresh — i.e. after :meth:`force_repack`.
        """
        out = bytearray()
        for side in Side:
            order = self._order[side]
            out += len(order).to_bytes(8, "big")
            for x in order:
                out += x.to_bytes(4, "big")
            width = (len(self._adj[side.other]) + 7) // 8
            for row in self._bit_rows[side]:
                out += row.to_bytes(width, "big")
        return bytes(out)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _grow(self, side: Side, x: int) -> None:
        while x >= len(self._adj[side]):
            bit = len(self._order[side])
            self._adj[side].append(set())
            self._order[side].append(len(self._adj[side]) - 1)
            self._rank[side].append(bit)
            self._bit_rows[side].append(0)
            self._word_rows[side].append(array("Q"))
            self._packed_deg[side].append(0)

    def _patch(self, u: int, v: int, set_bit: bool) -> None:
        bu = self._rank[Side.UPPER][u]
        bv = self._rank[Side.LOWER][v]
        if set_bit:
            self._bit_rows[Side.UPPER][u] |= 1 << bv
            self._bit_rows[Side.LOWER][v] |= 1 << bu
        else:
            self._bit_rows[Side.UPPER][u] &= ~(1 << bv)
            self._bit_rows[Side.LOWER][v] &= ~(1 << bu)
        for side, x, bit in (
            (Side.UPPER, u, bv),
            (Side.LOWER, v, bu),
        ):
            row = self._word_rows[side][x]
            idx = bit >> 6
            while idx >= len(row):
                row.append(0)
            if set_bit:
                row[idx] |= 1 << (bit & 63)
            else:
                row[idx] &= ~(1 << (bit & 63)) & 0xFFFFFFFFFFFFFFFF
        self.patch_count += 2
        for side, x in ((Side.UPPER, u), (Side.LOWER, v)):
            deg = len(self._adj[side][x])
            packed = self._packed_deg[side][x]
            before = deg - 1 if set_bit else deg + 1
            self.drift += abs(deg - packed) - abs(before - packed)
        if self.drift > self.churn_budget:
            self._repack()

    def _repack(self) -> None:
        for side in Side:
            adj = self._adj[side]
            order = sorted(
                range(len(adj)), key=lambda i: len(adj[i]), reverse=True
            )
            rank = [0] * len(order)
            for bit, x in enumerate(order):
                rank[x] = bit
            self._order[side] = order
            self._rank[side] = rank
            self._packed_deg[side] = [len(ns) for ns in adj]
        for side in Side:
            other_rank = self._rank[side.other]
            bit_rows: list[int] = []
            word_rows: list[array] = []
            for ns in self._adj[side]:
                mask = 0
                for w in ns:
                    mask |= 1 << other_rank[w]
                bit_rows.append(mask)
                words = array("Q")
                rest = mask
                while rest:
                    words.append(rest & 0xFFFFFFFFFFFFFFFF)
                    rest >>= 64
                word_rows.append(words)
            self._bit_rows[side] = bit_rows
            self._word_rows[side] = word_rows
        self.drift = 0
        self.repack_count += 1
