"""Shared-subgraph caches for batch-vectorized packed search.

A batch that groups requests by query vertex already shares one two-hop
extraction (and therefore one packed view) per group; this module makes
the *per-request* work shareable too.  Both caches memoize pure
functions of the packed view, so reuse can never change an answer, a
prune tally or a round record — it only skips recomputation:

- :func:`cached_reduce` — the reduction fixpoint of a progressive round
  is a pure function of ``(floors, alive masks)`` over one packed view.
  Requests with different τ floors on the same ``H_q`` frequently pass
  through identical rounds (the progressive ladder starts at the same
  ``floor_w`` and halves), and near-duplicate requests replay whole
  ladders; each distinct round computes once per extraction.
- :func:`cached_seed` — the greedy seed ``C*_0`` is a pure function of
  ``(tau_p, tau_w)`` over the extraction (every kernel grows the
  identical seed), and group members repeat floor pairs constantly.

Both caches live on the extraction they describe (the packed view / the
``LocalGraph``), so the engine's two-hop LRU and the per-worker caches
of :mod:`repro.exec` bound their lifetime, and a small per-extraction
entry cap bounds their size.  Process-wide reuse tallies
(:func:`reduce_reuse_count`, :func:`seed_reuse_count`) mirror
:func:`repro.kernel.pack_count` for regression tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.ops import reduce_alive
from repro.kernel.packed import PackedLocalGraph
from repro.kernel.words import reduce_alive_words

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.subgraph import LocalGraph

__all__ = [
    "cached_reduce",
    "cached_seed",
    "reduce_reuse_count",
    "seed_reuse_count",
]

#: Per-extraction entry caps; on overflow the cache is simply cleared
#: (correctness never depends on retention).
REDUCE_CACHE_CAP = 64
SEED_CACHE_CAP = 32

_reduce_reuses = 0
_seed_reuses = 0


def reduce_reuse_count() -> int:
    """Process-wide count of reduction rounds served from the cache."""
    return _reduce_reuses


def seed_reuse_count() -> int:
    """Process-wide count of greedy seeds served from the cache."""
    return _seed_reuses


def cached_reduce(
    packed: PackedLocalGraph,
    kernel: str,
    tau_p: int,
    tau_w: int,
    alive_u: int,
    alive_l: int,
    use_two_hop: bool,
) -> tuple[int, int]:
    """The reduction fixpoint of one progressive round, memoized.

    The cache key excludes the kernel: ``"bitset"`` and ``"words"``
    compute the identical fixpoint (machine-checked by the differential
    suite), so a mixed-kernel workload on one cached extraction still
    shares entries.
    """
    global _reduce_reuses
    memo = getattr(packed, "_reduce_memo", None)
    if memo is None:
        memo = {}
        packed._reduce_memo = memo
    key = (tau_p, tau_w, alive_u, alive_l, use_two_hop)
    hit = memo.get(key)
    if hit is not None:
        _reduce_reuses += 1
        return hit
    fn = reduce_alive_words if kernel == "words" else reduce_alive
    result = fn(
        packed, tau_p, tau_w, alive_u, alive_l, use_two_hop=use_two_hop
    )
    if len(memo) >= REDUCE_CACHE_CAP:
        memo.clear()
    memo[key] = result
    return result


def cached_seed(local: "LocalGraph", tau_p: int, tau_w: int, compute):
    """The greedy seed for ``(tau_p, tau_w)``, memoized on the extraction.

    ``compute`` is a zero-argument callable producing the seed on a
    miss; the key excludes the kernel because every kernel grows the
    identical seed over the same defined candidate order.
    """
    global _seed_reuses
    memo = getattr(local, "_seed_memo", None)
    if memo is None:
        memo = {}
        local._seed_memo = memo
    key = (tau_p, tau_w)
    if key in memo:
        _seed_reuses += 1
        return memo[key]
    result = compute()
    if len(memo) >= SEED_CACHE_CAP:
        memo.clear()
    memo[key] = result
    return result
