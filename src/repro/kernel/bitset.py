"""The bitset branch-and-bound: the hot recursion on packed ints.

A line-for-line port of the ``frozenset`` recursion in
:mod:`repro.mbc.branch_bound` where the candidate sets ``P``/``W`` are
int bitmasks, ``R``/``X`` are lists of lower *bit positions*,
intersection is ``&`` and set size is ``int.bit_count()``.  Because the
packed lower-bit order equals the set kernel's candidate order (stable
degree-descending — see :mod:`repro.kernel.packed`), both kernels visit
the same search-tree nodes, take the same pruning decisions, record the
same incumbents and accumulate identical per-rule prune tallies; only
the constant factor differs.

The recursion is a closure over the per-run constants (adjacency masks,
floors, caps, bound hooks) so the inner loop pays cell loads instead of
attribute lookups; incumbent and prune counters live in local variables
and are written back to the shared search state once per run.

Bound hooks (`lower_bound_at_least` / ``upper_bound_at_most``) are
defined on *local* vertex ids, so the recursion translates bit
positions through the packed order arrays at call time; recorded
bicliques are translated back to local-id frozensets once, at the end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.subgraph import LocalGraph
from repro.kernel.packed import pack_local

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.mbc.branch_bound import BranchBoundConfig, _SearchState

__all__ = ["bitset_search"]


def bitset_search(
    local: LocalGraph,
    config: "BranchBoundConfig",
    state: "_SearchState",
    p0: int | None = None,
    candidates: list[int] | None = None,
) -> None:
    """Run one branch-and-bound on the packed view of ``local``.

    Mutates ``state`` exactly like the set kernel's recursion:
    ``best_upper``/``best_lower`` become local-id frozensets of the best
    recorded biclique (or stay None) and the per-rule prune counters
    accumulate the same totals.

    ``p0`` (initial upper mask) and ``candidates`` (lower bit positions
    in visit order) restrict the search to an alive submask — the
    progressive loop passes its post-reduction masks here instead of
    materializing a restricted graph.  Defaults search the whole view.
    """
    packed = pack_local(local)
    adj_lower = packed.adj_lower
    upper_order = packed.upper_order
    lower_order = packed.lower_order
    tau_p = config.tau_p
    tau_w = config.tau_w
    max_p = config.max_p
    max_w = config.max_w
    prune_non_maximal = config.prune_non_maximal
    lower_at_least = config.lower_bound_at_least
    upper_at_most = config.upper_bound_at_most
    # Objective hooks, hoisted like every other per-run constant.  Both
    # kernels call the identical bound methods, so pruning decisions
    # (and thus the visited search tree) stay in lockstep.
    score_of = config.objective.score
    bound_of = config.objective.bound
    protected_bit = (
        packed.upper_rank[config.protected_upper]
        if config.protected_upper is not None
        else None
    )

    best_size = state.best_size
    best_p = best_w = 0
    have_best = False
    nodes = 0
    skip_suffix = drop_prefix = skip_tau = 0
    prune_shape = prune_dominated = prune_bound = 0

    def recurse(p: int, w: int, r: list[int], x: list[int]) -> None:
        nonlocal best_size, best_p, best_w, have_best, nodes
        nonlocal skip_suffix, drop_prefix, skip_tau
        nonlocal prune_shape, prune_dominated, prune_bound
        nodes += 1
        # _maybe_record, inlined on bit counts.
        p_count = p.bit_count()
        w_count = w.bit_count()
        if (
            p_count >= tau_p
            and w_count >= tau_w
            and (max_p is None or p_count <= max_p)
            and (max_w is None or w_count <= max_w)
        ):
            score = score_of(p_count, w_count)
            if score > best_size:
                best_p, best_w, best_size = p, w, score
                have_best = True

        x_current = list(x)
        for idx, v_star in enumerate(r):
            # PMBC-OL* candidate skip: v_star would be the (|W|+1)-th
            # lower vertex of anything recorded below.
            if lower_at_least is not None:
                if lower_at_least(lower_order[v_star], w_count + 1) <= best_size:
                    skip_suffix += 1
                    x_current.append(v_star)
                    continue

            p_new = p & adj_lower[v_star]
            if upper_at_most is not None:
                limit = p_new.bit_count()
                mask = p_new
                while mask:
                    low = mask & -mask
                    mask ^= low
                    bit = low.bit_length() - 1
                    if (
                        bit != protected_bit
                        and upper_at_most(upper_order[bit], limit) <= best_size
                    ):
                        p_new ^= low
                drop_prefix += limit - p_new.bit_count()
            p_size = p_new.bit_count()
            if p_size < tau_p:
                skip_tau += 1
                x_current.append(v_star)
                continue

            w_new = w | (1 << v_star)
            r_new: list[int] = []
            for v in r[idx + 1 :]:
                overlap = (p_new & adj_lower[v]).bit_count()
                if overlap == p_size:
                    w_new |= 1 << v  # free vertex: adjacent to all of P'
                elif overlap >= tau_p:
                    r_new.append(v)

            w_new_count = w_new.bit_count()
            if max_w is not None and w_new_count > max_w:
                prune_shape += 1
                x_current.append(v_star)
                continue

            dominated = False
            x_new: list[int] = []
            for v in x_current:
                overlap = (p_new & adj_lower[v]).bit_count()
                if overlap == p_size:
                    dominated = True
                    if prune_non_maximal:
                        break
                if overlap >= tau_p:
                    x_new.append(v)
            if prune_non_maximal and dominated:
                prune_dominated += 1
                x_current.append(v_star)
                continue

            max_possible_p = p_size if max_p is None else min(p_size, max_p)
            max_possible_w = w_new_count + len(r_new)
            if max_w is not None:
                max_possible_w = min(max_possible_w, max_w)
            if (
                max_possible_p >= tau_p
                and max_possible_w >= tau_w
                and bound_of(max_possible_p, max_possible_w) > best_size
            ):
                recurse(p_new, w_new, r_new, x_new)
            else:
                prune_bound += 1
            x_current.append(v_star)

    if p0 is None:
        p0 = packed.all_upper
    if candidates is None:
        candidates = list(range(packed.num_lower))
    recurse(p0, 0, candidates, [])

    state.nodes += nodes
    state.skip_suffix += skip_suffix
    state.drop_prefix += drop_prefix
    state.skip_tau += skip_tau
    state.prune_shape += prune_shape
    state.prune_dominated += prune_dominated
    state.prune_bound += prune_bound
    if have_best:
        state.best_size = best_size
        state.best_upper = packed.upper_locals(best_p)
        state.best_lower = packed.lower_locals(best_w)
