"""repro.adaptive — a traffic-adaptive partial PMBC-Index.

Full PMBC-Index construction is the expensive path of the paper's
pipeline, but a heavy-tailed (Zipf) query stream concentrates most
traffic on a small head of hot vertices.  This subsystem serves that
head at index speed — ``O(deg(q) + |C|)``, Theorem 2 — without ever
paying for a full build:

- :class:`~repro.adaptive.hotset.HotSetTracker` — exponentially
  decayed per-vertex query-frequency counters fed by the serving
  layer's admission path; vertices whose decayed count crosses a
  promotion threshold become build candidates;
- :class:`~repro.adaptive.partial.PartialIndex` — a bounded-memory
  store of per-vertex search trees with LRU eviction, byte accounting
  under the paper's storage model, and edge-invalidation hooks shared
  with :mod:`repro.core.dynamic`;
- :class:`~repro.adaptive.builder.BackgroundBuilder` — builds hot
  vertices' trees off the request path on the :mod:`repro.exec`
  substrate, inserts them under the memory budget, and periodically
  persists the hot set through the unified
  :meth:`repro.core.index.PMBCIndex.save` so a restarted server
  re-warms from disk.

The serving layer (:class:`repro.serve.PMBCService` with
``ServiceConfig(adaptive=True)``) mounts the partial index at the top
of its degradation chain: partial-index hit → prebuilt index → engine
→ online search.  See ``docs/adaptive.md``.
"""

from repro.adaptive.hotset import HotSetTracker
from repro.adaptive.partial import MISS, PartialIndex
from repro.adaptive.builder import BackgroundBuilder

__all__ = ["HotSetTracker", "PartialIndex", "BackgroundBuilder", "MISS"]
