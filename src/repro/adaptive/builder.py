"""Budgeted background construction of hot vertices' search trees.

The :class:`BackgroundBuilder` closes the loop between the traffic
signal (:class:`~repro.adaptive.hotset.HotSetTracker`) and the answer
tier (:class:`~repro.adaptive.partial.PartialIndex`): a single
sweeper thread periodically ranks the hot vertices, builds the trees
of the ones not yet resident on the :mod:`repro.exec` substrate (the
``build_tree`` task — the same per-vertex construction the full
PMBC-IC build runs), and inserts them under the memory budget.  Builds
happen entirely off the request path; the serving workers only ever
*read* the partial index.

Every build emits a trace summary (``kind="adaptive_build"`` with a
``build`` span) through the injected sink, so ``/debug/traces`` and
the trace ring show warmup activity alongside query traces.

The builder also owns hot-set persistence: every ``persist_interval``
seconds — and once at shutdown — the resident trees are exported
through :meth:`repro.adaptive.partial.PartialIndex.to_index` and
written with the unified ``index.save``, so a restarted server
re-warms from disk instead of re-paying the build cost.

Shutdown is deterministic: :meth:`close` signals the sweeper, wakes
it, and joins it before returning, so no build is in flight when the
owning service closes its executor — the ordering
``builder.close() → executor.close()`` is the contract
:meth:`repro.serve.PMBCService.close` maintains.
"""

from __future__ import annotations

import os
import threading
import time

from repro.adaptive.hotset import HotSetTracker
from repro.adaptive.partial import PartialIndex
from repro.exec.executor import Executor, ExecutorClosedError
from repro.graph.bipartite import BipartiteGraph, Side
from repro.obs.trace import SearchTrace

__all__ = ["BackgroundBuilder"]

#: Histogram buckets (seconds) for per-tree build latency.
BUILD_SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class BackgroundBuilder:
    """Builds per-vertex search trees for the hot set, off-path.

    Parameters
    ----------
    graph:
        The served graph (persistence needs its layer sizes).
    executor:
        The :mod:`repro.exec` backend builds run on.  With a thread
        backend the build runs on the sweeper thread itself; with a
        process backend it ships to the pool.
    partial:
        The bounded store built trees are inserted into.
    hotset:
        The traffic signal promotions are read from.
    threshold:
        Decayed query count at which a vertex becomes a build candidate.
    interval:
        Seconds between sweeps (a sweep can be forced with :meth:`kick`).
    max_builds_per_sweep:
        Cap on trees built in one sweep, so a cold start with a huge
        hot set still yields the sweeper thread regularly.
    persist_path / persist_interval:
        When ``persist_path`` is set, the resident trees are saved
        there every ``persist_interval`` seconds and at shutdown.
    metrics:
        Optional duck-typed registry (``pmbc_adaptive_builds_total``,
        ``pmbc_adaptive_evictions_total``,
        ``pmbc_adaptive_build_queue_depth``,
        ``pmbc_adaptive_build_seconds``).
    trace_sink:
        Optional callable receiving each build's trace summary dict.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        executor: Executor,
        partial: PartialIndex,
        hotset: HotSetTracker,
        threshold: float = 3.0,
        interval: float = 0.1,
        max_builds_per_sweep: int = 64,
        persist_path: str | os.PathLike | None = None,
        persist_interval: float = 30.0,
        metrics=None,
        trace_sink=None,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if max_builds_per_sweep < 1:
            raise ValueError(
                "max_builds_per_sweep must be >= 1, "
                f"got {max_builds_per_sweep}"
            )
        if persist_interval <= 0:
            raise ValueError(
                f"persist_interval must be positive, got {persist_interval}"
            )
        self._graph = graph
        self._executor = executor
        self._partial = partial
        self._hotset = hotset
        self.threshold = threshold
        self.interval = interval
        self.max_builds_per_sweep = max_builds_per_sweep
        self.persist_path = (
            os.fspath(persist_path) if persist_path is not None else None
        )
        self.persist_interval = persist_interval
        self._trace_sink = trace_sink

        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None
        self._lifecycle_lock = threading.Lock()
        self._pending = 0
        self._last_persist = time.monotonic()
        self.builds_total = 0
        self.build_failures_total = 0
        self.persists_total = 0

        self._builds_counter = None
        self._evictions_counter = None
        self._build_seconds = None
        if metrics is not None:
            self._builds_counter = metrics.counter(
                "pmbc_adaptive_builds_total",
                "Per-vertex search trees built by the background builder.",
            )
            self._evictions_counter = metrics.counter(
                "pmbc_adaptive_evictions_total",
                "Partial-index entries evicted (LRU, replacement, oversize).",
            )
            metrics.gauge(
                "pmbc_adaptive_build_queue_depth",
                "Hot vertices awaiting a background build.",
            ).set_function(self.pending)
            self._build_seconds = metrics.histogram(
                "pmbc_adaptive_build_seconds",
                "Per-tree background build latency.",
                buckets=BUILD_SECONDS_BUCKETS,
            )

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "BackgroundBuilder":
        """Start the sweeper thread (idempotent)."""
        with self._lifecycle_lock:
            if self._stop.is_set():
                raise RuntimeError("builder already closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop,
                    name="pmbc-adaptive-builder",
                    daemon=True,
                )
                self._thread.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Stop sweeping, join the thread, persist one final snapshot.

        Idempotent.  With ``wait=True`` (the default) the sweeper —
        including any build currently running on it — has finished when
        this returns, so the owning service can safely close the
        executor afterwards.
        """
        with self._lifecycle_lock:
            already = self._stop.is_set()
            self._stop.set()
            self._wake.set()
            thread = self._thread
        if wait and thread is not None:
            thread.join()
        if not already and wait:
            self._persist(final=True)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun."""
        return self._stop.is_set()

    @property
    def running(self) -> bool:
        """True while the sweeper thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def kick(self) -> None:
        """Wake the sweeper immediately instead of awaiting the interval."""
        self._wake.set()

    def update_graph(self, graph: BipartiteGraph, executor=None) -> None:
        """Point future builds at a post-update graph snapshot.

        Streaming updates (:meth:`repro.serve.PMBCService.update_batch`)
        call this after swapping the serving graph so persistence and
        subsequent builds see the new layer sizes.  ``executor``
        optionally replaces the build substrate — a process pool whose
        workers inherited the pre-update graph at spawn cannot build
        correct trees anymore, so the service hands over an in-process
        fallback.  A build already in flight on the old substrate may
        still land; its key is in the update's affected set, so the
        caller's eviction pass runs after this swap.
        """
        self._graph = graph
        if executor is not None:
            self._executor = executor

    # ------------------------------------------------------------------
    # sweeping

    def pending(self) -> int:
        """Build-queue depth: hot, not-yet-resident vertices last seen."""
        return self._pending

    def _candidates(self) -> list[tuple[Side, int]]:
        hot = self._hotset.hot(self.threshold)
        return [key for key, __ in hot if key not in self._partial]

    def run_once(self) -> int:
        """Run one sweep synchronously; returns the number of builds.

        Public for tests and warmup scripts — the background thread
        runs exactly this between waits.
        """
        candidates = self._candidates()
        self._pending = len(candidates)
        built = 0
        for side, vertex in candidates[: self.max_builds_per_sweep]:
            if self._stop.is_set():
                break
            if self._build(side, vertex):
                built += 1
            self._pending = max(0, self._pending - 1)
        self._pending = len(self._candidates()) if not self._stop.is_set() else 0
        self._hotset.prune()
        return built

    def _build(self, side: Side, vertex: int) -> bool:
        trace = SearchTrace()
        trace.annotate(
            kind="adaptive_build",
            build={"side": side.value, "vertex": vertex},
        )
        start = time.perf_counter()
        try:
            with trace.span("build"):
                __, __, tree, bicliques = self._executor.run(
                    "build_tree", (side, vertex)
                )
        except ExecutorClosedError:
            self._stop.set()
            return False
        except Exception as exc:
            self.build_failures_total += 1
            trace.annotate(error=repr(exc))
            self._emit_trace(trace)
            return False
        elapsed = time.perf_counter() - start
        inserted, evicted = self._partial.put(side, vertex, tree, bicliques)
        self.builds_total += 1
        if self._builds_counter is not None:
            self._builds_counter.inc()
        if self._build_seconds is not None:
            self._build_seconds.observe(elapsed)
        if evicted and self._evictions_counter is not None:
            self._evictions_counter.inc(len(evicted))
        for cold_side, cold_vertex in evicted:
            # Eviction feedback: a vertex we just dropped should need a
            # fresh burst of traffic (not a stale decayed count) to be
            # rebuilt, or the builder would thrash at the budget edge.
            self._hotset.forget(cold_side, cold_vertex)
        trace.annotate(
            inserted=inserted,
            evicted=[[s.value, x] for s, x in evicted],
            tree_nodes=len(tree),
            partial_bytes=self._partial.total_bytes,
        )
        self._emit_trace(trace)
        return inserted

    def _emit_trace(self, trace: SearchTrace) -> None:
        if self._trace_sink is not None:
            try:
                self._trace_sink(trace.to_dict())
            except Exception:  # pragma: no cover - sink must never kill us
                pass

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.interval)
            self._wake.clear()
            if self._stop.is_set():
                break
            try:
                self.run_once()
            except Exception:  # defensive: never kill the sweeper
                self.build_failures_total += 1
            self._maybe_persist()

    # ------------------------------------------------------------------
    # persistence

    def _maybe_persist(self) -> None:
        if self.persist_path is None:
            return
        now = time.monotonic()
        if now - self._last_persist < self.persist_interval:
            return
        self._persist()

    def _persist(self, final: bool = False) -> None:
        if self.persist_path is None:
            return
        if final and len(self._partial) == 0:
            return
        index = self._partial.to_index(
            self._graph.num_upper, self._graph.num_lower
        )
        tmp_path = f"{self.persist_path}.tmp"
        try:
            index.save(tmp_path, format=self._persist_format())
            os.replace(tmp_path, self.persist_path)
            self.persists_total += 1
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        finally:
            self._last_persist = time.monotonic()

    def _persist_format(self) -> str:
        from repro.core.index import PMBCIndex

        extension = os.path.splitext(self.persist_path or "")[1].lower()
        return (
            "binary"
            if extension in PMBCIndex.BINARY_EXTENSIONS
            else "json"
        )

    # ------------------------------------------------------------------

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait until no hot vertex lacks a resident tree (or timeout).

        Tests and benchmarks use this to make "the head is warm" a
        deterministic state instead of a sleep.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._stop.is_set():
                return False
            if not self._candidates():
                return True
            self.kick()
            time.sleep(0.01)
        return not self._candidates()

    def stats(self) -> dict:
        """A JSON-friendly snapshot for ``/stats``."""
        return {
            "running": self.running,
            "threshold": self.threshold,
            "pending": self.pending(),
            "builds": self.builds_total,
            "build_failures": self.build_failures_total,
            "persists": self.persists_total,
            "persist_path": self.persist_path,
        }
