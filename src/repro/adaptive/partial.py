"""A bounded-memory, LRU-evicted store of per-vertex search trees.

The :class:`PartialIndex` is the answer tier the adaptive subsystem
serves from: a mapping ``(side, vertex) -> search tree`` holding trees
for only the *hot* vertices, under a configurable byte budget measured
with the same storage model as :class:`repro.core.index.PMBCIndex`
(``NODE_WORDS`` machine words per tree node, ``|U|+|L|+2`` words per
biclique instance).  Each entry owns private copies of the bicliques
its tree references, so eviction frees exactly the accounted bytes.

Lookups are the PMBC-IQ walk of Algorithm 2 — identical semantics to
:func:`repro.core.query.pmbc_index_query` — and return :data:`MISS`
when the vertex has no resident tree, letting the serving layer fall
through its degradation chain without treating the miss as a failure.

Invalidation reuses the affected-set rule of
:func:`repro.core.dynamic.edge_affected_sets`: an edge update drops
exactly the resident trees a :class:`~repro.core.dynamic.DynamicPMBCIndex`
would rebuild.

Persistence round-trips through a plain :class:`PMBCIndex`
(:meth:`to_index` / :meth:`warm_from`), so the unified
``index.save``/``PMBCIndex.load`` formats — JSON and binary alike —
carry the hot set across restarts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.dynamic import edge_affected_sets
from repro.core.index import (
    NODE_WORDS,
    WORD_BYTES,
    BicliqueArray,
    PMBCIndex,
    SearchTree,
    SearchTreeNode,
)
from repro.core.result import Biclique
from repro.graph.bipartite import BipartiteGraph, Side
from repro.obs.trace import current_trace

__all__ = ["MISS", "PartialIndex", "entry_size_bytes"]


class _Miss:
    """The singleton "no resident tree" sentinel type."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<partial-index MISS>"


#: Returned by :meth:`PartialIndex.lookup` when the queried vertex has
#: no resident tree.  Distinct from ``None``, which is a *covered*
#: vertex's genuine "no biclique satisfies the constraints" answer.
MISS = _Miss()


def entry_size_bytes(tree: SearchTree, bicliques) -> int:
    """Bytes one resident tree accounts for under the paper's model."""
    tree_bytes = len(tree) * NODE_WORDS * WORD_BYTES
    array_bytes = sum(
        (len(b.upper) + len(b.lower) + 2) * WORD_BYTES for b in bicliques
    )
    return tree_bytes + array_bytes


@dataclass
class _Entry:
    tree: SearchTree
    bicliques: list[Biclique]   # position == the tree's biclique_id space
    size_bytes: int


class PartialIndex:
    """Per-vertex search trees under a byte budget with LRU eviction.

    Parameters
    ----------
    budget_bytes:
        Upper bound on the total accounted size of resident entries.
        Inserting past it evicts least-recently-*used* entries (both
        lookups and inserts refresh recency); an entry larger than the
        whole budget is rejected outright.

    All methods are thread-safe: the serving workers look up entries
    while the background builder inserts and the persistence path
    exports.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 0:
            raise ValueError(
                f"budget_bytes must be >= 0, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[Side, int], _Entry] = OrderedDict()
        self._bytes = 0
        self.evictions_total = 0
        self.invalidations_total = 0

    # ------------------------------------------------------------------
    # residency

    def __contains__(self, key: tuple[Side, int]) -> bool:
        """Whether ``(side, vertex)`` has a resident tree."""
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        """Number of resident trees."""
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Accounted size of every resident entry."""
        with self._lock:
            return self._bytes

    def keys(self) -> list[tuple[Side, int]]:
        """Resident ``(side, vertex)`` keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def coverage(self, num_upper: int, num_lower: int) -> float:
        """Fraction of the graph's vertices with a resident tree."""
        total = num_upper + num_lower
        if total == 0:
            return 0.0
        return len(self) / total

    # ------------------------------------------------------------------
    # insert / evict

    def put(
        self,
        side: Side,
        vertex: int,
        tree: SearchTree,
        bicliques,
    ) -> tuple[bool, list[tuple[Side, int]]]:
        """Insert (or replace) a vertex's tree, evicting LRU to fit.

        ``bicliques`` is the tree's private biclique list, positionally
        matching the ``biclique_id`` values stored in its nodes (the
        shape :func:`repro.exec.tasks.task_build_tree` returns).
        Returns ``(inserted, evicted_keys)``; ``inserted`` is False
        when the entry alone exceeds the whole budget.
        """
        bicliques = list(bicliques)
        entry = _Entry(
            tree=tree,
            bicliques=bicliques,
            size_bytes=entry_size_bytes(tree, bicliques),
        )
        key = (side, vertex)
        evicted: list[tuple[Side, int]] = []
        with self._lock:
            if entry.size_bytes > self.budget_bytes:
                # Too large to ever fit; dropping the whole hot set for
                # one monster tree would be a net loss.
                previous = self._entries.pop(key, None)
                if previous is not None:
                    self._bytes -= previous.size_bytes
                    self.evictions_total += 1
                    evicted.append(key)
                return False, evicted
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous.size_bytes
            while (
                self._bytes + entry.size_bytes > self.budget_bytes
                and self._entries
            ):
                cold_key, cold = self._entries.popitem(last=False)
                self._bytes -= cold.size_bytes
                self.evictions_total += 1
                evicted.append(cold_key)
            self._entries[key] = entry
            self._bytes += entry.size_bytes
        return True, evicted

    def evict(self, side: Side, vertex: int) -> bool:
        """Drop one resident tree; returns True when it was resident."""
        with self._lock:
            entry = self._entries.pop((side, vertex), None)
            if entry is None:
                return False
            self._bytes -= entry.size_bytes
            self.evictions_total += 1
        return True

    def clear(self) -> int:
        """Drop every resident tree; returns the number removed."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self.evictions_total += removed
        return removed

    # ------------------------------------------------------------------
    # invalidation (shared rule with repro.core.dynamic)

    def invalidate_edge(
        self, graph: BipartiteGraph, u: int, v: int
    ) -> list[tuple[Side, int]]:
        """Drop resident trees an update to edge ``(u, v)`` affects.

        Uses :func:`repro.core.dynamic.edge_affected_sets` — the same
        rule :class:`~repro.core.dynamic.DynamicPMBCIndex` rebuilds by
        — with neighborhoods read from ``graph``.  For deletions pass
        the graph *before* the edge is removed; for insertions the
        graph after, matching the dynamic module's convention.
        Returns the dropped keys (the builder re-queues hot ones).
        """
        neighbors_u = graph.neighbors(Side.UPPER, u) if (
            0 <= u < graph.num_upper
        ) else ()
        neighbors_v = graph.neighbors(Side.LOWER, v) if (
            0 <= v < graph.num_lower
        ) else ()
        affected_upper, affected_lower = edge_affected_sets(
            neighbors_u, neighbors_v, u, v
        )
        dropped: list[tuple[Side, int]] = []
        with self._lock:
            for side, affected in (
                (Side.UPPER, affected_upper),
                (Side.LOWER, affected_lower),
            ):
                for x in affected:
                    entry = self._entries.pop((side, x), None)
                    if entry is not None:
                        self._bytes -= entry.size_bytes
                        self.invalidations_total += 1
                        dropped.append((side, x))
        return dropped

    # ------------------------------------------------------------------
    # lookup (Algorithm 2 over a resident tree)

    def lookup(self, side: Side, vertex: int, tau_u: int, tau_l: int):
        """PMBC-IQ against the resident tree, or :data:`MISS`.

        A hit refreshes the entry's LRU recency and traces
        ``partial_hits`` / ``index_nodes_visited``; ``None`` is a
        *covered* vertex's genuine empty answer.
        """
        key = (side, vertex)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return MISS
            self._entries.move_to_end(key)
        tree = entry.tree
        trace = current_trace()
        visited = 0
        answer: Biclique | None = None
        node_id: int | None = 0 if tree.nodes else None
        while node_id is not None:
            visited += 1
            node = tree.nodes[node_id]
            if node.biclique_id is not None:
                candidate = entry.bicliques[node.biclique_id]
                if candidate.satisfies(tau_u, tau_l):
                    answer = candidate
                    break
            next_id: int | None = None
            for child_id in (node.left, node.right):
                if child_id is None:
                    continue
                child = tree.nodes[child_id]
                if child.tau_u <= tau_u and child.tau_l <= tau_l:
                    next_id = child_id
                    break
            node_id = next_id
        if trace.enabled:
            trace.add("partial_hits")
            trace.add("index_nodes_visited", visited)
        return answer

    # ------------------------------------------------------------------
    # persistence (through the unified PMBCIndex formats)

    def to_index(self, num_upper: int, num_lower: int) -> PMBCIndex:
        """Export the resident trees as a plain :class:`PMBCIndex`.

        Uncovered vertices get empty trees; biclique instances are
        deduplicated into one shared array.  The result round-trips
        through ``index.save`` / ``PMBCIndex.load`` in either format.
        """
        array = BicliqueArray()
        trees: dict[Side, list[SearchTree]] = {
            Side.UPPER: [SearchTree() for __ in range(num_upper)],
            Side.LOWER: [SearchTree() for __ in range(num_lower)],
        }
        with self._lock:
            items = [
                (key, entry.tree, list(entry.bicliques))
                for key, entry in self._entries.items()
            ]
        for (side, vertex), tree, bicliques in items:
            if not 0 <= vertex < len(trees[side]):
                continue  # stale entry from a shrunken graph
            id_map = [array.add(b)[0] for b in bicliques]
            nodes = [
                SearchTreeNode(
                    tau_u=n.tau_u,
                    tau_l=n.tau_l,
                    biclique_id=None
                    if n.biclique_id is None
                    else id_map[n.biclique_id],
                    left=n.left,
                    right=n.right,
                )
                for n in tree.nodes
            ]
            trees[side][vertex] = SearchTree(nodes=nodes)
        return PMBCIndex(
            num_upper=num_upper,
            num_lower=num_lower,
            trees=trees,
            array=array,
        )

    def warm_from(self, index: PMBCIndex) -> int:
        """Seed resident trees from a saved index (warm restart).

        Non-empty trees are adopted until the budget is reached;
        entries that would not fit are skipped (never evicting what was
        already warmed).  Returns the number of trees adopted.
        """
        adopted = 0
        for side in Side:
            for vertex, tree in enumerate(index.trees.get(side, [])):
                if not tree.nodes:
                    continue
                referenced = sorted(
                    {
                        node.biclique_id
                        for node in tree.nodes
                        if node.biclique_id is not None
                    }
                )
                id_map = {old: new for new, old in enumerate(referenced)}
                bicliques = [index.biclique(old) for old in referenced]
                nodes = [
                    SearchTreeNode(
                        tau_u=n.tau_u,
                        tau_l=n.tau_l,
                        biclique_id=None
                        if n.biclique_id is None
                        else id_map[n.biclique_id],
                        left=n.left,
                        right=n.right,
                    )
                    for n in tree.nodes
                ]
                fresh = SearchTree(nodes=nodes)
                size = entry_size_bytes(fresh, bicliques)
                if self.total_bytes + size > self.budget_bytes:
                    continue
                inserted, evicted = self.put(side, vertex, fresh, bicliques)
                if inserted and not evicted:
                    adopted += 1
        return adopted

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-friendly snapshot for ``/stats`` and dashboards."""
        with self._lock:
            entries = len(self._entries)
            size = self._bytes
        return {
            "entries": entries,
            "bytes": size,
            "budget_bytes": self.budget_bytes,
            "utilization": size / self.budget_bytes if self.budget_bytes else 0.0,
            "evictions": self.evictions_total,
            "invalidations": self.invalidations_total,
        }
