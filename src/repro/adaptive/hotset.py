"""Decayed per-vertex query-frequency tracking (the "hot set" signal).

The serving layer records every admitted request's query vertex here.
Counts decay exponentially with a configurable half-life, so the
tracker converges on the *current* head of the traffic distribution
instead of its all-time histogram: a vertex that stops being queried
halves its score every ``half_life`` seconds and eventually falls
below the promotion threshold again.

The tracker is deliberately tiny — a dict of ``(count, stamp)`` pairs
behind one lock, decayed lazily on access — because it sits on the
request admission path.  Memory is bounded by :meth:`prune` (dropping
entries whose decayed count fell under a floor) plus a hard
``max_entries`` cap that discards the coldest entries on overflow.
"""

from __future__ import annotations

import threading
import time

from repro.graph.bipartite import Side

__all__ = ["HotSetTracker"]


class HotSetTracker:
    """Exponentially decayed per-``(side, vertex)`` query counters.

    Parameters
    ----------
    half_life:
        Seconds for an untouched counter to halve.
    max_entries:
        Hard cap on tracked vertices; exceeding it evicts the coldest
        entries (smallest decayed count) down to the cap.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        half_life: float = 300.0,
        max_entries: int = 100_000,
        clock=time.monotonic,
    ) -> None:
        if half_life <= 0:
            raise ValueError(f"half_life must be positive, got {half_life}")
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.half_life = half_life
        self.max_entries = max_entries
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (decayed count as of stamp, stamp)
        self._counts: dict[tuple[Side, int], tuple[float, float]] = {}

    # ------------------------------------------------------------------

    def _decayed(self, count: float, stamp: float, now: float) -> float:
        if now <= stamp:
            return count
        return count * 0.5 ** ((now - stamp) / self.half_life)

    def record(self, side: Side, vertex: int, amount: float = 1.0) -> float:
        """Add ``amount`` to a vertex's decayed count; returns the new count."""
        key = (side, vertex)
        now = self._clock()
        with self._lock:
            count, stamp = self._counts.get(key, (0.0, now))
            count = self._decayed(count, stamp, now) + amount
            self._counts[key] = (count, now)
            if len(self._counts) > self.max_entries:
                self._evict_coldest_locked(now)
        return count

    def count(self, side: Side, vertex: int) -> float:
        """The current decayed count of a vertex (0 when untracked)."""
        now = self._clock()
        with self._lock:
            entry = self._counts.get((side, vertex))
        if entry is None:
            return 0.0
        return self._decayed(entry[0], entry[1], now)

    def hot(self, threshold: float) -> list[tuple[tuple[Side, int], float]]:
        """Vertices whose decayed count is >= ``threshold``, hottest first.

        Returns ``[((side, vertex), score), ...]`` sorted by score
        descending (ties broken deterministically by key).
        """
        now = self._clock()
        with self._lock:
            items = list(self._counts.items())
        scored = [
            (key, self._decayed(count, stamp, now))
            for key, (count, stamp) in items
        ]
        hot = [(key, score) for key, score in scored if score >= threshold]
        hot.sort(key=lambda item: (-item[1], item[0][0].value, item[0][1]))
        return hot

    def prune(self, floor: float = 0.05) -> int:
        """Drop entries whose decayed count fell below ``floor``.

        Returns the number of entries removed.  Called opportunistically
        by the background builder so a long-running tracker's memory
        stays proportional to the *live* hot set.
        """
        now = self._clock()
        with self._lock:
            cold = [
                key
                for key, (count, stamp) in self._counts.items()
                if self._decayed(count, stamp, now) < floor
            ]
            for key in cold:
                del self._counts[key]
        return len(cold)

    def forget(self, side: Side, vertex: int) -> None:
        """Drop one vertex's counter entirely (eviction feedback)."""
        with self._lock:
            self._counts.pop((side, vertex), None)

    def _evict_coldest_locked(self, now: float) -> None:
        overflow = len(self._counts) - self.max_entries
        if overflow <= 0:
            return
        by_score = sorted(
            self._counts.items(),
            key=lambda item: self._decayed(item[1][0], item[1][1], now),
        )
        for key, __ in by_score[:overflow]:
            del self._counts[key]

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of tracked vertices (including cooled-off ones)."""
        with self._lock:
            return len(self._counts)

    def snapshot(self, limit: int = 20) -> list[dict]:
        """The ``limit`` hottest entries as JSON-friendly dicts."""
        now = self._clock()
        with self._lock:
            items = list(self._counts.items())
        scored = sorted(
            (
                (key, self._decayed(count, stamp, now))
                for key, (count, stamp) in items
            ),
            key=lambda item: -item[1],
        )
        return [
            {"side": key[0].value, "vertex": key[1], "score": round(score, 3)}
            for key, score in scored[:limit]
        ]
