"""repro — a reproduction of "Efficient Personalized Maximum Biclique
Search" (Wang, Zhang, Lin, Qin, Zhou — ICDE 2022).

Quickstart::

    from repro import from_edges, Side, build_index_star, pmbc_index_query

    graph = from_edges([("alice", "p1"), ("bob", "p1"), ("alice", "p2")])
    index = build_index_star(graph)
    q = graph.vertex_by_label(Side.UPPER, "alice")
    biclique = pmbc_index_query(index, Side.UPPER, q, tau_u=1, tau_l=1)
    print(biclique.with_labels(graph))

Packages:

- :mod:`repro.graph` — bipartite graph substrate (structure, IO,
  generators, two-hop subgraphs, sampling);
- :mod:`repro.corenum` — (α,β)-core decomposition and the Lemma 9
  biclique-size bounds;
- :mod:`repro.mbc` — maximum biclique search substrate (greedy seed,
  reductions, Branch&Bound, progressive bounding, brute-force oracles);
- :mod:`repro.mbe` — maximal biclique enumeration (secondary oracle);
- :mod:`repro.core` — the paper's contribution: PMBC-OL / PMBC-OL*,
  the PMBC-Index, PMBC-IQ, PMBC-IC / PMBC-IC*, parallel construction,
  and the basic-index baseline;
- :mod:`repro.datasets` — synthetic analogues of the paper's KONECT
  datasets;
- :mod:`repro.bench` — experiment harness reproducing every table and
  figure of Section VII;
- :mod:`repro.serve` — the production query-serving layer: request
  queue, worker pool, deadlines, single-flight dedup, metrics, and an
  HTTP/JSON front-end (``pmbc serve``).
"""

from repro.core import (
    Biclique,
    PMBCIndex,
    build_index,
    build_index_parallel,
    build_index_star,
    build_naive_index,
    pmbc_index_query,
    pmbc_online,
    pmbc_online_star,
)
from repro.graph import (
    BipartiteGraph,
    Side,
    Vertex,
    from_biadjacency,
    from_edges,
    read_edge_list,
    read_konect,
)
from repro.serve import (
    PMBCClient,
    PMBCServer,
    PMBCService,
    ServiceConfig,
)

__version__ = "1.0.0"

__all__ = [
    "Biclique",
    "BipartiteGraph",
    "PMBCClient",
    "PMBCIndex",
    "PMBCServer",
    "PMBCService",
    "ServiceConfig",
    "Side",
    "Vertex",
    "build_index",
    "build_index_parallel",
    "build_index_star",
    "build_naive_index",
    "from_biadjacency",
    "from_edges",
    "pmbc_index_query",
    "pmbc_online",
    "pmbc_online_star",
    "read_edge_list",
    "read_konect",
    "__version__",
]
