"""The core bipartite graph data structure.

The graph is immutable once built.  Vertices live in two disjoint layers
(:attr:`Side.UPPER` and :attr:`Side.LOWER`) and are identified inside a
layer by contiguous integer ids ``0 .. n_side - 1``.  Optional labels map
those ids back to application-level identifiers (user names, product
ids, ...).

Adjacency is stored as sorted tuples of neighbor ids per vertex, with
lazily built ``set`` views for the intersection-heavy branch-and-bound
code.  This keeps construction cheap and lookups O(1) amortized.
"""

from __future__ import annotations

import enum
from typing import Hashable, Iterable, Iterator, NamedTuple, Sequence


class Side(enum.Enum):
    """Layer designator for bipartite vertices."""

    UPPER = "upper"
    LOWER = "lower"

    #: The opposite layer (assigned below; members are singletons, so a
    #: plain attribute beats a property in the hot repair loops).
    other: "Side"

    # Members are singletons — the identity hash agrees with enum
    # equality and avoids a Python-level __hash__ call on every
    # (side, vertex) dict/set operation in the incremental repair path.
    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Side.{self.name}"


Side.UPPER.other = Side.LOWER
Side.LOWER.other = Side.UPPER


class Vertex(NamedTuple):
    """A vertex handle: which layer it is in plus its id in that layer."""

    side: Side
    id: int


class BipartiteGraph:
    """An undirected, unweighted bipartite graph ``G(V=(U,L), E)``.

    Parameters
    ----------
    adj_upper:
        ``adj_upper[u]`` is an iterable of lower-layer neighbor ids of
        upper vertex ``u``.  Neighbor lists may be unsorted and contain
        duplicates; they are normalized during construction.
    upper_labels / lower_labels:
        Optional application-level labels, one per vertex.

    Use :func:`repro.graph.builders.from_edges` for the common
    edge-list construction path.
    """

    __slots__ = (
        "_adj",
        "_adj_sets",
        "_num_edges",
        "_labels",
        "_label_to_id",
    )

    def __init__(
        self,
        adj_upper: Sequence[Iterable[int]],
        num_lower: int | None = None,
        upper_labels: Sequence[Hashable] | None = None,
        lower_labels: Sequence[Hashable] | None = None,
    ) -> None:
        upper = [tuple(sorted(set(ns))) for ns in adj_upper]
        if num_lower is None:
            num_lower = 1 + max((ns[-1] for ns in upper if ns), default=-1)
        lower_lists: list[list[int]] = [[] for __ in range(num_lower)]
        edge_count = 0
        for u, neighbors in enumerate(upper):
            for v in neighbors:
                if v < 0 or v >= num_lower:
                    raise ValueError(
                        f"lower neighbor id {v} of upper vertex {u} out of "
                        f"range [0, {num_lower})"
                    )
                lower_lists[v].append(u)
                edge_count += 1
        lower = [tuple(ns) for ns in lower_lists]  # already sorted by u order
        self._adj: dict[Side, tuple[tuple[int, ...], ...]] = {
            Side.UPPER: tuple(upper),
            Side.LOWER: tuple(lower),
        }
        self._adj_sets: dict[Side, list[frozenset[int]] | None] = {
            Side.UPPER: None,
            Side.LOWER: None,
        }
        self._num_edges = edge_count
        self._labels: dict[Side, tuple[Hashable, ...] | None] = {
            Side.UPPER: tuple(upper_labels) if upper_labels is not None else None,
            Side.LOWER: tuple(lower_labels) if lower_labels is not None else None,
        }
        for side in Side:
            labels = self._labels[side]
            if labels is not None and len(labels) != self.num_vertices_on(side):
                raise ValueError(
                    f"{side.value} labels length {len(labels)} does not match "
                    f"vertex count {self.num_vertices_on(side)}"
                )
        self._label_to_id: dict[Side, dict[Hashable, int] | None] = {
            Side.UPPER: None,
            Side.LOWER: None,
        }

    @classmethod
    def _from_sorted_rows(
        cls,
        upper: tuple[tuple[int, ...], ...],
        lower: tuple[tuple[int, ...], ...],
        num_edges: int,
    ) -> "BipartiteGraph":
        """Trusted constructor: rows already normalized and mirrored.

        Callers guarantee each row is a sorted duplicate-free tuple of
        in-range ids and that ``upper``/``lower`` describe the same
        edge set.  Used by the dynamic-adjacency snapshot path
        (:mod:`repro.kernel.dynadj`) to skip the O(E) normalization on
        every update batch.
        """
        graph = object.__new__(cls)
        graph._adj = {Side.UPPER: upper, Side.LOWER: lower}
        graph._adj_sets = {Side.UPPER: None, Side.LOWER: None}
        graph._num_edges = num_edges
        graph._labels = {Side.UPPER: None, Side.LOWER: None}
        graph._label_to_id = {Side.UPPER: None, Side.LOWER: None}
        return graph

    # ------------------------------------------------------------------
    # Size accessors
    # ------------------------------------------------------------------
    @property
    def num_upper(self) -> int:
        """Number of vertices in the upper layer ``|U(G)|``."""
        return len(self._adj[Side.UPPER])

    @property
    def num_lower(self) -> int:
        """Number of vertices in the lower layer ``|L(G)|``."""
        return len(self._adj[Side.LOWER])

    @property
    def num_vertices(self) -> int:
        """``|V(G)| = |U(G)| + |L(G)|``."""
        return self.num_upper + self.num_lower

    @property
    def num_edges(self) -> int:
        """``|E(G)|`` — also written ``|G|`` in the paper."""
        return self._num_edges

    def num_vertices_on(self, side: Side) -> int:
        """Number of vertices in the given layer."""
        return len(self._adj[side])

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, side: Side, v: int) -> tuple[int, ...]:
        """Sorted neighbor ids (in the opposite layer) of vertex ``v``."""
        return self._adj[side][v]

    def neighbor_set(self, side: Side, v: int) -> frozenset[int]:
        """Neighbors of ``v`` as a frozenset (cached per layer)."""
        sets = self._adj_sets[side]
        if sets is None:
            sets = [frozenset(ns) for ns in self._adj[side]]
            self._adj_sets[side] = sets
        return sets[v]

    def degree(self, side: Side, v: int) -> int:
        """``deg(v)`` — the number of neighbors of ``v``."""
        return len(self._adj[side][v])

    def max_degree(self, side: Side) -> int:
        """Maximum degree over the given layer (0 for an empty layer)."""
        return max((len(ns) for ns in self._adj[side]), default=0)

    def degrees(self, side: Side) -> list[int]:
        """All degrees of the given layer, indexed by vertex id."""
        return [len(ns) for ns in self._adj[side]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` exists (``u`` upper id, ``v`` lower id)."""
        if self.degree(Side.UPPER, u) <= self.degree(Side.LOWER, v):
            return v in self.neighbor_set(Side.UPPER, u)
        return u in self.neighbor_set(Side.LOWER, v)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as ``(upper_id, lower_id)`` pairs."""
        for u, neighbors in enumerate(self._adj[Side.UPPER]):
            for v in neighbors:
                yield (u, v)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices, upper layer first."""
        for side in (Side.UPPER, Side.LOWER):
            for v in range(self.num_vertices_on(side)):
                yield Vertex(side, v)

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def label(self, side: Side, v: int) -> Hashable:
        """The application-level label of ``v`` (the id itself if unlabeled)."""
        labels = self._labels[side]
        return v if labels is None else labels[v]

    def labels(self, side: Side) -> tuple[Hashable, ...] | None:
        """All labels of the layer, or None when the layer is unlabeled."""
        return self._labels[side]

    def vertex_by_label(self, side: Side, label: Hashable) -> int:
        """Resolve a label back to a vertex id (KeyError if unknown)."""
        labels = self._labels[side]
        if labels is None:
            if isinstance(label, int) and 0 <= label < self.num_vertices_on(side):
                return label
            raise KeyError(label)
        mapping = self._label_to_id[side]
        if mapping is None:
            mapping = {lab: i for i, lab in enumerate(labels)}
            self._label_to_id[side] = mapping
        return mapping[label]

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def degree_one_free(self) -> bool:
        """True when every vertex has at least one incident edge.

        The paper assumes this of its inputs ("all the vertices with
        degree equal to zero are removed").
        """
        return all(
            self.degree(side, v) > 0
            for side in Side
            for v in range(self.num_vertices_on(side))
        )

    def without_isolated_vertices(self) -> "BipartiteGraph":
        """A copy with zero-degree vertices dropped (ids are compacted).

        Labels are carried over so external identifiers stay stable.
        """
        keep = {
            side: [
                v
                for v in range(self.num_vertices_on(side))
                if self.degree(side, v) > 0
            ]
            for side in Side
        }
        remap_lower = {v: i for i, v in enumerate(keep[Side.LOWER])}
        adj_upper = [
            [remap_lower[v] for v in self.neighbors(Side.UPPER, u)]
            for u in keep[Side.UPPER]
        ]

        def kept_labels(side: Side) -> list[Hashable] | None:
            labels = self._labels[side]
            if labels is None:
                return None
            return [labels[v] for v in keep[side]]

        return BipartiteGraph(
            adj_upper,
            num_lower=len(keep[Side.LOWER]),
            upper_labels=kept_labels(Side.UPPER),
            lower_labels=kept_labels(Side.LOWER),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return self._adj == other._adj and self._labels == other._labels

    def __hash__(self) -> int:  # immutable; hash by adjacency
        return hash(self._adj[Side.UPPER])

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(|U|={self.num_upper}, |L|={self.num_lower}, "
            f"|E|={self.num_edges})"
        )
