"""Descriptive statistics of bipartite graphs.

Used by the dataset zoo's reporting, the CLI ``stats`` command and the
documentation to demonstrate that the synthetic analogues preserve the
structural properties that drive search cost (degree skew, wedge
counts, hub proportions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.bipartite import BipartiteGraph, Side


@dataclass(frozen=True)
class LayerStats:
    """Degree statistics of one layer."""

    num_vertices: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    hub_fraction: float
    """max degree divided by the size of the opposite layer."""


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a bipartite graph."""

    num_upper: int
    num_lower: int
    num_edges: int
    upper: LayerStats
    lower: LayerStats
    num_wedges_upper: int
    """Paths u–v–u' (two uppers sharing a lower) — drives the two-hop
    reduction cost and biclique density."""
    num_wedges_lower: int


def _layer_stats(graph: BipartiteGraph, side: Side) -> LayerStats:
    degrees = sorted(graph.degrees(side))
    n = len(degrees)
    if n == 0:
        return LayerStats(0, 0, 0, 0.0, 0.0, 0.0)
    if n % 2:
        median = float(degrees[n // 2])
    else:
        median = (degrees[n // 2 - 1] + degrees[n // 2]) / 2
    opposite = graph.num_vertices_on(side.other)
    return LayerStats(
        num_vertices=n,
        min_degree=degrees[0],
        max_degree=degrees[-1],
        mean_degree=sum(degrees) / n,
        median_degree=median,
        hub_fraction=degrees[-1] / opposite if opposite else 0.0,
    )


def wedge_count(graph: BipartiteGraph, through: Side) -> int:
    """Ordered wedges through vertices of the given layer:
    ``Σ_v deg(v)·(deg(v)−1)`` over ``v`` in ``through``."""
    return sum(d * (d - 1) for d in graph.degrees(through))


def graph_stats(graph: BipartiteGraph) -> GraphStats:
    """Compute a full :class:`GraphStats` summary."""
    return GraphStats(
        num_upper=graph.num_upper,
        num_lower=graph.num_lower,
        num_edges=graph.num_edges,
        upper=_layer_stats(graph, Side.UPPER),
        lower=_layer_stats(graph, Side.LOWER),
        num_wedges_upper=wedge_count(graph, Side.LOWER),
        num_wedges_lower=wedge_count(graph, Side.UPPER),
    )
