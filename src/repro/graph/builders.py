"""Constructors for :class:`~repro.graph.bipartite.BipartiteGraph`.

All builders normalize duplicate edges and validate bipartiteness where
applicable.  ``from_edges`` is the workhorse used by the loaders and the
generators.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.graph.bipartite import BipartiteGraph, Side


def from_edges(
    edges: Iterable[tuple[Hashable, Hashable]],
    upper_labels: Sequence[Hashable] | None = None,
    lower_labels: Sequence[Hashable] | None = None,
) -> BipartiteGraph:
    """Build a graph from ``(upper, lower)`` pairs.

    When ``upper_labels``/``lower_labels`` are given they fix the vertex
    order (and may include isolated vertices); otherwise labels are
    assigned ids in first-seen order.  Endpoints may be arbitrary
    hashable labels.
    """
    upper_ids: dict[Hashable, int] = {}
    lower_ids: dict[Hashable, int] = {}
    if upper_labels is not None:
        for label in upper_labels:
            if label in upper_ids:
                raise ValueError(f"duplicate upper label {label!r}")
            upper_ids[label] = len(upper_ids)
    if lower_labels is not None:
        for label in lower_labels:
            if label in lower_ids:
                raise ValueError(f"duplicate lower label {label!r}")
            lower_ids[label] = len(lower_ids)
    fixed_upper = upper_labels is not None
    fixed_lower = lower_labels is not None

    adj_upper: list[list[int]] = [[] for __ in range(len(upper_ids))]
    for u_label, v_label in edges:
        if u_label not in upper_ids:
            if fixed_upper:
                raise KeyError(f"unknown upper label {u_label!r}")
            upper_ids[u_label] = len(upper_ids)
            adj_upper.append([])
        if v_label not in lower_ids:
            if fixed_lower:
                raise KeyError(f"unknown lower label {v_label!r}")
            lower_ids[v_label] = len(lower_ids)
        adj_upper[upper_ids[u_label]].append(lower_ids[v_label])

    return BipartiteGraph(
        adj_upper,
        num_lower=len(lower_ids),
        upper_labels=list(upper_ids),
        lower_labels=list(lower_ids),
    )


def from_biadjacency(matrix) -> BipartiteGraph:
    """Build a graph from a 0/1 biadjacency matrix.

    ``matrix[u][v]`` truthy means edge between upper ``u`` and lower
    ``v``.  Accepts nested sequences or a numpy array.
    """
    adj_upper = [
        [v for v, cell in enumerate(row) if cell] for row in matrix
    ]
    num_lower = max((len(row) for row in matrix), default=0)
    return BipartiteGraph(adj_upper, num_lower=num_lower)


def from_networkx(nx_graph, upper_nodes: Iterable[Hashable] | None = None) -> BipartiteGraph:
    """Convert a networkx bipartite graph.

    ``upper_nodes`` names the upper layer; when omitted, nodes carrying
    ``bipartite=0`` form the upper layer (the networkx convention).
    """
    if upper_nodes is None:
        upper_nodes = [
            node
            for node, data in nx_graph.nodes(data=True)
            if data.get("bipartite") == 0
        ]
        if not upper_nodes and nx_graph.number_of_nodes():
            raise ValueError(
                "no nodes with bipartite=0 attribute; pass upper_nodes explicitly"
            )
    upper_set = set(upper_nodes)
    lower = [node for node in nx_graph.nodes if node not in upper_set]
    edges = []
    for a, b in nx_graph.edges:
        if a in upper_set and b in upper_set:
            raise ValueError(f"edge ({a!r}, {b!r}) is within the upper layer")
        if a not in upper_set and b not in upper_set:
            raise ValueError(f"edge ({a!r}, {b!r}) is within the lower layer")
        edges.append((a, b) if a in upper_set else (b, a))
    return from_edges(edges, upper_labels=list(upper_set), lower_labels=lower)


def to_biadjacency(graph: BipartiteGraph):
    """The 0/1 biadjacency matrix as a numpy array (upper × lower)."""
    import numpy

    matrix = numpy.zeros((graph.num_upper, graph.num_lower), dtype=numpy.int8)
    for u, v in graph.edges():
        matrix[u, v] = 1
    return matrix


def to_networkx(graph: BipartiteGraph):
    """Convert to a networkx Graph with ``bipartite`` node attributes.

    Upper vertices become ``("U", label)`` nodes with ``bipartite=0`` and
    lower vertices ``("L", label)`` nodes with ``bipartite=1`` so that
    labels shared between the layers do not collide.
    """
    import networkx as nx

    nx_graph = nx.Graph()
    for u in range(graph.num_upper):
        nx_graph.add_node(("U", graph.label(Side.UPPER, u)), bipartite=0)
    for v in range(graph.num_lower):
        nx_graph.add_node(("L", graph.label(Side.LOWER, v)), bipartite=1)
    for u, v in graph.edges():
        nx_graph.add_edge(
            ("U", graph.label(Side.UPPER, u)), ("L", graph.label(Side.LOWER, v))
        )
    return nx_graph
