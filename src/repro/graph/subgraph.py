"""Induced subgraphs and the two-hop subgraph of Definition 4.

The search algorithms operate on a small mutable working structure
(:class:`LocalGraph`) extracted around a query vertex, oriented so that
the query vertex always sits in the *upper* layer.  Keeping the query on
a fixed side lets the branch-and-bound iterate over ``L(H_q) = N(q)``
(every lower vertex is a neighbor of ``q`` — the fact behind Lemma 1)
regardless of which side of ``G`` the query came from.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.graph.bipartite import BipartiteGraph, Side

_AdjPair = tuple[list[set[int]], list[set[int]]]


class LocalGraph:
    """A small bipartite working graph with local contiguous ids.

    ``upper_side`` records which side of the parent graph the local
    *upper* layer corresponds to; ``upper_globals``/``lower_globals``
    map local ids back to parent ids on ``upper_side`` /
    ``upper_side.other`` respectively.  ``q_local`` is the local upper
    id of the anchor query vertex when the graph was extracted around
    one.

    The adjacency sets may be *deferred*: a packed extraction (see
    :func:`repro.kernel.packed.two_hop_packed`) passes ``adj_builder``
    instead of eager sets, and the sets are materialized from the
    bitmask view on first access — the bitset compute kernel never
    touches them, so a pure-bitset query skips building them entirely.
    """

    def __init__(
        self,
        adj_upper: list[set[int]] | None = None,
        adj_lower: list[set[int]] | None = None,
        upper_globals: list[int] | None = None,
        lower_globals: list[int] | None = None,
        upper_side: Side = Side.UPPER,
        q_local: int | None = None,
        adj_builder: Callable[[], _AdjPair] | None = None,
    ) -> None:
        if adj_upper is None and adj_builder is None:
            raise ValueError("need eager adjacency or an adj_builder")
        self._adj_upper = adj_upper
        self._adj_lower = adj_lower
        self._adj_builder = adj_builder
        self.upper_globals = upper_globals if upper_globals is not None else []
        self.lower_globals = lower_globals if lower_globals is not None else []
        self.upper_side = upper_side
        self.q_local = q_local
        self._upper_index: dict[int, int] | None = None
        self._lower_index: dict[int, int] | None = None

    def upper_index(self) -> dict[int, int]:
        """Memoized ``{global id -> local id}`` map for the upper layer.

        The construction pipeline translates seeds and answers for every
        tree node over the same extraction; memoizing the maps keeps the
        translation cost amortized across a batch or a build.
        """
        if self._upper_index is None:
            self._upper_index = {g: i for i, g in enumerate(self.upper_globals)}
        return self._upper_index

    def lower_index(self) -> dict[int, int]:
        """Memoized ``{global id -> local id}`` map for the lower layer."""
        if self._lower_index is None:
            self._lower_index = {g: i for i, g in enumerate(self.lower_globals)}
        return self._lower_index

    @property
    def adj_upper(self) -> list[set[int]]:
        if self._adj_upper is None:
            self._adj_upper, self._adj_lower = self._adj_builder()
        return self._adj_upper

    @property
    def adj_lower(self) -> list[set[int]]:
        if self._adj_lower is None:
            self._adj_upper, self._adj_lower = self._adj_builder()
        return self._adj_lower

    @property
    def num_upper(self) -> int:
        # The globals list is parallel to the adjacency, and is always
        # eager — safe whether or not the sets were materialized.
        return len(self.upper_globals)

    @property
    def num_lower(self) -> int:
        return len(self.lower_globals)

    @property
    def num_edges(self) -> int:
        packed = getattr(self, "_packed", None)
        if self._adj_upper is None and packed is not None:
            return sum(packed.deg_upper)
        return sum(len(ns) for ns in self.adj_upper)

    def degree_upper(self, u: int) -> int:
        return len(self.adj_upper[u])

    def degree_lower(self, v: int) -> int:
        return len(self.adj_lower[v])

    def max_upper_degree(self) -> int:
        """Maximum degree among upper vertices (0 if empty)."""
        packed = getattr(self, "_packed", None)
        if self._adj_upper is None and packed is not None:
            # Packed bit order is degree-descending: bit 0 is the max.
            return packed.deg_upper[0] if packed.deg_upper else 0
        return max((len(ns) for ns in self.adj_upper), default=0)

    def restrict(self, upper_keep: Iterable[int], lower_keep: Iterable[int]) -> "LocalGraph":
        """A new LocalGraph induced by the given local vertex subsets.

        Ids are re-compacted; global mappings and the anchor are carried
        over (``q_local`` becomes None if the anchor is dropped).
        """
        upper_keep = sorted(set(upper_keep))
        lower_keep = sorted(set(lower_keep))
        lower_remap = {v: i for i, v in enumerate(lower_keep)}
        upper_remap = {u: i for i, u in enumerate(upper_keep)}
        adj_upper = [
            {lower_remap[v] for v in self.adj_upper[u] if v in lower_remap}
            for u in upper_keep
        ]
        adj_lower = [
            {upper_remap[u] for u in self.adj_lower[v] if u in upper_remap}
            for v in lower_keep
        ]
        q_local = None
        if self.q_local is not None and self.q_local in upper_remap:
            q_local = upper_remap[self.q_local]
        return LocalGraph(
            adj_upper=adj_upper,
            adj_lower=adj_lower,
            upper_globals=[self.upper_globals[u] for u in upper_keep],
            lower_globals=[self.lower_globals[v] for v in lower_keep],
            upper_side=self.upper_side,
            q_local=q_local,
        )

    def to_global(
        self, upper_locals: Iterable[int], lower_locals: Iterable[int]
    ) -> tuple[Side, frozenset[int], frozenset[int]]:
        """Map local vertex sets back to parent-graph ids.

        Returns ``(upper_side, upper_globals, lower_globals)`` where the
        two sets contain parent ids on ``upper_side`` and
        ``upper_side.other``.
        """
        return (
            self.upper_side,
            frozenset(self.upper_globals[u] for u in upper_locals),
            frozenset(self.lower_globals[v] for v in lower_locals),
        )

    def check_biclique(self, upper_locals: Iterable[int], lower_locals: Iterable[int]) -> bool:
        """Whether the given local vertex sets induce a complete subgraph."""
        lower_set = set(lower_locals)
        return all(lower_set <= self.adj_upper[u] for u in upper_locals)


def induced_subgraph(
    graph: BipartiteGraph,
    upper_ids: Sequence[int],
    lower_ids: Sequence[int],
) -> tuple[BipartiteGraph, dict[int, int], dict[int, int]]:
    """The subgraph of ``graph`` induced by the given vertex id sets.

    Returns the new graph plus {old id -> new id} maps for each layer.
    Labels are inherited from the parent graph.
    """
    upper_ids = sorted(set(upper_ids))
    lower_ids = sorted(set(lower_ids))
    upper_map = {u: i for i, u in enumerate(upper_ids)}
    lower_map = {v: i for i, v in enumerate(lower_ids)}
    adj_upper = [
        [lower_map[v] for v in graph.neighbors(Side.UPPER, u) if v in lower_map]
        for u in upper_ids
    ]
    sub = BipartiteGraph(
        adj_upper,
        num_lower=len(lower_ids),
        upper_labels=[graph.label(Side.UPPER, u) for u in upper_ids],
        lower_labels=[graph.label(Side.LOWER, v) for v in lower_ids],
    )
    return sub, upper_map, lower_map


def two_hop_subgraph(graph: BipartiteGraph, side: Side, q: int) -> LocalGraph:
    """The two-hop subgraph ``H_q`` of Definition 4, anchored at ``q``.

    The result is oriented so that ``q`` is a local *upper* vertex: the
    local lower layer is ``N(q)`` and the local upper layer is
    ``{q} ∪ ⋃_{v∈N(q)} N(v)``.  ``H_q`` contains every biclique of ``G``
    that includes ``q``, and its maximum biclique has the same size as
    the personalized maximum biclique of ``q`` (Lemma 1).
    """
    other = side.other
    lower_globals = list(graph.neighbors(side, q))
    upper_global_set = {q}
    for v in lower_globals:
        upper_global_set.update(graph.neighbors(other, v))
    upper_globals = sorted(upper_global_set)
    upper_remap = {u: i for i, u in enumerate(upper_globals)}

    # Every edge of H_q has its lower endpoint in N(q), so both
    # adjacency lists fall out of one sweep over the N(q) neighbor
    # lists — never scanning an upper vertex's full global neighborhood
    # (upper vertices are often hubs whose lists dwarf H_q itself).
    adj_upper: list[set[int]] = [set() for _ in upper_globals]
    adj_lower: list[set[int]] = []
    for vi, v in enumerate(lower_globals):
        row: set[int] = set()
        for u in graph.neighbors(other, v):
            ui = upper_remap[u]
            row.add(ui)
            adj_upper[ui].add(vi)
        adj_lower.append(row)
    return LocalGraph(
        adj_upper=adj_upper,
        adj_lower=adj_lower,
        upper_globals=upper_globals,
        lower_globals=lower_globals,
        upper_side=side,
        q_local=upper_remap[q],
    )
