"""Uniform edge sampling for the scalability experiment (Fig 9).

The paper evaluates index-construction scalability by "randomly sampling
20% to 100% edges of the original graphs"; :func:`sample_edges`
implements that workload generator.
"""

from __future__ import annotations

import random

from repro.graph.bipartite import BipartiteGraph

from repro.graph.builders import from_edges
from repro.graph.bipartite import Side


def sample_edges(
    graph: BipartiteGraph, fraction: float, seed: int = 0
) -> BipartiteGraph:
    """A subgraph with ``round(fraction * |E|)`` uniformly sampled edges.

    Vertices left with degree zero are removed (matching the paper's
    preprocessing); labels are preserved so query vertices can be
    matched across sample levels.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    edges = list(graph.edges())
    if fraction == 1.0:
        sampled = edges
    else:
        rng = random.Random(seed)
        count = max(1, round(fraction * len(edges)))
        sampled = rng.sample(edges, count)
    labeled = [
        (graph.label(Side.UPPER, u), graph.label(Side.LOWER, v))
        for u, v in sampled
    ]
    return from_edges(labeled)
