"""Reading and writing bipartite graphs.

Two formats are supported:

- **KONECT** ``out.*`` files — the format of the paper's 10 datasets
  (http://konect.cc/): optional ``%`` comment headers, then one edge per
  line ``<upper> <lower> [weight [timestamp]]`` with 1-based ids.
- **Plain edge lists** — ``<upper> <lower>`` per line, ``#`` comments,
  arbitrary string labels.
"""

from __future__ import annotations

import os
from typing import TextIO

from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.builders import from_edges


def _open_or_pass(path_or_file, mode: str):
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, mode, encoding="utf-8"), True


def read_konect(path_or_file: str | os.PathLike | TextIO) -> BipartiteGraph:
    """Read a KONECT-format bipartite edge file.

    Ids are 1-based in the file and converted to contiguous 0-based ids.
    Weights/timestamps (third/fourth columns) are ignored; parallel
    edges collapse to one.  Vertices that appear only in the declared
    size header (if any) but have no edge are dropped, matching the
    paper's preprocessing ("vertices with degree equal to zero are
    removed").
    """
    handle, should_close = _open_or_pass(path_or_file, "r")
    try:
        edges = []
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"line {lineno}: expected at least two columns")
            u, v = int(parts[0]), int(parts[1])
            if u < 1 or v < 1:
                raise ValueError(f"line {lineno}: KONECT ids are 1-based")
            edges.append((u - 1, v - 1))
    finally:
        if should_close:
            handle.close()
    return from_edges(edges)


def write_konect(
    graph: BipartiteGraph,
    path_or_file: str | os.PathLike | TextIO,
    name: str = "bip",
) -> None:
    """Write a graph in KONECT ``out.*`` format (1-based ids)."""
    handle, should_close = _open_or_pass(path_or_file, "w")
    try:
        handle.write(f"% bip unweighted {name}\n")
        handle.write(f"% {graph.num_edges} {graph.num_upper} {graph.num_lower}\n")
        for u, v in graph.edges():
            handle.write(f"{u + 1} {v + 1}\n")
    finally:
        if should_close:
            handle.close()


def save_graph_json(
    graph: BipartiteGraph, path_or_file: str | os.PathLike | TextIO
) -> None:
    """Write a graph (including labels) as JSON."""
    import json

    payload = {
        "num_lower": graph.num_lower,
        "adj_upper": [
            list(graph.neighbors(Side.UPPER, u))
            for u in range(graph.num_upper)
        ],
        "upper_labels": (
            list(graph.labels(Side.UPPER))
            if graph.labels(Side.UPPER) is not None
            else None
        ),
        "lower_labels": (
            list(graph.labels(Side.LOWER))
            if graph.labels(Side.LOWER) is not None
            else None
        ),
    }
    handle, should_close = _open_or_pass(path_or_file, "w")
    try:
        json.dump(payload, handle)
    finally:
        if should_close:
            handle.close()


def load_graph_json(
    path_or_file: str | os.PathLike | TextIO,
) -> BipartiteGraph:
    """Read a graph previously written by :func:`save_graph_json`."""
    import json

    handle, should_close = _open_or_pass(path_or_file, "r")
    try:
        payload = json.load(handle)
    finally:
        if should_close:
            handle.close()
    return BipartiteGraph(
        payload["adj_upper"],
        num_lower=payload["num_lower"],
        upper_labels=payload["upper_labels"],
        lower_labels=payload["lower_labels"],
    )


def read_edge_list(path_or_file: str | os.PathLike | TextIO) -> BipartiteGraph:
    """Read a plain edge list with string labels (``#`` comments)."""
    handle, should_close = _open_or_pass(path_or_file, "r")
    try:
        edges = []
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"line {lineno}: expected exactly two columns")
            edges.append((parts[0], parts[1]))
    finally:
        if should_close:
            handle.close()
    return from_edges(edges)


def write_edge_list(
    graph: BipartiteGraph, path_or_file: str | os.PathLike | TextIO
) -> None:
    """Write a plain edge list using vertex labels."""
    handle, should_close = _open_or_pass(path_or_file, "w")
    try:
        for u, v in graph.edges():
            handle.write(
                f"{graph.label(Side.UPPER, u)} {graph.label(Side.LOWER, v)}\n"
            )
    finally:
        if should_close:
            handle.close()
