"""Bipartite graph substrate.

This package provides the bipartite-graph data structure and utilities
that every algorithm in :mod:`repro` builds on:

- :class:`~repro.graph.bipartite.BipartiteGraph` — immutable bipartite
  graph with per-layer integer vertex ids and optional labels.
- :class:`~repro.graph.bipartite.Side` / :class:`~repro.graph.bipartite.Vertex`
  — layer designators and (side, id) vertex handles.
- :mod:`~repro.graph.builders` — constructors from edge lists,
  biadjacency matrices, and networkx graphs.
- :mod:`~repro.graph.io` — KONECT ``out.*`` and plain edge-list formats.
- :mod:`~repro.graph.subgraph` — induced subgraphs and the two-hop
  subgraph ``H_q`` of Definition 4.
- :mod:`~repro.graph.generators` — seeded random/synthetic generators.
- :mod:`~repro.graph.sampling` — uniform edge sampling (Fig 9 workload).
"""

from repro.graph.bipartite import BipartiteGraph, Side, Vertex
from repro.graph.builders import (
    from_biadjacency,
    from_edges,
    from_networkx,
    to_biadjacency,
    to_networkx,
)
from repro.graph.generators import (
    planted_biclique_graph,
    power_law_bipartite,
    random_bipartite,
)
from repro.graph.io import (
    load_graph_json,
    read_edge_list,
    read_konect,
    save_graph_json,
    write_edge_list,
    write_konect,
)
from repro.graph.stats import GraphStats, graph_stats
from repro.graph.sampling import sample_edges
from repro.graph.subgraph import LocalGraph, induced_subgraph, two_hop_subgraph

__all__ = [
    "BipartiteGraph",
    "Side",
    "Vertex",
    "from_edges",
    "from_biadjacency",
    "from_networkx",
    "to_biadjacency",
    "to_networkx",
    "read_konect",
    "write_konect",
    "read_edge_list",
    "write_edge_list",
    "save_graph_json",
    "load_graph_json",
    "graph_stats",
    "GraphStats",
    "random_bipartite",
    "power_law_bipartite",
    "planted_biclique_graph",
    "sample_edges",
    "induced_subgraph",
    "two_hop_subgraph",
    "LocalGraph",
]
