"""Seeded synthetic bipartite graph generators.

Used by the test suite and by :mod:`repro.datasets.zoo` to produce
scale-reduced analogues of the paper's KONECT datasets.  All generators
take an integer ``seed`` and are deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.graph.bipartite import BipartiteGraph, Side


def random_bipartite(
    num_upper: int, num_lower: int, edge_prob: float, seed: int = 0
) -> BipartiteGraph:
    """Erdős–Rényi-style bipartite graph: each pair is an edge w.p. ``edge_prob``."""
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError(f"edge_prob must be in [0, 1], got {edge_prob}")
    rng = random.Random(seed)
    adj_upper = [
        [v for v in range(num_lower) if rng.random() < edge_prob]
        for __ in range(num_upper)
    ]
    return BipartiteGraph(adj_upper, num_lower=num_lower)


def _zipf_weights(n: int, exponent: float) -> list[float]:
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


def power_law_bipartite(
    num_upper: int,
    num_lower: int,
    num_edges: int,
    exponent: float = 1.5,
    seed: int = 0,
) -> BipartiteGraph:
    """Heavy-tailed bipartite graph with roughly ``num_edges`` edges.

    Both endpoints of each edge are drawn from a Zipf distribution with
    the given ``exponent`` (smaller exponent = heavier tail), matching
    the skew of real user-item datasets.  Duplicate draws collapse, so
    the realized edge count can fall slightly below ``num_edges``;
    isolated vertices are removed as in the paper's preprocessing.
    """
    if num_upper <= 0 or num_lower <= 0:
        raise ValueError("layers must be non-empty")
    rng = random.Random(seed)
    upper_weights = _zipf_weights(num_upper, exponent)
    lower_weights = _zipf_weights(num_lower, exponent)
    upper_perm = list(range(num_upper))
    lower_perm = list(range(num_lower))
    rng.shuffle(upper_perm)
    rng.shuffle(lower_perm)

    edges: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = num_edges * 20
    while len(edges) < num_edges and attempts < max_attempts:
        u = upper_perm[rng.choices(range(num_upper), weights=upper_weights)[0]]
        v = lower_perm[rng.choices(range(num_lower), weights=lower_weights)[0]]
        edges.add((u, v))
        attempts += 1

    adj_upper: list[list[int]] = [[] for __ in range(num_upper)]
    for u, v in edges:
        adj_upper[u].append(v)
    graph = BipartiteGraph(adj_upper, num_lower=num_lower)
    return graph.without_isolated_vertices()


def planted_biclique_graph(
    num_upper: int,
    num_lower: int,
    num_edges: int,
    planted: Sequence[tuple[int, int]] = ((6, 5), (5, 4), (4, 6)),
    exponent: float = 1.3,
    seed: int = 0,
) -> BipartiteGraph:
    """Power-law background noise plus planted complete bicliques.

    ``planted`` lists ``(a, b)`` block shapes; each block is placed on a
    random set of ``a`` upper and ``b`` lower vertices (blocks may
    overlap, creating the nested/overlapping biclique structure that
    makes personalized maxima non-trivial).  Planting happens before
    isolated-vertex removal so every planted vertex survives.
    """
    rng = random.Random(seed)
    base_edges: set[tuple[int, int]] = set()

    upper_weights = _zipf_weights(num_upper, exponent)
    lower_weights = _zipf_weights(num_lower, exponent)
    attempts = 0
    while len(base_edges) < num_edges and attempts < num_edges * 20:
        u = rng.choices(range(num_upper), weights=upper_weights)[0]
        v = rng.choices(range(num_lower), weights=lower_weights)[0]
        base_edges.add((u, v))
        attempts += 1

    for a, b in planted:
        if a > num_upper or b > num_lower:
            raise ValueError(f"planted block ({a}, {b}) exceeds layer sizes")
        block_upper = rng.sample(range(num_upper), a)
        block_lower = rng.sample(range(num_lower), b)
        for u in block_upper:
            for v in block_lower:
                base_edges.add((u, v))

    adj_upper: list[list[int]] = [[] for __ in range(num_upper)]
    for u, v in base_edges:
        adj_upper[u].append(v)
    graph = BipartiteGraph(adj_upper, num_lower=num_lower)
    return graph.without_isolated_vertices()


def _capped_zipf_degrees(
    n: int, m_target: int, exponent: float, cap: int, rng: random.Random
) -> list[int]:
    """A degree sequence summing to ≈ ``m_target``: Zipf shape, capped.

    Weights ``r^-exponent`` are scaled to the target edge count, rounded,
    clamped to ``[1, cap]``, then nudged (on vertices with headroom) so
    the sum matches ``m_target`` as closely as the cap allows.
    """
    if cap < 1:
        raise ValueError(f"cap must be >= 1, got {cap}")
    weights = [r**-exponent for r in range(1, n + 1)]
    scale = m_target / sum(weights)
    degrees = [min(cap, max(1, round(w * scale))) for w in weights]
    total = sum(degrees)
    order = list(range(n))
    rng.shuffle(order)
    progress = True
    while total < m_target and progress:
        progress = False
        for v in order:
            if total >= m_target:
                break
            if degrees[v] < cap:
                degrees[v] += 1
                total += 1
                progress = True
    progress = True
    while total > m_target and progress:
        progress = False
        for v in order:
            if total <= m_target:
                break
            if degrees[v] > 1:
                degrees[v] -= 1
                total -= 1
                progress = True
    rng.shuffle(degrees)
    return degrees


def capped_power_law_bipartite(
    num_upper: int,
    num_lower: int,
    num_edges: int,
    exponent_upper: float = 2.0,
    exponent_lower: float = 1.6,
    cap_upper: int | None = None,
    cap_lower: int | None = None,
    seed: int = 0,
) -> BipartiteGraph:
    """Bipartite configuration model with capped Zipf degree sequences.

    Unlike :func:`power_law_bipartite` (pure weighted edge sampling),
    degrees are drawn explicitly and paired through a stub-matching
    pass, so hub sizes are controlled directly — important at reduced
    scale, where uncapped Zipf sampling concentrates far more mass on
    hubs than the real datasets being mimicked.  Duplicate stub pairs
    collapse, so the realized edge count falls slightly short of
    ``num_edges``; isolated vertices are removed.
    """
    if num_upper <= 0 or num_lower <= 0:
        raise ValueError("layers must be non-empty")
    rng = random.Random(seed)
    cap_upper = cap_upper if cap_upper is not None else num_lower
    cap_lower = cap_lower if cap_lower is not None else num_upper
    deg_upper = _capped_zipf_degrees(
        num_upper, num_edges, exponent_upper, min(cap_upper, num_lower), rng
    )
    deg_lower = _capped_zipf_degrees(
        num_lower, num_edges, exponent_lower, min(cap_lower, num_upper), rng
    )
    stubs_upper = [u for u, d in enumerate(deg_upper) for __ in range(d)]
    stubs_lower = [v for v, d in enumerate(deg_lower) for __ in range(d)]
    rng.shuffle(stubs_upper)
    rng.shuffle(stubs_lower)
    edges = set(zip(stubs_upper, stubs_lower))
    adj_upper: list[list[int]] = [[] for __ in range(num_upper)]
    for u, v in edges:
        adj_upper[u].append(v)
    graph = BipartiteGraph(adj_upper, num_lower=num_lower)
    return graph.without_isolated_vertices()


def with_planted_blocks(
    graph: BipartiteGraph,
    blocks: Sequence[tuple[int, int]],
    seed: int = 0,
) -> BipartiteGraph:
    """A copy of ``graph`` with complete ``(a × b)`` bicliques added.

    Each block lands on a random vertex choice, so blocks may overlap
    each other and the existing edges.  No vertices are added or
    removed; labels are preserved.
    """
    rng = random.Random(seed)
    edges = set(graph.edges())
    for a, b in blocks:
        if a > graph.num_upper or b > graph.num_lower:
            raise ValueError(f"planted block ({a}, {b}) exceeds layer sizes")
        block_upper = rng.sample(range(graph.num_upper), a)
        block_lower = rng.sample(range(graph.num_lower), b)
        edges.update((u, v) for u in block_upper for v in block_lower)
    adj_upper: list[list[int]] = [[] for __ in range(graph.num_upper)]
    for u, v in edges:
        adj_upper[u].append(v)
    labels_u = graph.labels(Side.UPPER)
    labels_l = graph.labels(Side.LOWER)
    return BipartiteGraph(
        adj_upper,
        num_lower=graph.num_lower,
        upper_labels=labels_u,
        lower_labels=labels_l,
    )


def complete_bipartite(num_upper: int, num_lower: int) -> BipartiteGraph:
    """The complete biclique ``K_{num_upper, num_lower}``."""
    adj_upper = [list(range(num_lower)) for __ in range(num_upper)]
    return BipartiteGraph(adj_upper, num_lower=num_lower)


def star(center_degree: int) -> BipartiteGraph:
    """A star: one upper vertex connected to ``center_degree`` lower vertices."""
    return BipartiteGraph([list(range(center_degree))], num_lower=center_degree)


def paper_example_graph() -> BipartiteGraph:
    """A reconstruction of the running example (Figure 2) of the paper.

    The figure itself is not reproduced in the text, so the edges below
    are reconstructed to satisfy every textual claim the paper makes
    about it.  Upper vertices ``u1..u7`` map to ids 0..6 and lower
    vertices ``v1..v6`` to ids 0..5.  Facts used throughout the tests:

    - ``C^{u1}_{1,1}`` is the (4×3)-biclique {u1..u4} × {v1..v3}
      (Example 1, Figure 2(b));
    - ``C^{u1}_{5,1}`` is the (5×2)-biclique {u1..u5} × {v1, v2}
      (Example 1, Figure 2(c));
    - ``C^{u1}_{1,4}`` is a (2×4)-biclique (Example 3), here
      {u1, u4} × {v1..v4};
    - ``C^{u7}_{1,1}`` is the (3×3)-biclique {u5, u6, u7} × {v4, v5, v6}
      (Example 1, Figure 2(d)).
    """
    edges = [
        ("u1", "v1"), ("u1", "v2"), ("u1", "v3"), ("u1", "v4"),
        ("u2", "v1"), ("u2", "v2"), ("u2", "v3"),
        ("u3", "v1"), ("u3", "v2"), ("u3", "v3"),
        ("u4", "v1"), ("u4", "v2"), ("u4", "v3"), ("u4", "v4"),
        ("u5", "v1"), ("u5", "v2"), ("u5", "v4"), ("u5", "v5"), ("u5", "v6"),
        ("u6", "v4"), ("u6", "v5"), ("u6", "v6"),
        ("u7", "v4"), ("u7", "v5"), ("u7", "v6"),
    ]
    from repro.graph.builders import from_edges

    return from_edges(
        edges,
        upper_labels=[f"u{i}" for i in range(1, 8)],
        lower_labels=[f"v{i}" for i in range(1, 7)],
    )
