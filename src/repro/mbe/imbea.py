"""iMBEA-style maximal biclique enumeration.

Enumerates every maximal biclique (both sides non-empty) of a bipartite
graph by growing the lower vertex set and maintaining the upper set as
the exact common neighborhood, with the classic excluded-set rule to
avoid duplicates and non-maximal outputs.  Exponential in the worst
case — the number of maximal bicliques can be exponential — so callers
should bound input sizes.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.result import Biclique
from repro.graph.bipartite import BipartiteGraph, Side


def enumerate_maximal_bicliques(
    graph: BipartiteGraph,
    limit: int | None = None,
    min_upper: int = 1,
    min_lower: int = 1,
) -> Iterator[Biclique]:
    """Yield every maximal biclique of ``graph`` exactly once.

    ``min_upper``/``min_lower`` restrict output to maximal bicliques of
    at least that shape and — in the manner of MineLMBC (Liu et al.,
    DaWaK 2006, ref [29] of the paper) — prune the search: a branch
    whose upper candidate set falls below ``min_upper`` or whose
    reachable lower set falls below ``min_lower`` cannot emit a
    qualifying biclique and is cut.  ``limit`` aborts the enumeration
    with a RuntimeError after that many results — a guard for
    accidentally huge inputs.
    """
    if min_upper < 1 or min_lower < 1:
        raise ValueError(
            f"size constraints must be >= 1, got ({min_upper}, {min_lower})"
        )
    seen: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
    results: list[Biclique] = []

    def emit(upper: frozenset[int], lower: frozenset[int]) -> None:
        biclique = Biclique(upper=upper, lower=lower)
        signature = biclique.signature()
        if signature in seen:
            return
        seen.add(signature)
        if limit is not None and len(seen) > limit:
            raise RuntimeError(
                f"maximal biclique enumeration exceeded limit {limit}"
            )
        results.append(biclique)

    def recurse(
        p: frozenset[int], w: frozenset[int], r: list[int], x: list[int]
    ) -> None:
        x_current = list(x)
        for idx, v_star in enumerate(r):
            p_new = p & graph.neighbor_set(Side.LOWER, v_star)
            if len(p_new) < min_upper:
                x_current.append(v_star)
                continue
            w_new = set(w)
            w_new.add(v_star)
            r_new: list[int] = []
            for v in r[idx + 1 :]:
                overlap = p_new & graph.neighbor_set(Side.LOWER, v)
                if overlap == p_new:
                    w_new.add(v)
                elif len(overlap) >= min_upper:
                    r_new.append(v)
            if len(w_new) + len(r_new) < min_lower:
                x_current.append(v_star)
                continue
            dominated = any(
                p_new <= graph.neighbor_set(Side.LOWER, v) for v in x_current
            )
            if not dominated:
                if len(w_new) >= min_lower:
                    emit(p_new, frozenset(w_new))
                x_new = [
                    v
                    for v in x_current
                    if len(p_new & graph.neighbor_set(Side.LOWER, v))
                    >= min_upper
                ]
                recurse(p_new, frozenset(w_new), r_new, x_new)
            x_current.append(v_star)

    all_upper = frozenset(range(graph.num_upper))
    candidates = sorted(
        range(graph.num_lower),
        key=lambda v: graph.degree(Side.LOWER, v),
        reverse=True,
    )
    recurse(all_upper, frozenset(), candidates, [])
    yield from results


def maximal_biclique_count(graph: BipartiteGraph) -> int:
    """The number of maximal bicliques of ``graph``."""
    return sum(1 for __ in enumerate_maximal_bicliques(graph))


def personalized_max_from_enumeration(
    graph: BipartiteGraph, side: Side, q: int, tau_u: int = 1, tau_l: int = 1
) -> Biclique | None:
    """The personalized maximum biclique derived from full enumeration.

    A second independent oracle: every personalized maximum biclique is
    contained in a maximal one with the same subset-side shape, so the
    maximum over maximal bicliques — shrunk to ``q``-containing form
    where needed — is exact.  A maximal biclique not containing ``q``
    cannot contribute: if ``q`` were adjacent to all of its opposite
    side it would be a member already (maximality).
    """
    best: Biclique | None = None
    for biclique in enumerate_maximal_bicliques(
        graph, min_upper=tau_u, min_lower=tau_l
    ):
        if not biclique.contains(side, q):
            continue
        if best is None or biclique.num_edges > best.num_edges:
            best = biclique
    return best
