"""Maximal biclique enumeration substrate.

An iMBEA-style enumerator (Zhang et al., BMC Bioinformatics 2014 — the
algorithm the paper's Branch&Bound is adapted from).  Used as an
independent ground-truth oracle in the test suite and to support the
related-work comparisons.
"""

from repro.mbe.imbea import (
    enumerate_maximal_bicliques,
    maximal_biclique_count,
    personalized_max_from_enumeration,
)

__all__ = [
    "enumerate_maximal_bicliques",
    "maximal_biclique_count",
    "personalized_max_from_enumeration",
]
