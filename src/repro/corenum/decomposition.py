"""Full bicore ((α,β)-core) decomposition.

Computes, for every vertex, the complete *staircase region*
``R_x = {(α, β) : x ∈ (α,β)-core}`` in ``O(δ·m)`` peeling sweeps, where
δ is the maximal value with a non-empty (δ,δ)-core (bounded by √m).
This is the decomposition algorithm of Liu et al. (WWW 2019) that the
paper cites for pre-computing the α-/β-offsets of Definition 7:

- ``s_a(u, α)`` — the maximal β such that ``u`` is in an (α,β)-core;
- ``s_b(v, β)`` — the maximal α such that ``v`` is in an (α,β)-core.

Both directions are provided for vertices of *either* layer because a
query vertex on the lower layer flips the local orientation of its
two-hop subgraph.

The δ-bounded scheme: any (α,β) with a non-empty core has
``min(α,β) ≤ δ``, so sweeping α over ``1..δ`` (max-β per vertex) and β
over ``1..δ`` (max-α per vertex) fully describes every region; values
beyond δ in one coordinate are recovered by inverting the other sweep.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from itertools import accumulate

from repro.corenum.peeling import max_delta
from repro.graph.bipartite import BipartiteGraph, Side


def _peel_levels(
    graph: BipartiteGraph, fixed_side: Side, fixed_value: int
) -> dict[Side, list[int]]:
    """Max free-side threshold per vertex under a fixed-side constraint.

    With ``fixed_side = UPPER`` and ``fixed_value = α`` this returns,
    for every vertex ``x``, the maximal β such that ``x`` belongs to the
    (α,β)-core (0 when ``x`` is in no such core).  Implemented as
    min-degree peeling of the free side with cascading deletions on the
    fixed side — the classic core-decomposition argument extended with
    one static constraint.
    """
    free_side = fixed_side.other
    deg = {side: graph.degrees(side) for side in Side}
    alive = {side: [True] * graph.num_vertices_on(side) for side in Side}
    level = {side: [0] * graph.num_vertices_on(side) for side in Side}

    # Enforce the fixed constraint once (removing fixed-side vertices
    # never lowers another fixed-side degree, so no cascade yet).
    init_removed = deque(
        u for u, d in enumerate(deg[fixed_side]) if d < fixed_value
    )
    for u in init_removed:
        alive[fixed_side][u] = False
    for u in init_removed:
        for w in graph.neighbors(fixed_side, u):
            deg[free_side][w] -= 1

    heap = [
        (deg[free_side][v], v)
        for v in range(graph.num_vertices_on(free_side))
    ]
    heapq.heapify(heap)
    current = 0
    while heap:
        d, v = heapq.heappop(heap)
        if not alive[free_side][v] or d != deg[free_side][v]:
            continue  # stale entry
        current = max(current, d)
        level[free_side][v] = current
        alive[free_side][v] = False
        cascade: list[int] = []
        for u in graph.neighbors(free_side, v):
            if not alive[fixed_side][u]:
                continue
            deg[fixed_side][u] -= 1
            if deg[fixed_side][u] < fixed_value:
                cascade.append(u)
        while cascade:
            u = cascade.pop()
            if not alive[fixed_side][u]:
                continue
            alive[fixed_side][u] = False
            level[fixed_side][u] = current
            for w in graph.neighbors(fixed_side, u):
                if not alive[free_side][w]:
                    continue
                deg[free_side][w] -= 1
                heapq.heappush(heap, (deg[free_side][w], w))
    return level


def _invert_staircase(
    direct_prefix: list[int], own_max: int, delta: int
) -> list[int]:
    """Extend a staircase beyond δ by inverting the opposite sweep.

    ``direct_prefix[i]`` (0-indexed, i.e. value at coordinate ``i+1``)
    is the max opposite coordinate for own coordinate ``i+1 ≤ δ`` taken
    from the *other* sweep; the result is the max opposite coordinate
    for own coordinates ``δ+1 .. own_max``, computed as
    ``max{c ≤ δ : direct_prefix[c] ≥ coordinate}`` with a suffix-max
    scan.
    """
    if own_max <= delta:
        return []
    # marker[a] = max c with direct_prefix[c] == a capped at own_max
    # (c increases through the loop, so plain assignment keeps the max).
    marker = [0] * (own_max + 1)
    for c_idx, cap in enumerate(direct_prefix):
        capped = min(cap, own_max)
        if capped >= 1:
            marker[capped] = c_idx + 1
    # suffix max: best[a] = max c with direct_prefix[c] >= a, via a
    # C-speed scan over marker[own_max] .. marker[1].
    suffix = list(accumulate(marker[:0:-1], max))
    # suffix[own_max - a] == best[a]; emit a = delta+1 .. own_max.
    return suffix[own_max - delta - 1 :: -1]


def _vertex_stairs(
    beta_prefix: list[int], alpha_prefix: list[int], delta: int
) -> tuple[list[int], list[int]]:
    """Assemble one vertex's (α-stairs, β-stairs) from its sweep columns.

    ``beta_prefix[i]`` is the vertex's level in the α=i+1 sweep (max β)
    and ``alpha_prefix[i]`` its level in the β=i+1 sweep (max α).  The
    direct prefixes cover coordinates up to δ; the tails are recovered
    by inverting the opposite sweep.  Shared by :func:`decompose` and
    the incremental maintenance in :mod:`repro.corenum.incremental`.
    """
    alpha_max = alpha_prefix[0] if alpha_prefix else 0
    beta_max = beta_prefix[0] if beta_prefix else 0
    full_alpha = beta_prefix[: min(delta, alpha_max)]
    full_alpha += _invert_staircase(alpha_prefix, alpha_max, delta)
    full_beta = alpha_prefix[: min(delta, beta_max)]
    full_beta += _invert_staircase(beta_prefix, beta_max, delta)
    return full_alpha, full_beta


@dataclass
class BicoreDecomposition:
    """Per-vertex (α,β)-core staircases of a bipartite graph.

    ``alpha_stairs[side][v]`` is a 0-indexed list whose entry ``i``
    holds the maximal β such that ``v`` is in the (i+1, β)-core; its
    length is the maximal α for which ``v`` is in any (α,1)-core.
    ``beta_stairs`` is symmetric (max α per β).
    """

    delta: int
    alpha_stairs: dict[Side, list[list[int]]]
    beta_stairs: dict[Side, list[list[int]]]

    def s_a(self, side: Side, v: int, alpha: int) -> int:
        """Definition 7's α-offset: max β such that ``v`` ∈ (α,β)-core."""
        if alpha < 1:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        stairs = self.alpha_stairs[side][v]
        if alpha > len(stairs):
            return 0
        return stairs[alpha - 1]

    def s_b(self, side: Side, v: int, beta: int) -> int:
        """Definition 7's β-offset: max α such that ``v`` ∈ (α,β)-core."""
        if beta < 1:
            raise ValueError(f"beta must be >= 1, got {beta}")
        stairs = self.beta_stairs[side][v]
        if beta > len(stairs):
            return 0
        return stairs[beta - 1]

    def alpha_max(self, side: Side, v: int) -> int:
        """The maximal α such that ``v`` is in an (α,1)-core."""
        return len(self.alpha_stairs[side][v])

    def beta_max(self, side: Side, v: int) -> int:
        """The maximal β such that ``v`` is in a (1,β)-core."""
        return len(self.beta_stairs[side][v])

    def in_core(self, side: Side, v: int, alpha: int, beta: int) -> bool:
        """Whether ``v`` belongs to the (α,β)-core."""
        return self.s_a(side, v, alpha) >= beta


def decompose(graph: BipartiteGraph) -> BicoreDecomposition:
    """Compute the full bicore decomposition of ``graph``."""
    delta = max_delta(graph)
    # alpha sweeps: for each α ≤ δ, max β per vertex.
    alpha_sweeps = [
        _peel_levels(graph, Side.UPPER, alpha) for alpha in range(1, delta + 1)
    ]
    # beta sweeps: for each β ≤ δ, max α per vertex.
    beta_sweeps = [
        _peel_levels(graph, Side.LOWER, beta) for beta in range(1, delta + 1)
    ]

    alpha_stairs: dict[Side, list[list[int]]] = {}
    beta_stairs: dict[Side, list[list[int]]] = {}
    for side in Side:
        n = graph.num_vertices_on(side)
        side_alpha: list[list[int]] = []
        side_beta: list[list[int]] = []
        for v in range(n):
            beta_prefix = [sweep[side][v] for sweep in alpha_sweeps]
            alpha_prefix = [sweep[side][v] for sweep in beta_sweeps]
            full_alpha, full_beta = _vertex_stairs(
                beta_prefix, alpha_prefix, delta
            )
            side_alpha.append(full_alpha)
            side_beta.append(full_beta)
        alpha_stairs[side] = side_alpha
        beta_stairs[side] = side_beta
    return BicoreDecomposition(
        delta=delta, alpha_stairs=alpha_stairs, beta_stairs=beta_stairs
    )
