"""Biclique-size upper bounds derived from the bicore decomposition.

Section VI-C of the paper turns the (α,β)-core structure into pruning
bounds for the branch-and-bound:

- **Lemma 9 / ``z_v``** — any biclique containing ``v`` has at most
  ``z_v`` edges, where ``z_v`` is the maximum of ``α·β`` over ``v``'s
  core region.
- **Suffix bounds (``z→`` in the paper)** — the best biclique
  containing ``v`` with at least ``k`` vertices *on v's own layer*.
  Used to skip a candidate ``v*`` whose branch already holds ``|W|``
  lower vertices.
- **Prefix bounds (``z←`` in the paper)** — the best biclique
  containing ``u`` with at most ``i`` vertices on ``u``'s own layer.
  Used to prune upper candidates once ``|P|`` has shrunk.

A biclique ``C`` with ``|U(C)| = a`` and ``|L(C)| = b`` witnesses the
core membership ``(α, β) = (b, a)`` for each of its vertices, so the
number of vertices on a vertex's own layer corresponds to the *β*
coordinate for upper vertices and the *α* coordinate for lower
vertices.  (The paper's formulas index both arrays through Definition
7's offsets, which mixes the coordinates; we implement the
dimensionally consistent version — each bound is a maximum of ``α·β``
over the vertex's own core region restricted on the own-layer
coordinate — which is provably an upper bound and is validated against
a brute-force oracle in the tests.)
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import accumulate

from repro.corenum.decomposition import BicoreDecomposition, decompose
from repro.graph.bipartite import BipartiteGraph, Side


def _own_products(stairs: list[int]) -> list[int]:
    """``products[i] = (i+1) * stairs[i]`` over the own-coordinate staircase."""
    return [(c + 1) * other for c, other in enumerate(stairs)]


def _prefix_max(values: list[int]) -> list[int]:
    # C-speed running max; values are non-negative products.
    return list(accumulate(values, max))


def _suffix_max(values: list[int]) -> list[int]:
    out = list(accumulate(reversed(values), max))
    out.reverse()
    return out


@dataclass
class CoreBounds:
    """Prefix/suffix biclique-size bounds for every vertex.

    ``prefix[side][v][i-1]`` bounds bicliques containing ``v`` whose
    own-layer vertex count is at most ``i``; ``suffix[side][v][k-1]``
    bounds those with own-layer count at least ``k``.  ``z[side][v]``
    is the unrestricted Lemma 9 bound.
    """

    z: dict[Side, list[int]]
    prefix: dict[Side, list[list[int]]]
    suffix: dict[Side, list[list[int]]]

    def z_bound(self, side: Side, v: int) -> int:
        """Lemma 9: max edges of any biclique containing ``v``."""
        return self.z[side][v]

    def own_side_at_most(self, side: Side, v: int, i: int) -> int:
        """Bound for bicliques containing ``v`` with ≤ ``i`` own-layer vertices."""
        if i < 1:
            return 0
        arr = self.prefix[side][v]
        if not arr:
            return 0
        return arr[min(i, len(arr)) - 1]

    def own_side_at_least(self, side: Side, v: int, k: int) -> int:
        """Bound for bicliques containing ``v`` with ≥ ``k`` own-layer vertices."""
        arr = self.suffix[side][v]
        if k <= 1:
            return self.z[side][v]
        if k > len(arr):
            return 0
        return arr[k - 1]


def vertex_bound_rows(
    stairs: list[int],
) -> tuple[int, list[int], list[int]]:
    """One vertex's ``(z, prefix, suffix)`` rows from its own-side stairs.

    The per-vertex kernel of :func:`compute_bounds`, exposed so the
    incremental maintenance (:mod:`repro.corenum.incremental`) can
    refresh exactly the rows of vertices whose staircases changed.
    """
    products = _own_products(stairs)
    return (
        max(products, default=0),
        _prefix_max(products),
        _suffix_max(products),
    )


def compute_bounds(
    graph: BipartiteGraph, decomposition: BicoreDecomposition | None = None
) -> CoreBounds:
    """Compute :class:`CoreBounds` (runs the decomposition if not given).

    The own-layer coordinate of an upper vertex is β (lower degrees in
    the core equal the upper-layer count of a witnessed biclique) and of
    a lower vertex is α, so upper vertices read ``beta_stairs`` and
    lower vertices ``alpha_stairs``.
    """
    if decomposition is None:
        decomposition = decompose(graph)
    own_stairs = {
        Side.UPPER: decomposition.beta_stairs[Side.UPPER],
        Side.LOWER: decomposition.alpha_stairs[Side.LOWER],
    }
    z: dict[Side, list[int]] = {}
    prefix: dict[Side, list[list[int]]] = {}
    suffix: dict[Side, list[list[int]]] = {}
    for side in Side:
        side_z: list[int] = []
        side_prefix: list[list[int]] = []
        side_suffix: list[list[int]] = []
        for stairs in own_stairs[side]:
            z_v, pref, suff = vertex_bound_rows(stairs)
            side_prefix.append(pref)
            side_suffix.append(suff)
            side_z.append(z_v)
        z[side] = side_z
        prefix[side] = side_prefix
        suffix[side] = side_suffix
    return CoreBounds(z=z, prefix=prefix, suffix=suffix)
