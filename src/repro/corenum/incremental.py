"""Incremental (α,β)-core / ``z``-bound maintenance under edge updates.

The static pipeline (``decompose`` → ``compute_bounds``) costs ``O(δ·m)``
peeling sweeps per call, which a mutating workload would pay on every
edge.  This module keeps the full sweep family *live* instead: for each
fixed coordinate ``a ≤ δ`` it stores the per-vertex level function

    ``ℓ(x) = max t such that x ∈ (a, t)-core``

(the exact output of ``_peel_levels``) and repairs it locally when an
edge is inserted or deleted, then refreshes staircases and
:class:`~repro.corenum.bounds.CoreBounds` rows for exactly the vertices
whose levels moved.  The repairs are **exact**, not approximate — they
rest on the fixpoint characterization of ``ℓ``:

- ``ℓ`` is the greatest fixpoint of the operator ``F`` where, for a
  free-side vertex, ``F(x)`` is the h-index of its neighbors' levels
  and, for a fixed-side vertex, the ``a``-th largest neighbor level.
  Any assignment with ``L ≤ F(L)`` pointwise satisfies ``L ≤ ℓ``
  (the set ``{x : L(x) ≥ t}`` is an (a,t)-core witness), so a
  decrease-only chaotic iteration started from any upper bound of the
  new levels converges to them exactly.
- **Deletion** starts the iteration from the old levels (cores only
  shrink), seeding the worklist with the two endpoints — the classic
  peeling cascade, bounded by ``cascade_cap``.
- **Insertion** uses the locality lemma: removing one fixed-side
  vertex from an (a,t)-core leaves an (a,t-1)-core, so every vertex
  except the fixed-side endpoint rises by at most one level, and the
  set of vertices changed at threshold ``t`` is a connected region of
  vertices with old level exactly ``t-1`` touching an endpoint.  The
  repair BFS-grows that candidate region per threshold, initializes it
  to ``old + 1`` (the fixed endpoint to its ``a``-th largest
  neighbor-bound), and decrease-converges with the boundary frozen.

Every sweep repair falls back to a single fresh ``_peel_levels`` sweep
when the cascade/region exceeds ``cascade_cap`` — never the full
decomposition.  δ itself moves by at most one per update; a growth
(gated on both endpoint degrees, probed with one ``alpha_beta_core``
peel) appends two fresh sweeps, a shrink drops the top ones.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.corenum.bounds import CoreBounds, vertex_bound_rows
from repro.corenum.decomposition import (
    BicoreDecomposition,
    _peel_levels,
    _vertex_stairs,
)
from repro.corenum.peeling import alpha_beta_core, max_delta
from repro.graph.bipartite import BipartiteGraph, Side

__all__ = ["IncrementalCoreBounds", "UpdateRepairStats"]

#: Default bound on vertices a single sweep repair may touch before the
#: sweep is re-peeled from scratch instead.
DEFAULT_CASCADE_CAP = 4096


class _AdjView:
    """Duck-typed :class:`BipartiteGraph` over mutable adjacency sets.

    Exposes exactly the surface ``_peel_levels`` / ``alpha_beta_core``
    read (``num_vertices_on``, ``degrees``, ``neighbors``, layer
    counts), so sweeps can be re-peeled against the live adjacency
    without materializing a snapshot.
    """

    def __init__(self, adj: dict[Side, list[set[int]]]) -> None:
        self._adj = adj

    def num_vertices_on(self, side: Side) -> int:
        return len(self._adj[side])

    @property
    def num_upper(self) -> int:
        return len(self._adj[Side.UPPER])

    @property
    def num_lower(self) -> int:
        return len(self._adj[Side.LOWER])

    @property
    def num_edges(self) -> int:
        return sum(len(ns) for ns in self._adj[Side.UPPER])

    def degrees(self, side: Side) -> list[int]:
        return [len(ns) for ns in self._adj[side]]

    def neighbors(self, side: Side, v: int):
        return self._adj[side][v]


def _h_index(values: list[int]) -> int:
    """Max ``t`` with at least ``t`` entries ≥ ``t``."""
    values.sort(reverse=True)
    h = 0
    for i, value in enumerate(values):
        if value >= i + 1:
            h = i + 1
        else:
            break
    return h


def _kth_largest(values: list[int], k: int) -> int:
    """The ``k``-th largest entry (0 when fewer than ``k`` entries)."""
    if len(values) < k:
        return 0
    values.sort(reverse=True)
    return values[k - 1]


@dataclass
class UpdateRepairStats:
    """Telemetry for one edge update's bound repair."""

    action: str
    cascade: int = 0  #: vertices processed across all sweep repairs
    sweeps_repaired: int = 0
    sweeps_skipped: int = 0  #: degree-gated sweeps proven unaffected
    sweep_fallbacks: int = 0  #: repairs that re-peeled a full sweep
    delta_changed: bool = False
    changed_vertices: set[tuple[Side, int]] = field(default_factory=set)


class IncrementalCoreBounds:
    """Live :class:`CoreBounds` maintained under edge insert/delete.

    The :attr:`bounds` (and :attr:`decomposition`) objects are mutated
    **in place**, so every holder of the object — engines, serving
    backends, shards sharing one bounds instance — observes repairs
    without a reference swap.  Bound rows are replaced whole (one list
    assignment per vertex), never edited element-wise, so a concurrent
    reader sees either the old or the new row of a vertex.

    Parameters
    ----------
    graph:
        The starting graph.
    bounds:
        Optional existing :class:`CoreBounds` of ``graph`` to adopt and
        maintain (must have been computed from ``graph``); a fresh one
        is computed when omitted.
    cascade_cap:
        Max vertices a single sweep repair may touch before falling
        back to re-peeling that sweep.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        bounds: CoreBounds | None = None,
        cascade_cap: int = DEFAULT_CASCADE_CAP,
    ) -> None:
        self._adj: dict[Side, list[set[int]]] = {
            side: [
                set(graph.neighbors(side, v))
                for v in range(graph.num_vertices_on(side))
            ]
            for side in Side
        }
        self._view = _AdjView(self._adj)
        self.cascade_cap = cascade_cap
        self._delta = max_delta(graph)
        self._alpha_sweeps = [
            _peel_levels(graph, Side.UPPER, a)
            for a in range(1, self._delta + 1)
        ]
        self._beta_sweeps = [
            _peel_levels(graph, Side.LOWER, b)
            for b in range(1, self._delta + 1)
        ]
        self._decomp = self._assemble_decomposition()
        if bounds is None:
            bounds = self._fresh_bounds()
        self._bounds = bounds
        # Aggregate counters (exposed via stats()).
        self.updates = 0
        self.noop_updates = 0
        self.cascade_total = 0
        self.sweep_fallbacks = 0
        self.delta_changes = 0
        self.last_repair: UpdateRepairStats | None = None
        #: Pending stairs/bounds refreshes inside a defer_refresh()
        #: block (None = eager refresh after every update).
        self._deferred_refresh: set[tuple[Side, int]] | None = None

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> CoreBounds:
        """The live (in-place maintained) bounds object."""
        return self._bounds

    @property
    def decomposition(self) -> BicoreDecomposition:
        """The live (in-place maintained) decomposition."""
        return self._decomp

    @property
    def delta(self) -> int:
        """Current δ (max t with a non-empty (t,t)-core)."""
        return self._delta

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` exists in the maintained graph."""
        return (
            u < len(self._adj[Side.UPPER]) and v in self._adj[Side.UPPER][u]
        )

    def ensure_vertex(self, side: Side, x: int) -> None:
        """Extend ``side`` so vertex id ``x`` exists (isolated if new)."""
        self._grow(side, x)

    def snapshot(self) -> BipartiteGraph:
        """An immutable :class:`BipartiteGraph` of the maintained graph."""
        return BipartiteGraph(
            [sorted(ns) for ns in self._adj[Side.UPPER]],
            num_lower=len(self._adj[Side.LOWER]),
        )

    def stats(self) -> dict:
        """JSON-friendly repair counters."""
        return {
            "updates": self.updates,
            "noop_updates": self.noop_updates,
            "cascade_total": self.cascade_total,
            "sweep_fallbacks": self.sweep_fallbacks,
            "delta_changes": self.delta_changes,
            "delta": self._delta,
            "cascade_cap": self.cascade_cap,
        }

    # ------------------------------------------------------------------
    # Update surface
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> UpdateRepairStats:
        """Insert edge ``(u, v)``; repairs levels, stairs and bounds.

        Unknown vertex ids extend the layers.  Inserting an existing
        edge is a free, counted no-op.
        """
        stats = UpdateRepairStats("insert")
        self._grow(Side.UPPER, u)
        self._grow(Side.LOWER, v)
        if v in self._adj[Side.UPPER][u]:
            self.noop_updates += 1
            stats.action = "noop"
            self.last_repair = stats
            return stats
        self._adj[Side.UPPER][u].add(v)
        self._adj[Side.LOWER][v].add(u)
        self._repair_all_sweeps(stats, "insert", u, v)
        self._maybe_grow_delta(stats, u, v)
        self._refresh_or_defer(stats.changed_vertices)
        self._account(stats)
        return stats

    def delete_edge(self, u: int, v: int) -> UpdateRepairStats:
        """Delete edge ``(u, v)``; repairs levels, stairs and bounds.

        Deleting a missing edge is a free, counted no-op.
        """
        stats = UpdateRepairStats("delete")
        if not self.has_edge(u, v):
            self.noop_updates += 1
            stats.action = "noop"
            self.last_repair = stats
            return stats
        deg_u = len(self._adj[Side.UPPER][u])
        deg_v = len(self._adj[Side.LOWER][v])
        self._adj[Side.UPPER][u].discard(v)
        self._adj[Side.LOWER][v].discard(u)
        self._repair_all_sweeps(stats, "delete", u, v, deg_u, deg_v)
        self._maybe_shrink_delta(stats)
        self._refresh_or_defer(stats.changed_vertices)
        self._account(stats)
        return stats

    @contextmanager
    def defer_refresh(self) -> Iterator[None]:
        """Batch the stairs/bounds refresh across several updates.

        Inside the block, sweep levels are repaired eagerly (every
        update sees exact levels) but the per-vertex staircase and
        bound-row refresh is accumulated and executed once on exit —
        a batch touching overlapping neighborhoods refreshes each
        vertex once instead of once per update.  While the block is
        open the :attr:`bounds` object is stale; callers must not
        publish it (e.g. swap a graph snapshot) until the block
        closes.  Not reentrant.
        """
        if self._deferred_refresh is not None:
            raise RuntimeError("defer_refresh() is not reentrant")
        self._deferred_refresh = set()
        try:
            yield
        finally:
            pending = self._deferred_refresh
            self._deferred_refresh = None
            if pending:
                self._refresh_vertices(pending)

    def _refresh_or_defer(self, changed: set[tuple[Side, int]]) -> None:
        if self._deferred_refresh is not None:
            self._deferred_refresh |= changed
        else:
            self._refresh_vertices(changed)

    def verify(self) -> None:
        """Assert the maintained state equals a from-scratch recompute.

        Test hook: raises ``AssertionError`` on any divergence.
        """
        from repro.corenum.bounds import compute_bounds
        from repro.corenum.decomposition import decompose

        snapshot = self.snapshot()
        fresh_decomp = decompose(snapshot)
        assert self._delta == fresh_decomp.delta, (
            f"delta drifted: {self._delta} != {fresh_decomp.delta}"
        )
        for side in Side:
            assert (
                self._decomp.alpha_stairs[side]
                == fresh_decomp.alpha_stairs[side]
            ), f"alpha stairs drifted on {side}"
            assert (
                self._decomp.beta_stairs[side]
                == fresh_decomp.beta_stairs[side]
            ), f"beta stairs drifted on {side}"
        fresh_bounds = compute_bounds(snapshot, fresh_decomp)
        for side in Side:
            assert self._bounds.z[side] == fresh_bounds.z[side]
            assert self._bounds.prefix[side] == fresh_bounds.prefix[side]
            assert self._bounds.suffix[side] == fresh_bounds.suffix[side]

    # ------------------------------------------------------------------
    # Sweep repair
    # ------------------------------------------------------------------
    def _repair_all_sweeps(
        self,
        stats: UpdateRepairStats,
        action: str,
        u: int,
        v: int,
        deg_u: int | None = None,
        deg_v: int | None = None,
    ) -> None:
        """Repair every stored sweep for one applied edge mutation.

        For inserts the gate degree is the post-insert degree of the
        sweep's fixed-side endpoint; for deletes the pre-delete degree
        (``deg_u``/``deg_v``).  A sweep whose fixed value exceeds that
        degree cannot involve the endpoint, so the edge is invisible to
        it and the sweep is skipped untouched.
        """
        if deg_u is None:
            deg_u = len(self._adj[Side.UPPER][u])
        if deg_v is None:
            deg_v = len(self._adj[Side.LOWER][v])
        for sweeps, fixed_side, gate in (
            (self._alpha_sweeps, Side.UPPER, deg_u),
            (self._beta_sweeps, Side.LOWER, deg_v),
        ):
            for a_idx, level in enumerate(sweeps):
                a = a_idx + 1
                if a > gate:
                    stats.sweeps_skipped += 1
                    continue
                if action == "insert":
                    changed = self._repair_sweep_insert(level, fixed_side, a, u, v)
                    if changed is None:
                        changed = self._repeel_sweep(level, fixed_side, a)
                        stats.sweep_fallbacks += 1
                else:
                    changed, fell_back = self._repair_sweep_delete(
                        level, fixed_side, a, u, v
                    )
                    if fell_back:
                        stats.sweep_fallbacks += 1
                stats.sweeps_repaired += 1
                stats.cascade += len(changed)
                stats.changed_vertices.update(changed)

    def _sweep_value(
        self,
        level: dict[Side, list[int]],
        fixed_side: Side,
        a: int,
        side: Side,
        x: int,
    ) -> int:
        """The fixpoint operator ``F`` at one vertex."""
        other = side.other
        other_level = level[other]
        values = [other_level[w] for w in self._adj[side][x]]
        if side is fixed_side:
            return _kth_largest(values, a)
        return _h_index(values)

    def _repair_sweep_delete(
        self,
        level: dict[Side, list[int]],
        fixed_side: Side,
        a: int,
        u: int,
        v: int,
    ) -> tuple[set[tuple[Side, int]], bool]:
        """Decrease-only cascade from the endpoints.

        Returns ``(changed, fell_back)``.  On a cap overrun the sweep is
        re-peeled from scratch; the vertices already lowered by the
        aborted cascade stay in the changed set (their levels are
        correct, but their staircases still need refreshing).
        """
        work: deque[tuple[Side, int]] = deque(
            ((Side.UPPER, u), (Side.LOWER, v))
        )
        queued = set(work)
        changed: set[tuple[Side, int]] = set()
        processed = 0
        adj = self._adj
        while work:
            side, x = work.popleft()
            queued.discard((side, x))
            processed += 1
            if processed > self.cascade_cap:
                changed |= self._repeel_sweep(level, fixed_side, a)
                return changed, True
            current = level[side][x]
            if current == 0:
                continue
            # F(x) >= current iff at least `need` neighbor values are
            # >= current — check by counting before paying for a sort.
            other_level = level[side.other]
            need = a if side is fixed_side else current
            count = 0
            for w in adj[side][x]:
                if other_level[w] >= current:
                    count += 1
                    if count >= need:
                        break
            if count >= need:
                continue
            new = self._sweep_value(level, fixed_side, a, side, x)
            if new >= current:
                continue
            level[side][x] = new
            changed.add((side, x))
            other = side.other
            other_level = level[other]
            for w in self._adj[side][x]:
                # w's operator value can only drop if x stopped counting
                # toward w's current level: new < ℓ(w) ≤ current.
                if new < other_level[w] <= current:
                    key = (other, w)
                    if key not in queued:
                        queued.add(key)
                        work.append(key)
        return changed, False

    def _repair_sweep_insert(
        self,
        level: dict[Side, list[int]],
        fixed_side: Side,
        a: int,
        u: int,
        v: int,
    ) -> set[tuple[Side, int]] | None:
        """Certified region repair for one insertion; ``None`` on cap.

        Region = per-threshold connected components of old-level
        ``t-1`` vertices touching an endpoint (the only vertices whose
        level can rise to ``t``), plus the fixed endpoint, whose level
        may jump multiple steps and is initialized to its ``a``-th
        largest neighbor bound instead of ``old + 1``.
        """
        adj = self._adj
        if fixed_side is Side.UPPER:
            fixed_key, free_key = (Side.UPPER, u), (Side.LOWER, v)
        else:
            fixed_key, free_key = (Side.LOWER, v), (Side.UPPER, u)
        f_side, f_x = fixed_key
        # Upper bound for the fixed endpoint: every other vertex rises
        # by ≤ 1, so F'(ℓ+1) bounds its new level.
        free_level = level[f_side.other]
        cap_values = [free_level[w] + 1 for w in adj[f_side][f_x]]
        fixed_target = _kth_largest(cap_values, a)
        free_target = level[free_key[0]][free_key[1]] + 1

        # Candidate region, grown one threshold at a time.  The two
        # endpoints seed every threshold, so their neighbors are
        # bucketed by level once instead of rescanned per threshold.
        region: set[tuple[Side, int]] = {fixed_key, free_key}
        thresholds = set(
            range(level[f_side][f_x] + 1, fixed_target + 1)
        )
        thresholds.add(free_target)
        fixed_buckets: dict[int, list[int]] = {}
        for w in adj[f_side][f_x]:
            fixed_buckets.setdefault(free_level[w], []).append(w)
        o_side = f_side.other
        fixed_level_row = level[f_side]
        free_buckets: dict[int, list[int]] = {}
        for w in adj[o_side][free_key[1]]:
            free_buckets.setdefault(fixed_level_row[w], []).append(w)

        def qualifies(side: Side, w: int, t: int) -> bool:
            # Necessary condition for w (old level t-1) to rise to t:
            # enough neighbors that can reach level >= t.  Non-endpoint
            # neighbors rise by <= 1, so they need old level >= t-1;
            # the endpoint on the opposite layer is credited by its
            # target bound instead (the fixed endpoint can jump several
            # steps).  Unqualified vertices stay put, and every riser
            # chains back to the endpoints through other risers, so
            # skipping them from the BFS loses nothing.
            need = a if side is fixed_side else t
            o_level = level[side.other]
            if side is f_side:
                ep, ep_ok = free_key[1], free_target >= t
            else:
                ep, ep_ok = f_x, fixed_target >= t
            count = 0
            t1 = t - 1
            for z in adj[side][w]:
                if o_level[z] >= t1 or (ep_ok and z == ep):
                    count += 1
                    if count >= need:
                        return True
            return False

        for t in thresholds:
            frontier = []
            rejected: set[tuple[Side, int]] = set()
            if fixed_target >= t:
                for w in fixed_buckets.get(t - 1, ()):
                    key = (o_side, w)
                    if key not in region:
                        if qualifies(o_side, w, t):
                            region.add(key)
                            frontier.append(key)
                        else:
                            rejected.add(key)
            if free_target == t:
                for w in free_buckets.get(t - 1, ()):
                    key = (f_side, w)
                    if key not in region and key not in rejected:
                        if qualifies(f_side, w, t):
                            region.add(key)
                            frontier.append(key)
                        else:
                            rejected.add(key)
            if len(region) > self.cascade_cap:
                return None
            while frontier:
                side, x = frontier.pop()
                other = side.other
                other_level = level[other]
                for w in adj[side][x]:
                    key = (other, w)
                    if (
                        other_level[w] == t - 1
                        and key not in region
                        and key not in rejected
                    ):
                        if qualifies(other, w, t):
                            region.add(key)
                            if len(region) > self.cascade_cap:
                                return None
                            frontier.append(key)
                        else:
                            rejected.add(key)

        # Decrease-converge inside the region; boundary frozen at old
        # levels (exact, since no vertex outside the region can change).
        # Candidates live in full per-side rows (copies of the level
        # rows, bumped inside the region) so the hot neighbor scans are
        # plain list indexing instead of tuple-keyed dict lookups.
        cand = {side: level[side].copy() for side in Side}
        for side, x in region:
            cand[side][x] += 1
        cand[f_side][f_x] = fixed_target
        work: deque[tuple[Side, int]] = deque(region)
        queued = set(work)
        while work:
            side, x = work.popleft()
            queued.discard((side, x))
            current = cand[side][x]
            if current == 0:
                continue
            other = side.other
            other_cand = cand[other]
            neighbors = adj[side][x]
            # Counting check first: F(x) >= current iff at least
            # `need` neighbor values are >= current, which skips the
            # sort on the (common) already-converged pops.
            need = a if side is fixed_side else current
            count = 0
            for w in neighbors:
                if other_cand[w] >= current:
                    count += 1
                    if count >= need:
                        break
            if count >= need:
                continue
            values = [other_cand[w] for w in neighbors]
            if side is fixed_side:
                new = _kth_largest(values, a)
            else:
                new = _h_index(values)
            if new >= current:
                continue
            cand[side][x] = new
            for w in neighbors:
                if new < other_cand[w] <= current:
                    key = (other, w)
                    if key in region and key not in queued:
                        queued.add(key)
                        work.append(key)

        changed: set[tuple[Side, int]] = set()
        for key in region:
            side, x = key
            value = cand[side][x]
            if value != level[side][x]:
                level[side][x] = value
                changed.add(key)
        return changed

    def _repeel_sweep(
        self, level: dict[Side, list[int]], fixed_side: Side, a: int
    ) -> set[tuple[Side, int]]:
        """Fallback: re-peel one sweep, returning the changed vertices."""
        fresh = _peel_levels(self._view, fixed_side, a)
        changed: set[tuple[Side, int]] = set()
        for side in Side:
            old_levels = level[side]
            new_levels = fresh[side]
            for x, new in enumerate(new_levels):
                if old_levels[x] != new:
                    old_levels[x] = new
                    changed.add((side, x))
        return changed

    # ------------------------------------------------------------------
    # δ transitions
    # ------------------------------------------------------------------
    def _maybe_grow_delta(
        self, stats: UpdateRepairStats, u: int, v: int
    ) -> None:
        """δ grows by ≤ 1 per insert, and only through the new edge."""
        d = self._delta + 1
        if len(self._adj[Side.UPPER][u]) < d or len(self._adj[Side.LOWER][v]) < d:
            return
        upper, __ = alpha_beta_core(self._view, d, d)
        if not upper:
            return
        self._alpha_sweeps.append(_peel_levels(self._view, Side.UPPER, d))
        self._beta_sweeps.append(_peel_levels(self._view, Side.LOWER, d))
        self._delta = d
        self._mark_delta_change(stats)

    def _maybe_shrink_delta(self, stats: UpdateRepairStats) -> None:
        """Drop the top sweeps when the (δ,δ)-core emptied."""
        while self._delta > 0:
            top = self._alpha_sweeps[-1]
            if any(
                lvl >= self._delta for lvl in top[Side.LOWER]
            ):
                return
            self._alpha_sweeps.pop()
            self._beta_sweeps.pop()
            self._delta -= 1
            self._mark_delta_change(stats)

    def _mark_delta_change(self, stats: UpdateRepairStats) -> None:
        # The δ split point enters every staircase assembly, so every
        # vertex's stairs (and bounds) must be refreshed.
        stats.delta_changed = True
        self.delta_changes += 1
        for side in Side:
            stats.changed_vertices.update(
                (side, x) for x in range(len(self._adj[side]))
            )

    # ------------------------------------------------------------------
    # Staircase / bounds refresh
    # ------------------------------------------------------------------
    def _refresh_vertices(
        self, changed: set[tuple[Side, int]]
    ) -> None:
        """Reassemble stairs and bound rows for the changed vertices."""
        delta = self._delta
        self._decomp.delta = delta
        alpha_sweeps = self._alpha_sweeps
        beta_sweeps = self._beta_sweeps
        for side, x in changed:
            beta_prefix = [sweep[side][x] for sweep in alpha_sweeps]
            alpha_prefix = [sweep[side][x] for sweep in beta_sweeps]
            full_alpha, full_beta = _vertex_stairs(
                beta_prefix, alpha_prefix, delta
            )
            self._decomp.alpha_stairs[side][x] = full_alpha
            self._decomp.beta_stairs[side][x] = full_beta
            own = full_beta if side is Side.UPPER else full_alpha
            z_v, pref, suff = vertex_bound_rows(own)
            self._bounds.z[side][x] = z_v
            self._bounds.prefix[side][x] = pref
            self._bounds.suffix[side][x] = suff

    def _grow(self, side: Side, x: int) -> None:
        """Extend every per-vertex array for a new vertex id."""
        while x >= len(self._adj[side]):
            self._adj[side].append(set())
            for sweep in self._alpha_sweeps:
                sweep[side].append(0)
            for sweep in self._beta_sweeps:
                sweep[side].append(0)
            self._decomp.alpha_stairs[side].append([])
            self._decomp.beta_stairs[side].append([])
            self._bounds.z[side].append(0)
            self._bounds.prefix[side].append([])
            self._bounds.suffix[side].append([])

    def _account(self, stats: UpdateRepairStats) -> None:
        self.updates += 1
        self.cascade_total += stats.cascade
        self.sweep_fallbacks += stats.sweep_fallbacks
        self.last_repair = stats

    def _assemble_decomposition(self) -> BicoreDecomposition:
        delta = self._delta
        alpha_stairs: dict[Side, list[list[int]]] = {}
        beta_stairs: dict[Side, list[list[int]]] = {}
        for side in Side:
            side_alpha: list[list[int]] = []
            side_beta: list[list[int]] = []
            for x in range(len(self._adj[side])):
                beta_prefix = [s[side][x] for s in self._alpha_sweeps]
                alpha_prefix = [s[side][x] for s in self._beta_sweeps]
                full_alpha, full_beta = _vertex_stairs(
                    beta_prefix, alpha_prefix, delta
                )
                side_alpha.append(full_alpha)
                side_beta.append(full_beta)
            alpha_stairs[side] = side_alpha
            beta_stairs[side] = side_beta
        return BicoreDecomposition(
            delta=delta, alpha_stairs=alpha_stairs, beta_stairs=beta_stairs
        )

    def _fresh_bounds(self) -> CoreBounds:
        own_stairs = {
            Side.UPPER: self._decomp.beta_stairs[Side.UPPER],
            Side.LOWER: self._decomp.alpha_stairs[Side.LOWER],
        }
        z: dict[Side, list[int]] = {}
        prefix: dict[Side, list[list[int]]] = {}
        suffix: dict[Side, list[list[int]]] = {}
        for side in Side:
            side_z: list[int] = []
            side_prefix: list[list[int]] = []
            side_suffix: list[list[int]] = []
            for stairs in own_stairs[side]:
                z_v, pref, suff = vertex_bound_rows(stairs)
                side_z.append(z_v)
                side_prefix.append(pref)
                side_suffix.append(suff)
            z[side] = side_z
            prefix[side] = side_prefix
            suffix[side] = side_suffix
        return CoreBounds(z=z, prefix=prefix, suffix=suffix)
