"""(α,β)-core extraction by iterative peeling (Definition 6).

An (α,β)-core is the maximal subgraph where every upper vertex has
degree ≥ α and every lower vertex has degree ≥ β.  It is unique, so it
can be computed by repeatedly deleting any violating vertex.
"""

from __future__ import annotations

from collections import deque

from repro.graph.bipartite import BipartiteGraph, Side


def alpha_beta_core(
    graph: BipartiteGraph, alpha: int, beta: int
) -> tuple[set[int], set[int]]:
    """Vertex sets ``(upper_ids, lower_ids)`` of the (α,β)-core of ``graph``.

    Returns two empty sets when the core is empty.  ``alpha`` constrains
    upper-vertex degrees and ``beta`` lower-vertex degrees.
    """
    if alpha < 1 or beta < 1:
        raise ValueError(f"alpha and beta must be >= 1, got ({alpha}, {beta})")
    deg = {
        Side.UPPER: graph.degrees(Side.UPPER),
        Side.LOWER: graph.degrees(Side.LOWER),
    }
    alive = {
        Side.UPPER: [True] * graph.num_upper,
        Side.LOWER: [True] * graph.num_lower,
    }
    threshold = {Side.UPPER: alpha, Side.LOWER: beta}

    queue: deque[tuple[Side, int]] = deque()
    for side in Side:
        for v, d in enumerate(deg[side]):
            if d < threshold[side]:
                queue.append((side, v))
                alive[side][v] = False
    while queue:
        side, v = queue.popleft()
        other = side.other
        for w in graph.neighbors(side, v):
            if not alive[other][w]:
                continue
            deg[other][w] -= 1
            if deg[other][w] < threshold[other]:
                alive[other][w] = False
                queue.append((other, w))
    upper = {v for v, ok in enumerate(alive[Side.UPPER]) if ok}
    lower = {v for v, ok in enumerate(alive[Side.LOWER]) if ok}
    return upper, lower


def max_delta(graph: BipartiteGraph) -> int:
    """The maximal δ such that the (δ,δ)-core of ``graph`` is non-empty.

    δ is bounded by √m (paper, Section VI-C).  Found by doubling then
    binary search; each probe is a linear-time peel.
    """
    if graph.num_edges == 0:
        return 0

    def non_empty(d: int) -> bool:
        upper, __ = alpha_beta_core(graph, d, d)
        return bool(upper)

    # (1,1)-core is non-empty whenever there is an edge.
    low = 1
    high = 2
    while non_empty(high):
        low = high
        high *= 2
    # Invariant: non_empty(low), not non_empty(high).
    while high - low > 1:
        mid = (low + high) // 2
        if non_empty(mid):
            low = mid
        else:
            high = mid
    return low
