"""(α,β)-core substrate.

Implements Definition 6 ((α,β)-core), the α-/β-offsets of Definition 7
via full bicore decomposition (Liu et al., WWW 2019 — reference [40] of
the paper), and the biclique-size upper bounds of Section VI-C
(``z_v`` and the prefix/suffix bound arrays behind Lemma 9) used to
accelerate PMBC-OL into PMBC-OL*.  Streaming workloads use
:class:`~repro.corenum.incremental.IncrementalCoreBounds`, which keeps
the decomposition and bounds live under edge updates via bounded
peeling cascades instead of from-scratch recomputation.
"""

from repro.corenum.peeling import alpha_beta_core, max_delta
from repro.corenum.decomposition import BicoreDecomposition, decompose
from repro.corenum.bounds import CoreBounds, compute_bounds
from repro.corenum.incremental import IncrementalCoreBounds, UpdateRepairStats

__all__ = [
    "alpha_beta_core",
    "max_delta",
    "BicoreDecomposition",
    "decompose",
    "CoreBounds",
    "compute_bounds",
    "IncrementalCoreBounds",
    "UpdateRepairStats",
]
