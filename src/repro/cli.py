"""Command-line interface: ``pmbc``.

Subcommands:

- ``pmbc build <edges-file> -o index.json`` — build a PMBC-Index from a
  KONECT or plain edge-list file and save it;
- ``pmbc query <edges-file> --index index.json --side upper --vertex 3
  --tau-u 2 --tau-l 2`` — answer a personalized query (index-based when
  an index file is given, online otherwise); ``--batch-file`` answers
  many queries in one run with shared two-hop extraction, and
  ``--objective balanced`` maximizes the balanced (min-side) family
  instead of edge count (online path only);
- ``pmbc explain <edges-file> Q TAU_U TAU_L`` — answer one query under
  a search trace and print the human-readable report: two-hop subgraph
  size, progressive-bounding rounds, Branch&Bound nodes, and prune
  counts by rule (see docs/observability.md);
- ``pmbc stats <edges-file>`` — graph and index statistics;
- ``pmbc datasets`` — list the built-in dataset zoo;
- ``pmbc serve <edges-file> [--index index.bin] [--execution
  thread|process] [--shards N]`` — run the HTTP query-serving
  front-end; ``--shards N`` (N >= 2) partitions the vertex space
  across N shard services behind the asyncio front-end (see
  :mod:`repro.serve`, :mod:`repro.shard`, :mod:`repro.exec`,
  docs/serving.md, docs/sharding.md and docs/execution.md);
- ``pmbc update --url http://HOST:PORT insert:3:7 delete:1:2`` — apply
  a batch of streaming edge updates to a running server via ``POST
  /update`` (incremental bound repair instead of a rebuild; see
  docs/dynamic.md).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import (
    PMBCIndex,
    QueryRequest,
    build_index,
    build_index_star,
    pmbc_index_query,
    pmbc_online_star,
)
from repro.core.serialize import IndexFormatError
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.io import read_edge_list, read_konect
from repro.kernel import KERNEL_KINDS
from repro.objectives import get_objective, objective_kinds


def _load_graph(path: str, konect: bool) -> BipartiteGraph:
    reader = read_konect if konect else read_edge_list
    return reader(path)


def _side(value: str) -> Side:
    try:
        return Side(value.lower())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"side must be 'upper' or 'lower', got {value!r}"
        )


class _IndexLoadError(Exception):
    """A user-facing index-loading failure (reported without traceback)."""


def _load_index(path: str) -> PMBCIndex:
    """Load a saved index through the unified :meth:`PMBCIndex.load`.

    Format sniffing (JSON vs binary magic bytes) lives in
    ``PMBCIndex.load``; this wrapper turns failures into
    :class:`_IndexLoadError` with a human-readable message so commands
    exit cleanly without a traceback.
    """
    try:
        return PMBCIndex.load(path)
    except OSError as exc:
        raise _IndexLoadError(
            f"cannot read index file {path!r}: {exc.strerror or exc}"
        ) from None
    except IndexFormatError as exc:
        raise _IndexLoadError(
            f"corrupt binary index {path!r}: {exc}"
        ) from None
    except (ValueError, KeyError, TypeError, EOFError) as exc:
        # JSON decode errors are ValueError subclasses; missing fields
        # surface as KeyError/TypeError.
        raise _IndexLoadError(
            f"index file {path!r} is not a valid PMBC-Index "
            f"(JSON or binary): {exc}"
        ) from None


def _cmd_build(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.konect)
    builder = build_index if args.no_cost_sharing else build_index_star
    start = time.perf_counter()
    index = builder(graph)
    elapsed = time.perf_counter() - start
    index.save(args.output, format="binary" if args.binary else "auto")
    stats = index.stats()
    print(
        f"built PMBC-Index in {elapsed:.2f}s: "
        f"{stats['num_tree_nodes']} tree nodes, "
        f"{stats['num_bicliques']} bicliques, "
        f"{stats['total_size_bytes']} bytes -> {args.output}"
    )
    return 0


def _read_batch_file(path: str, graph: BipartiteGraph) -> list[QueryRequest]:
    """Parse a batch file: a JSON array or JSON-lines of queries.

    Each query is an object (``side`` plus ``vertex`` or ``label``,
    optional ``tau_u``/``tau_l``) or a ``[side, vertex, tau_u, tau_l]``
    array.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    if text.lstrip().startswith("["):
        items = json.loads(text)
    else:
        items = [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
    requests = []
    for position, item in enumerate(items):
        try:
            if isinstance(item, dict) and "vertex" not in item:
                side = Side(str(item.get("side", "")).lower())
                item = dict(item)
                item["vertex"] = graph.vertex_by_label(
                    side, item.pop("label")
                )
            requests.append(QueryRequest.of(item))
        except (KeyError, TypeError, ValueError) as exc:
            raise _IndexLoadError(
                f"bad batch entry #{position} in {path!r}: {exc}"
            ) from None
    if not requests:
        raise _IndexLoadError(f"batch file {path!r} contains no queries")
    return requests


def _cmd_query_batch(args: argparse.Namespace, graph: BipartiteGraph) -> int:
    from repro.core.engine import PMBCQueryEngine

    requests = _read_batch_file(args.batch_file, graph)
    if args.index:
        incompatible = sorted(
            {
                r.objective
                for r in requests
                if not get_objective(r.objective).index_compatible
            }
        )
        if incompatible:
            print(
                f"error: objective(s) {', '.join(incompatible)} cannot be "
                "answered from a PMBC index; drop --index to search online",
                file=sys.stderr,
            )
            return 2
    start = time.perf_counter()
    if args.index:
        index = _load_index(args.index)
        answers = [pmbc_index_query(index, request) for request in requests]
    else:
        engine = PMBCQueryEngine(graph)
        answers = engine.query_batch(requests)
    elapsed = time.perf_counter() - start
    payload = []
    for request, answer in zip(requests, answers):
        entry: dict = {"query": request.to_json()}
        if answer is None:
            entry["result"] = None
        else:
            upper_labels, lower_labels = answer.with_labels(graph)
            entry["result"] = {
                "shape": list(answer.shape),
                "edges": answer.num_edges,
                "upper": sorted(map(str, upper_labels)),
                "lower": sorted(map(str, lower_labels)),
            }
        payload.append(entry)
    print(
        json.dumps(
            {
                "count": len(payload),
                "milliseconds": elapsed * 1e3,
                "results": payload,
            },
            indent=2,
        )
    )
    return 0 if any(a is not None for a in answers) else 1


def _cmd_query(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.konect)
    if args.batch_file is not None:
        return _cmd_query_batch(args, graph)
    side = args.side
    if side is None:
        print(
            "error: provide --side (or use --batch-file)", file=sys.stderr
        )
        return 2
    if args.label is not None:
        vertex = graph.vertex_by_label(side, args.label)
    elif args.vertex is not None:
        vertex = args.vertex
    else:
        print("error: provide --vertex or --label", file=sys.stderr)
        return 2
    if args.index and not get_objective(args.objective).index_compatible:
        print(
            f"error: objective {args.objective!r} cannot be answered from "
            "a PMBC index; drop --index to search online",
            file=sys.stderr,
        )
        return 2
    start = time.perf_counter()
    if args.index:
        index = _load_index(args.index)
        result = pmbc_index_query(index, side, vertex, args.tau_u, args.tau_l)
    else:
        result = pmbc_online_star(
            graph, side, vertex, args.tau_u, args.tau_l,
            objective=args.objective,
        )
    elapsed = time.perf_counter() - start
    if result is None:
        print(f"no biclique satisfies the constraints ({elapsed * 1e3:.3f} ms)")
        return 1
    upper_labels, lower_labels = result.with_labels(graph)
    payload = {
        "shape": list(result.shape),
        "edges": result.num_edges,
        "upper": sorted(map(str, upper_labels)),
        "lower": sorted(map(str, lower_labels)),
        "milliseconds": elapsed * 1e3,
    }
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Answer one query under a trace and print the search report."""
    from repro.obs import SearchTrace, render_trace, use_trace

    if args.dataset:
        from repro.datasets.zoo import load_dataset

        graph = load_dataset(args.graph)
    else:
        graph = _load_graph(args.graph, args.konect)
    side = args.side
    if args.label is not None:
        vertex = graph.vertex_by_label(side, args.label)
    elif args.vertex is not None:
        vertex = args.vertex
    else:
        print("error: provide a vertex (or --label)", file=sys.stderr)
        return 2
    if args.index and not get_objective(args.objective).index_compatible:
        print(
            f"error: objective {args.objective!r} cannot be answered from "
            "a PMBC index; drop --index to trace the online search",
            file=sys.stderr,
        )
        return 2
    trace = SearchTrace()
    trace.annotate(
        kind="query",
        query={
            "side": side.value,
            "vertex": vertex,
            "tau_u": args.tau_u,
            "tau_l": args.tau_l,
            "objective": args.objective,
        },
    )
    with use_trace(trace):
        if args.index:
            index = _load_index(args.index)
            result = pmbc_index_query(
                index, side, vertex, args.tau_u, args.tau_l
            )
            backend = "index"
        else:
            result = pmbc_online_star(
                graph, side, vertex, args.tau_u, args.tau_l,
                objective=args.objective,
            )
            backend = "online_star"
    trace.annotate(
        backend=backend,
        result=None
        if result is None
        else {"shape": list(result.shape), "edges": result.num_edges},
    )
    summary = trace.to_dict()
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(render_trace(summary))
        if result is not None:
            upper_labels, lower_labels = result.with_labels(graph)
            print()
            print("answer:")
            print(f"  upper: {', '.join(sorted(map(str, upper_labels)))}")
            print(f"  lower: {', '.join(sorted(map(str, lower_labels)))}")
    return 0 if result is not None else 1


def _cmd_topk(args: argparse.Namespace) -> int:
    from repro.core import pmbc_index_topk

    graph = _load_graph(args.graph, args.konect)
    side = args.side
    if args.label is not None:
        vertex = graph.vertex_by_label(side, args.label)
    else:
        vertex = args.vertex
    index = _load_index(args.index)
    results = pmbc_index_topk(
        index, side, vertex, args.k, args.tau_u, args.tau_l
    )
    payload = []
    for biclique in results:
        upper_labels, lower_labels = biclique.with_labels(graph)
        payload.append(
            {
                "shape": list(biclique.shape),
                "edges": biclique.num_edges,
                "upper": sorted(map(str, upper_labels)),
                "lower": sorted(map(str, lower_labels)),
            }
        )
    print(json.dumps(payload, indent=2))
    return 0 if payload else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.konect)
    print(
        f"|U|={graph.num_upper} |L|={graph.num_lower} "
        f"|E|={graph.num_edges} "
        f"max_deg_U={graph.max_degree(Side.UPPER)} "
        f"max_deg_L={graph.max_degree(Side.LOWER)}"
    )
    if args.index:
        index = _load_index(args.index)
        print(json.dumps(index.stats(), indent=2))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the paper's experiment matrix (delegates to the harness)."""
    import runpy
    import sys as _sys
    from pathlib import Path

    script = (
        Path(__file__).resolve().parents[2] / "benchmarks" / "run_experiments.py"
    )
    if not script.exists():
        print(
            "benchmarks/run_experiments.py not found (installed without "
            "the repository checkout); clone the repo to run experiments",
            file=sys.stderr,
        )
        return 2
    argv = [str(script)]
    if args.quick:
        argv.append("--quick")
    old_argv = _sys.argv
    try:
        _sys.argv = argv
        runpy.run_path(str(script), run_name="__main__")
    except SystemExit as exit_info:
        return int(exit_info.code or 0)
    finally:
        _sys.argv = old_argv
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP query-serving front-end (repro.serve)."""
    from repro.serve import (
        AsyncPMBCServer,
        PMBCServer,
        PMBCService,
        ServiceConfig,
    )

    graph = _load_graph(args.graph, args.konect)
    index = _load_index(args.index) if args.index else None
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    config = ServiceConfig(
        num_workers=args.workers,
        max_queue=args.queue_size,
        default_deadline=args.deadline if args.deadline > 0 else None,
        cache_size=args.cache_size,
        use_core_bounds=not args.no_core_bounds,
        kernel=args.kernel,
        execution=args.execution,
        exec_workers=args.exec_workers,
        adaptive=args.adaptive,
        index_budget_mb=args.index_budget_mb,
        hot_threshold=args.hot_threshold,
        adaptive_persist_path=args.adaptive_persist,
    )
    if args.shards > 1:
        # Sharded mode: N shard services behind the asyncio front-end.
        # Config knobs (workers, budget) are per shard; the adaptive
        # byte budget is divided across shards by the router.
        from repro.shard import ShardedService

        service = ShardedService(
            graph, args.shards, index=index, config=config
        ).start()
        server = AsyncPMBCServer(
            service, host=args.host, port=args.port, verbose=args.verbose
        ).start()
        shard0 = service.shards[0].service
        chain = " -> ".join(service.backend_names)
        spans = service.shard_map.spans()
        print(
            f"pmbc serve: |U|={graph.num_upper} |L|={graph.num_lower} "
            f"|E|={graph.num_edges}, backends: {chain}, "
            f"kernel: {shard0.engine.kernel}, "
            f"shards: {args.shards} x ({config.execution} "
            f"x{config.exec_workers or config.num_workers}), "
            f"spans: {spans}",
            flush=True,
        )
    else:
        service = PMBCService(graph, index=index, config=config).start()
        server = PMBCServer(
            service, host=args.host, port=args.port, verbose=args.verbose
        )
        chain = " -> ".join(service.backend_names)
        stats = service.stats()
        execution = stats["execution"]
        print(
            f"pmbc serve: |U|={graph.num_upper} |L|={graph.num_lower} "
            f"|E|={graph.num_edges}, backends: {chain}, "
            f"kernel: {stats['kernel']}, "
            f"execution: {execution['kind']} x{execution['workers']}",
            flush=True,
        )
        coverage = service.index_coverage()
        prebuilt = coverage["prebuilt"]
        if prebuilt is not None:
            print(
                f"index coverage: {prebuilt['fraction']:.1%} of "
                f"{coverage['total_vertices']} vertices prebuilt "
                f"({prebuilt['bytes']:,} bytes)",
                flush=True,
            )
        if args.adaptive:
            adaptive_cov = coverage["adaptive"]
            warmed = service.stats()["adaptive"]["warm_restored"]
            print(
                f"adaptive tier: budget {args.index_budget_mb:g} MiB, "
                f"hot threshold {args.hot_threshold:g}, "
                f"{adaptive_cov['vertices']} trees warm "
                f"({warmed} restored from "
                f"{args.adaptive_persist or 'nothing'})",
                flush=True,
            )
    print(
        f"listening on {server.url} "
        f"(endpoints: /query /query_batch /update /healthz /metrics "
        f"/stats; "
        f"Ctrl-C to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
    return 0


def _parse_update_op(token: str) -> tuple[str, int, int]:
    """Parse one ``insert:U:V`` / ``delete:U:V`` (or ``+U:V`` / ``-U:V``)."""
    if token.startswith("+"):
        action, rest = "insert", token[1:]
    elif token.startswith("-"):
        action, rest = "delete", token[1:]
    else:
        action, sep, rest = token.partition(":")
        if not sep:
            raise ValueError(f"malformed update {token!r}")
    if action not in ("insert", "delete"):
        raise ValueError(f"unknown action in {token!r}")
    parts = rest.split(":")
    if len(parts) != 2:
        raise ValueError(f"expected ACTION:U:V, got {token!r}")
    try:
        u, v = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"non-integer endpoint in {token!r}") from None
    return action, u, v


def _cmd_update(args: argparse.Namespace) -> int:
    """Apply a batch of edge updates to a running ``pmbc serve``."""
    from repro.serve import PMBCClient
    from repro.serve.service import ServeError

    ops: list[tuple[str, int, int]] = []
    try:
        for token in args.ops:
            ops.append(_parse_update_op(token))
        if args.file:
            with open(args.file, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line or line.startswith("#"):
                        continue
                    # accept "insert U V" / "insert:U:V" stream lines
                    ops.append(_parse_update_op(":".join(line.split())))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not ops:
        print("error: no updates given (ops and/or --file)", file=sys.stderr)
        return 2
    client = PMBCClient(args.url, timeout=args.timeout)
    try:
        payload = client.update(ops)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"applied {payload['applied']}/{len(ops)} "
            f"(+{payload['inserts']} -{payload['deletes']}, "
            f"{payload['noops']} no-ops) in {payload['total_ms']:.1f} ms; "
            f"cascade {payload['cascade']}, "
            f"trees repaired {payload['trees_repaired']}, "
            f"evicted {payload['evicted']}"
            + (f", shard {payload['shard']}"
               if payload.get("shard") is not None else "")
        )
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.datasets.zoo import ZOO, load_dataset

    for name, dataset_spec in ZOO.items():
        line = (
            f"{name:<14} {dataset_spec.category:<12} "
            f"target |E|={dataset_spec.num_edges:<6} "
            f"(paper: {dataset_spec.paper_edges:,})"
        )
        if args.generate or args.stats:
            graph = load_dataset(name)
            line += (
                f"  generated |U|={graph.num_upper} |L|={graph.num_lower} "
                f"|E|={graph.num_edges}"
            )
        if args.stats:
            from repro.graph.stats import graph_stats

            stats = graph_stats(load_dataset(name))
            line += (
                f"  deg_U(mean/max)={stats.upper.mean_degree:.1f}/"
                f"{stats.upper.max_degree}"
                f"  deg_L(mean/max)={stats.lower.mean_degree:.1f}/"
                f"{stats.lower.max_degree}"
                f"  hub%={100 * max(stats.upper.hub_fraction, stats.lower.hub_fraction):.0f}"
            )
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pmbc",
        description="Personalized maximum biclique search (ICDE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build and save a PMBC-Index")
    p_build.add_argument("graph", help="edge-list file")
    p_build.add_argument("-o", "--output", required=True)
    p_build.add_argument("--konect", action="store_true",
                         help="input is KONECT out.* format")
    p_build.add_argument("--no-cost-sharing", action="store_true",
                         help="use PMBC-IC instead of PMBC-IC*")
    p_build.add_argument("--binary", action="store_true",
                         help="write the compact binary format")
    p_build.set_defaults(fn=_cmd_build)

    p_query = sub.add_parser("query", help="answer a personalized query")
    p_query.add_argument("graph")
    p_query.add_argument("--konect", action="store_true")
    p_query.add_argument("--index", help="saved index (online search if omitted)")
    p_query.add_argument("--side", type=_side)
    p_query.add_argument("--vertex", type=int)
    p_query.add_argument("--label", help="query by vertex label instead of id")
    p_query.add_argument("--tau-u", type=int, default=1)
    p_query.add_argument("--tau-l", type=int, default=1)
    p_query.add_argument(
        "--objective", choices=objective_kinds(), default="pmbc",
        help="query family to maximize (default pmbc = edge count); "
             "non-pmbc objectives need the online path, not --index",
    )
    p_query.add_argument(
        "--batch-file",
        help="answer many queries from a JSON array / JSON-lines file "
             "(grouped two-hop extraction; ignores --side/--vertex)",
    )
    p_query.set_defaults(fn=_cmd_query)

    p_explain = sub.add_parser(
        "explain",
        help="trace one query and print the search report "
             "(two-hop size, rounds, prune counts)",
    )
    p_explain.add_argument(
        "graph", help="edge-list file, or a zoo name with --dataset"
    )
    p_explain.add_argument("vertex", nargs="?", type=int,
                           help="query vertex id (or use --label)")
    p_explain.add_argument("tau_u", nargs="?", type=int, default=1,
                           help="minimum upper-layer size (default 1)")
    p_explain.add_argument("tau_l", nargs="?", type=int, default=1,
                           help="minimum lower-layer size (default 1)")
    p_explain.add_argument("--side", type=_side, default=Side.UPPER,
                           help="query vertex layer (default upper)")
    p_explain.add_argument("--label",
                           help="query by vertex label instead of id")
    p_explain.add_argument("--dataset", action="store_true",
                           help="graph argument is a built-in zoo name "
                                "(see pmbc datasets)")
    p_explain.add_argument("--konect", action="store_true")
    p_explain.add_argument("--index",
                           help="trace a PMBC-IQ index lookup instead of "
                                "the online search")
    p_explain.add_argument(
        "--objective", choices=objective_kinds(), default="pmbc",
        help="query family to maximize (default pmbc = edge count)",
    )
    p_explain.add_argument("--json", action="store_true",
                           help="print the raw trace summary as JSON")
    p_explain.set_defaults(fn=_cmd_explain)

    p_topk = sub.add_parser(
        "topk", help="k largest distinct personalized groups of a vertex"
    )
    p_topk.add_argument("graph")
    p_topk.add_argument("--konect", action="store_true")
    p_topk.add_argument("--index", required=True)
    p_topk.add_argument("--side", type=_side, required=True)
    p_topk.add_argument("--vertex", type=int)
    p_topk.add_argument("--label")
    p_topk.add_argument("-k", type=int, default=3)
    p_topk.add_argument("--tau-u", type=int, default=1)
    p_topk.add_argument("--tau-l", type=int, default=1)
    p_topk.set_defaults(fn=_cmd_topk)

    p_stats = sub.add_parser("stats", help="graph / index statistics")
    p_stats.add_argument("graph")
    p_stats.add_argument("--konect", action="store_true")
    p_stats.add_argument("--index")
    p_stats.set_defaults(fn=_cmd_stats)

    p_data = sub.add_parser("datasets", help="list the dataset zoo")
    p_data.add_argument("--generate", action="store_true",
                        help="also generate each graph and report its size")
    p_data.add_argument("--stats", action="store_true",
                        help="also report degree statistics")
    p_data.set_defaults(fn=_cmd_datasets)

    p_bench = sub.add_parser(
        "bench", help="run the paper's experiment matrix"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="smallest datasets, reduced workload")
    p_bench.set_defaults(fn=_cmd_bench)

    p_update = sub.add_parser(
        "update",
        help="apply streaming edge updates to a running pmbc serve",
    )
    p_update.add_argument(
        "ops", nargs="*", metavar="OP",
        help="updates in order: insert:U:V / delete:U:V "
             "(shorthand +U:V, and -U:V after a '--' separator)")
    p_update.add_argument("--url", default="http://127.0.0.1:8642",
                          help="server base URL (default %(default)s)")
    p_update.add_argument("--file", default=None, metavar="PATH",
                          help="also read 'ACTION U V' lines from this "
                               "file ('#' comments allowed), appended "
                               "after positional ops")
    p_update.add_argument("--timeout", type=float, default=60.0,
                          help="HTTP timeout in seconds (default 60)")
    p_update.add_argument("--json", action="store_true",
                          help="print the full response payload instead "
                               "of the one-line summary")
    p_update.set_defaults(fn=_cmd_update)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP query-serving front-end"
    )
    p_serve.add_argument("graph", help="edge-list file")
    p_serve.add_argument("--konect", action="store_true")
    p_serve.add_argument("--index",
                         help="saved index to serve as the primary backend")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument("--workers", type=int, default=8,
                         help="worker thread-pool size (default 8)")
    p_serve.add_argument("--execution", choices=("thread", "process"),
                         default="thread",
                         help="where the search runs: in the worker "
                              "threads (GIL bound) or on a process pool "
                              "(real cores); see docs/execution.md")
    p_serve.add_argument("--exec-workers", type=int, default=None,
                         help="process-pool size for --execution process "
                              "(default: --workers)")
    p_serve.add_argument("--queue-size", type=int, default=64,
                         help="bounded request queue capacity (default 64)")
    p_serve.add_argument("--deadline", type=float, default=30.0,
                         help="default per-request deadline in seconds "
                              "(0 disables; default 30)")
    p_serve.add_argument("--cache-size", type=int, default=256,
                         help="two-hop LRU capacity of the shared engine")
    p_serve.add_argument("--kernel", choices=KERNEL_KINDS, default=None,
                         help="compute kernel for every search the service "
                              "runs (default: PMBC_KERNEL env or bitset); "
                              "see docs/kernel.md")
    p_serve.add_argument("--adaptive", action="store_true",
                         help="enable the traffic-adaptive partial index "
                              "(background builds for hot vertices)")
    p_serve.add_argument("--index-budget-mb", type=float, default=64.0,
                         help="memory budget for adaptive search trees "
                              "(default 64 MiB)")
    p_serve.add_argument("--hot-threshold", type=float, default=3.0,
                         help="decayed query count that promotes a vertex "
                              "to a background build (default 3)")
    p_serve.add_argument("--adaptive-persist", default=None, metavar="PATH",
                         help="persist the hot set here and re-warm from "
                              "it on restart")
    p_serve.add_argument("--shards", type=int, default=1, metavar="N",
                         help="partition the vertex space across N shard "
                              "services behind the asyncio front-end "
                              "(1 = single service behind the threaded "
                              "front-end; workers/budget flags are per "
                              "shard)")
    p_serve.add_argument("--no-core-bounds", action="store_true",
                         help="skip (α,β)-core bound precomputation")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_serve.set_defaults(fn=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except _IndexLoadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
