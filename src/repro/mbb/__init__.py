"""Maximum balanced biclique (MBB) substrate.

The second related-work variant the paper surveys (Section II): find
the largest biclique with *equally sized* layers.  NP-hard; this
package provides an exact branch-and-bound for moderate inputs plus
the classic vertex-deletion greedy heuristic used by the hardware
-oriented literature the paper cites.
"""

from repro.mbb.balanced import (
    greedy_balanced_biclique,
    maximum_balanced_biclique,
)

__all__ = [
    "maximum_balanced_biclique",
    "greedy_balanced_biclique",
]
