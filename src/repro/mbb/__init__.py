"""Maximum balanced biclique (MBB) reference substrate.

The second related-work variant the paper surveys (Section II): find
the largest biclique with *equally sized* layers.  NP-hard; this
package provides deliberately simple exact searches (global and
personalized) plus the classic vertex-deletion greedy heuristic used
by the hardware-oriented literature the paper cites.

These are the *reference* implementations the differential suite
checks the production ``"balanced"`` objective
(:mod:`repro.objectives`) against — for actual queries, pass
``objective="balanced"`` to any query surface instead.  The historical
``maximum_balanced_biclique`` / ``greedy_balanced_biclique`` entry
points are deprecated aliases.
"""

from repro.mbb.balanced import (
    balanced_biclique_reference,
    greedy_balanced_biclique,
    greedy_balanced_heuristic,
    maximum_balanced_biclique,
    personalized_balanced_reference,
)

__all__ = [
    "balanced_biclique_reference",
    "personalized_balanced_reference",
    "greedy_balanced_heuristic",
    "maximum_balanced_biclique",
    "greedy_balanced_biclique",
]
