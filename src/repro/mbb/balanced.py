"""Maximum balanced biclique: exact search and the greedy heuristic.

Exact method: a (k×k)-biclique can only live inside the (k,k)-core
(Definition 6), and the largest non-empty (δ,δ)-core bounds k ≤ δ.  We
walk k downward from δ and, per level, run the Branch&Bound substrate
on the (k,k)-core asking for any biclique with both layers ≥ k — the
first hit, trimmed to (k×k), is optimal.

Heuristic method (the vertex-deletion scheme of the defect-tolerance
literature the paper cites, refs [19]-[20]): repeatedly delete an
endpoint of some missing pair, preferring the vertex covering the most
missing pairs, until the remaining subgraph is complete; then trim the
larger layer.
"""

from __future__ import annotations

from repro.core.result import Biclique
from repro.corenum.peeling import alpha_beta_core, max_delta
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.subgraph import LocalGraph
from repro.mbc.branch_bound import BranchBoundConfig, branch_and_bound


def _core_local_graph(
    graph: BipartiteGraph, upper: set[int], lower: set[int]
) -> LocalGraph:
    upper_sorted = sorted(upper)
    lower_sorted = sorted(lower)
    lower_remap = {v: i for i, v in enumerate(lower_sorted)}
    upper_remap = {u: i for i, u in enumerate(upper_sorted)}
    adj_upper = [
        {lower_remap[v] for v in graph.neighbors(Side.UPPER, u) if v in lower}
        for u in upper_sorted
    ]
    adj_lower = [
        {upper_remap[u] for u in graph.neighbors(Side.LOWER, v) if u in upper}
        for v in lower_sorted
    ]
    return LocalGraph(
        adj_upper=adj_upper,
        adj_lower=adj_lower,
        upper_globals=upper_sorted,
        lower_globals=lower_sorted,
        upper_side=Side.UPPER,
    )


def maximum_balanced_biclique(graph: BipartiteGraph) -> Biclique | None:
    """The largest (k×k)-biclique, trimmed to balance; None if edgeless.

    Exact.  Worst-case exponential (the problem is NP-hard), intended
    for the moderate graph sizes of this repository.
    """
    delta = max_delta(graph)
    for k in range(delta, 0, -1):
        upper, lower = alpha_beta_core(graph, k, k)
        if len(upper) < k or len(lower) < k:
            continue
        local = _core_local_graph(graph, upper, lower)
        found = branch_and_bound(
            local,
            BranchBoundConfig(tau_p=k, tau_w=k),
            initial_best_size=k * k - 1,
        )
        if found is None:
            continue
        upper_ids = sorted(local.upper_globals[u] for u in found[0])[:k]
        lower_ids = sorted(local.lower_globals[v] for v in found[1])[:k]
        return Biclique(upper=frozenset(upper_ids), lower=frozenset(lower_ids))
    return None


def greedy_balanced_biclique(graph: BipartiteGraph) -> Biclique | None:
    """Vertex-deletion heuristic; fast, no optimality guarantee.

    Core-guided: for each level k from δ down, the deletion loop runs
    inside the (k,k)-core (where a (k×k)-biclique must live if one
    exists); the best balanced biclique over all levels is returned.
    """
    best: Biclique | None = None
    for k in range(max_delta(graph), 0, -1):
        if best is not None and len(best.upper) >= k:
            break  # deeper cores cannot be certified to do better
        upper, lower = alpha_beta_core(graph, k, k)
        if len(upper) < k or len(lower) < k:
            continue
        candidate = _deletion_loop(graph, set(upper), set(lower))
        if candidate is not None and (
            best is None or len(candidate.upper) > len(best.upper)
        ):
            best = candidate
    return best


def _deletion_loop(
    graph: BipartiteGraph, upper: set[int], lower: set[int]
) -> Biclique | None:
    """Delete missing-pair endpoints until the remainder is complete."""
    if not upper or not lower:
        return None
    while True:
        # Missing pairs per vertex within the current candidate sets.
        missing_upper = {
            u: len(lower - graph.neighbor_set(Side.UPPER, u)) for u in upper
        }
        missing_lower = {
            v: len(upper - graph.neighbor_set(Side.LOWER, v)) for v in lower
        }
        worst_upper = max(upper, key=lambda u: (missing_upper[u], u))
        worst_lower = max(lower, key=lambda v: (missing_lower[v], v))
        if missing_upper[worst_upper] == 0 and missing_lower[worst_lower] == 0:
            break  # complete biclique reached
        # Delete from the larger layer when possible (keeps balance),
        # otherwise the vertex covering the most missing pairs.
        if missing_upper[worst_upper] >= missing_lower[worst_lower]:
            upper.discard(worst_upper)
        else:
            lower.discard(worst_lower)
        if not upper or not lower:
            return None
    k = min(len(upper), len(lower))
    return Biclique(
        upper=frozenset(sorted(upper)[:k]),
        lower=frozenset(sorted(lower)[:k]),
    )
