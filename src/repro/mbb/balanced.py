"""Balanced-biclique reference implementations (exact, greedy, personalized).

This package is the *oracle* side of the pluggable-objective design:
the production surface for balanced queries is the ``"balanced"``
objective in :mod:`repro.objectives` (reachable from every query
entry point via ``objective="balanced"``), and the functions here are
deliberately simple level-by-level searches the differential suite
checks it against.

Exact method: a (k×k)-biclique can only live inside the (k,k)-core
(Definition 6), and the largest non-empty (δ,δ)-core bounds k ≤ δ.  We
walk k downward from δ and, per level, run the Branch&Bound substrate
on the (k,k)-core asking for any biclique with both layers ≥ k — the
first hit, trimmed to (k×k), is optimal.

Personalized method (:func:`personalized_balanced_reference`): the
same level-by-level walk, but over the query vertex's two-hop subgraph
``H_q`` with the anchor protected — the oracle for
``objective="balanced"`` personalized queries.

Heuristic method (the vertex-deletion scheme of the defect-tolerance
literature the paper cites, refs [19]-[20]): repeatedly delete an
endpoint of some missing pair, preferring the vertex covering the most
missing pairs, until the remaining subgraph is complete; then trim the
larger layer.

The historical ``maximum_balanced_biclique`` /
``greedy_balanced_biclique`` names remain as deprecated aliases.
"""

from __future__ import annotations

import warnings

from repro.core.result import Biclique
from repro.corenum.peeling import alpha_beta_core, max_delta
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.subgraph import LocalGraph
from repro.mbc.branch_bound import BranchBoundConfig, branch_and_bound


def _core_local_graph(
    graph: BipartiteGraph, upper: set[int], lower: set[int]
) -> LocalGraph:
    upper_sorted = sorted(upper)
    lower_sorted = sorted(lower)
    lower_remap = {v: i for i, v in enumerate(lower_sorted)}
    upper_remap = {u: i for i, u in enumerate(upper_sorted)}
    adj_upper = [
        {lower_remap[v] for v in graph.neighbors(Side.UPPER, u) if v in lower}
        for u in upper_sorted
    ]
    adj_lower = [
        {upper_remap[u] for u in graph.neighbors(Side.LOWER, v) if u in upper}
        for v in lower_sorted
    ]
    return LocalGraph(
        adj_upper=adj_upper,
        adj_lower=adj_lower,
        upper_globals=upper_sorted,
        lower_globals=lower_sorted,
        upper_side=Side.UPPER,
    )


def balanced_biclique_reference(graph: BipartiteGraph) -> Biclique | None:
    """The largest (k×k)-biclique, trimmed to balance; None if edgeless.

    Exact.  Worst-case exponential (the problem is NP-hard), intended
    for the moderate graph sizes of this repository.
    """
    delta = max_delta(graph)
    for k in range(delta, 0, -1):
        upper, lower = alpha_beta_core(graph, k, k)
        if len(upper) < k or len(lower) < k:
            continue
        local = _core_local_graph(graph, upper, lower)
        found = branch_and_bound(
            local,
            BranchBoundConfig(tau_p=k, tau_w=k),
            initial_best_size=k * k - 1,
        )
        if found is None:
            continue
        upper_ids = sorted(local.upper_globals[u] for u in found[0])[:k]
        lower_ids = sorted(local.lower_globals[v] for v in found[1])[:k]
        return Biclique(upper=frozenset(upper_ids), lower=frozenset(lower_ids))
    return None


def personalized_balanced_reference(
    graph: BipartiteGraph,
    side: Side,
    q: int,
    tau_u: int = 1,
    tau_l: int = 1,
) -> Biclique | None:
    """The largest balanced biclique containing ``q``, trimmed to (k×k).

    The oracle for ``objective="balanced"`` personalized queries: a
    plain level-by-level walk over ``H_q`` with no progressive
    bounding, no core-bound hooks and no kernel tricks, so the
    differential suite can check the production objective against an
    independently simple implementation.  Both layers of the answer
    have exactly ``k = min(|U|, |L|)`` vertices with
    ``k >= max(tau_u, tau_l)``; returns None when no such biclique
    contains ``q``.
    """
    from repro.core.online import extract_local

    floor = max(tau_u, tau_l, 1)
    local = extract_local(graph, side, q, "set")
    if local.num_lower == 0:
        return None
    # Every lower vertex of H_q is adjacent to q, so the left-closed
    # search (P = Γ(W)) keeps q in every enumerated biclique.
    for k in range(min(local.num_upper, local.num_lower), floor - 1, -1):
        found = branch_and_bound(
            local,
            BranchBoundConfig(
                tau_p=k, tau_w=k, protected_upper=local.q_local
            ),
            initial_best_size=k * k - 1,
            kernel="set",
        )
        if found is None:
            continue
        keep_upper = [local.q_local]
        for u in sorted(found[0]):
            if len(keep_upper) >= k:
                break
            if u != local.q_local:
                keep_upper.append(u)
        _, own, other = local.to_global(
            frozenset(keep_upper), frozenset(sorted(found[1])[:k])
        )
        if local.upper_side is Side.UPPER:
            return Biclique(upper=own, lower=other)
        return Biclique(upper=other, lower=own)
    return None


def greedy_balanced_heuristic(graph: BipartiteGraph) -> Biclique | None:
    """Vertex-deletion heuristic; fast, no optimality guarantee.

    Core-guided: for each level k from δ down, the deletion loop runs
    inside the (k,k)-core (where a (k×k)-biclique must live if one
    exists); the best balanced biclique over all levels is returned.
    """
    best: Biclique | None = None
    for k in range(max_delta(graph), 0, -1):
        if best is not None and len(best.upper) >= k:
            break  # deeper cores cannot be certified to do better
        upper, lower = alpha_beta_core(graph, k, k)
        if len(upper) < k or len(lower) < k:
            continue
        candidate = _deletion_loop(graph, set(upper), set(lower))
        if candidate is not None and (
            best is None or len(candidate.upper) > len(best.upper)
        ):
            best = candidate
    return best


def _deletion_loop(
    graph: BipartiteGraph, upper: set[int], lower: set[int]
) -> Biclique | None:
    """Delete missing-pair endpoints until the remainder is complete."""
    if not upper or not lower:
        return None
    while True:
        # Missing pairs per vertex within the current candidate sets.
        missing_upper = {
            u: len(lower - graph.neighbor_set(Side.UPPER, u)) for u in upper
        }
        missing_lower = {
            v: len(upper - graph.neighbor_set(Side.LOWER, v)) for v in lower
        }
        worst_upper = max(upper, key=lambda u: (missing_upper[u], u))
        worst_lower = max(lower, key=lambda v: (missing_lower[v], v))
        if missing_upper[worst_upper] == 0 and missing_lower[worst_lower] == 0:
            break  # complete biclique reached
        # Delete from the larger layer when possible (keeps balance),
        # otherwise the vertex covering the most missing pairs.
        if missing_upper[worst_upper] >= missing_lower[worst_lower]:
            upper.discard(worst_upper)
        else:
            lower.discard(worst_lower)
        if not upper or not lower:
            return None
    k = min(len(upper), len(lower))
    return Biclique(
        upper=frozenset(sorted(upper)[:k]),
        lower=frozenset(sorted(lower)[:k]),
    )


# ----------------------------------------------------------------------
# deprecated aliases (pre-objective entry points)


def maximum_balanced_biclique(graph: BipartiteGraph) -> Biclique | None:
    """Deprecated alias of :func:`balanced_biclique_reference`."""
    warnings.warn(
        "maximum_balanced_biclique is deprecated; use "
        "balanced_biclique_reference (or objective='balanced' on any "
        "query surface for personalized searches)",
        DeprecationWarning,
        stacklevel=2,
    )
    return balanced_biclique_reference(graph)


def greedy_balanced_biclique(graph: BipartiteGraph) -> Biclique | None:
    """Deprecated alias of :func:`greedy_balanced_heuristic`."""
    warnings.warn(
        "greedy_balanced_biclique is deprecated; use "
        "greedy_balanced_heuristic",
        DeprecationWarning,
        stacklevel=2,
    )
    return greedy_balanced_heuristic(graph)
