"""Render saved experiment results as a markdown report.

Turns the ``benchmarks/results/*.json`` files produced by
``run_experiments.py`` into the tables used in EXPERIMENTS.md, so the
document can be regenerated from a fresh run:

    python -m repro.bench.report > EXPERIMENTS_data.md
"""

from __future__ import annotations

from repro.bench.harness import load_results


def _md_table(headers: list[str], rows: list[list[object]]) -> str:
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for __ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def fig6_markdown() -> str | None:
    data = load_results("fig6_query_time")
    if data is None:
        return None
    rows = []
    for name, entry in data.items():
        ol = entry["PMBC-OL_ms"]
        iq = entry["PMBC-IQ_ms"]
        rows.append(
            [
                name,
                ol,
                entry["PMBC-OL*_ms"],
                iq,
                f"{ol / iq:.0f}x" if iq else "-",
            ]
        )
    return "### Fig 6 — mean query time (ms), τ_U = τ_L = 5\n\n" + _md_table(
        ["Dataset", "PMBC-OL", "PMBC-OL*", "PMBC-IQ", "IQ speedup"], rows
    )


def fig7_markdown() -> str | None:
    data = load_results("fig7_vary_tau")
    if data is None:
        return None
    sections = []
    taus = [2, 4, 6, 8, 10]
    for name, series in data.items():
        rows = [
            [tau] + [series[algo][i] for algo in series]
            for i, tau in enumerate(taus)
        ]
        sections.append(
            f"### Fig 7 ({name}) — query time (ms) vs τ\n\n"
            + _md_table(["τ"] + list(series), rows)
        )
    return "\n\n".join(sections)


def table3_markdown() -> str | None:
    data = load_results("table3_index_build")
    if data is None:
        return None
    rows = []
    basic = data.pop("basic_index", None)
    for name, entry in data.items():
        total = entry["tree_kb"] + entry["array_kb"]
        rows.append(
            [
                name,
                entry["IC_seconds"],
                entry["IC_star_seconds"],
                entry["graph_kb"],
                entry["tree_kb"],
                entry["array_kb"],
                total / entry["graph_kb"],
            ]
        )
    out = "### Table III — indexing time and size\n\n" + _md_table(
        ["Dataset", "IC (s)", "IC* (s)", "|G| KB", "|T| KB", "|A| KB",
         "ratio"],
        rows,
    )
    if basic:
        out += (
            f"\n\nBasic index on {basic['dataset']}: "
            f"{basic['seconds']:.2f}s, {basic['kb']:.1f} KB."
        )
    return out


def fig8_markdown() -> str | None:
    data = load_results("fig8_parallel")
    if data is None:
        return None
    threads = [1, 8, 16, 24, 32, 40, 48]
    sections = []
    for name, series in data.items():
        rows = [
            [t] + [series[key][i] for key in series]
            for i, t in enumerate(threads)
        ]
        sections.append(
            f"### Fig 8 ({name}) — speedup vs threads\n\n"
            + _md_table(["t"] + list(series), rows)
        )
    return "\n\n".join(sections)


def fig9_markdown() -> str | None:
    data = load_results("fig9_scalability")
    if data is None:
        return None
    fractions = [0.2, 0.4, 0.6, 0.8, 1.0]
    sections = []
    for name, series in data.items():
        rows = [
            [f] + [series[key][i] for key in series]
            for i, f in enumerate(fractions)
        ]
        sections.append(
            f"### Fig 9 ({name}) — build seconds vs edge fraction\n\n"
            + _md_table(["fraction"] + list(series), rows)
        )
    return "\n\n".join(sections)


def full_report() -> str:
    """Concatenate every available section (missing ones are skipped)."""
    sections = [
        section
        for section in (
            fig6_markdown(),
            fig7_markdown(),
            table3_markdown(),
            fig8_markdown(),
            fig9_markdown(),
        )
        if section is not None
    ]
    if not sections:
        return (
            "No results found — run `python benchmarks/run_experiments.py` "
            "first."
        )
    return "\n\n".join(sections)


if __name__ == "__main__":
    print(full_report())
