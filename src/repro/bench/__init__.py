"""Benchmark harness utilities.

- :mod:`~repro.bench.workloads` — the paper's query workload: a random
  sample from the highest-degree vertices;
- :mod:`~repro.bench.harness` — timing helpers and result persistence;
- :mod:`~repro.bench.tables` — paper-style table/series formatting.
"""

from repro.bench.workloads import (
    low_degree_queries,
    temporal_replay,
    top_degree_queries,
    uniform_queries,
    zipf_queries,
)
from repro.bench.harness import (
    Timed,
    save_results,
    time_callable,
)
from repro.bench.tables import format_series, format_table

__all__ = [
    "top_degree_queries",
    "uniform_queries",
    "low_degree_queries",
    "zipf_queries",
    "temporal_replay",
    "Timed",
    "time_callable",
    "save_results",
    "format_table",
    "format_series",
]
