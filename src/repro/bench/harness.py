"""Timing helpers and result persistence for the experiment harness."""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable


@dataclass
class Timed:
    """Wall-clock timing of a callable."""

    seconds: float
    result: object = None


def time_callable(fn: Callable[[], object], repeat: int = 1) -> Timed:
    """Run ``fn`` ``repeat`` times; report mean seconds and last result."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    result = None
    start = time.perf_counter()
    for __ in range(repeat):
        result = fn()
    elapsed = (time.perf_counter() - start) / repeat
    return Timed(seconds=elapsed, result=result)


def results_dir() -> Path:
    """The directory experiment outputs are written to."""
    root = Path(
        os.environ.get(
            "PMBC_RESULTS_DIR",
            Path(__file__).resolve().parents[3] / "benchmarks" / "results",
        )
    )
    root.mkdir(parents=True, exist_ok=True)
    return root


def save_results(name: str, payload: dict) -> Path:
    """Persist one experiment's output as JSON; returns the file path."""
    path = results_dir() / f"{name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def load_results(name: str) -> dict | None:
    """Load a previously saved experiment output, or None."""
    path = results_dir() / f"{name}.json"
    if not path.exists():
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
