"""Query workload generation.

Section VII-B: "In each test, we randomly select 200 query vertices
from the top-500 high degree vertices with the reported results being
the average."  At our reduced graph scale the defaults shrink
proportionally (20 queries from the top 50).
"""

from __future__ import annotations

import random

from repro.graph.bipartite import BipartiteGraph, Side


def top_degree_queries(
    graph: BipartiteGraph,
    num_queries: int = 20,
    pool_size: int = 50,
    seed: int = 0,
    side: Side | None = None,
) -> list[tuple[Side, int]]:
    """A random sample of high-degree query vertices.

    Ranks vertices by degree (both layers unless ``side`` is given),
    keeps the top ``pool_size`` and samples ``num_queries`` of them
    without replacement (all of them when the pool is smaller).
    Deterministic for a given seed.
    """
    if num_queries < 1 or pool_size < 1:
        raise ValueError("num_queries and pool_size must be >= 1")
    sides = [side] if side is not None else list(Side)
    candidates: list[tuple[int, Side, int]] = []
    for s in sides:
        for v in range(graph.num_vertices_on(s)):
            degree = graph.degree(s, v)
            if degree > 0:
                candidates.append((degree, s, v))
    candidates.sort(key=lambda item: (-item[0], item[1].value, item[2]))
    pool = [(s, v) for __, s, v in candidates[:pool_size]]
    rng = random.Random(seed)
    if len(pool) <= num_queries:
        return pool
    return rng.sample(pool, num_queries)


def uniform_queries(
    graph: BipartiteGraph,
    num_queries: int = 20,
    seed: int = 0,
    side: Side | None = None,
) -> list[tuple[Side, int]]:
    """Uniformly random non-isolated query vertices.

    The workload-sensitivity study's counterpoint to the paper's
    hub-biased sampling.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    sides = [side] if side is not None else list(Side)
    population = [
        (s, v)
        for s in sides
        for v in range(graph.num_vertices_on(s))
        if graph.degree(s, v) > 0
    ]
    rng = random.Random(seed)
    if len(population) <= num_queries:
        return population
    return rng.sample(population, num_queries)


def zipf_queries(
    graph: BipartiteGraph,
    num_queries: int = 200,
    exponent: float = 1.1,
    seed: int = 0,
    side: Side | None = None,
) -> list[tuple[Side, int]]:
    """A Zipf-skewed *stream* of query vertices (with repetition).

    Models serving traffic: vertices are ranked by degree and drawn
    with probability proportional to ``1 / rank**exponent``, so a few
    hubs dominate the stream while the tail still appears.  Unlike the
    other generators this samples **with** replacement — repeats are
    the point (they exercise caches and single-flight dedup in
    :mod:`repro.serve`).  Deterministic for a given seed.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    sides = [side] if side is not None else list(Side)
    ranked = sorted(
        (
            (-graph.degree(s, v), s.value, s, v)
            for s in sides
            for v in range(graph.num_vertices_on(s))
            if graph.degree(s, v) > 0
        ),
    )
    if not ranked:
        raise ValueError("graph has no non-isolated vertices")
    population = [(s, v) for __, __, s, v in ranked]
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(population))]
    rng = random.Random(seed)
    return rng.choices(population, weights=weights, k=num_queries)


def low_degree_queries(
    graph: BipartiteGraph,
    num_queries: int = 20,
    pool_factor: int = 3,
    seed: int = 0,
    side: Side | None = None,
) -> list[tuple[Side, int]]:
    """A random sample from the lowest-degree non-isolated vertices."""
    if num_queries < 1 or pool_factor < 1:
        raise ValueError("num_queries and pool_factor must be >= 1")
    sides = [side] if side is not None else list(Side)
    candidates = sorted(
        (
            (graph.degree(s, v), s.value, s, v)
            for s in sides
            for v in range(graph.num_vertices_on(s))
            if graph.degree(s, v) > 0
        ),
    )[: num_queries * pool_factor]
    pool = [(s, v) for __, __, s, v in candidates]
    rng = random.Random(seed)
    if len(pool) <= num_queries:
        return pool
    return rng.sample(pool, num_queries)
