"""Query workload generation.

Section VII-B: "In each test, we randomly select 200 query vertices
from the top-500 high degree vertices with the reported results being
the average."  At our reduced graph scale the defaults shrink
proportionally (20 queries from the top 50).
"""

from __future__ import annotations

import random

from repro.graph.bipartite import BipartiteGraph, Side


def top_degree_queries(
    graph: BipartiteGraph,
    num_queries: int = 20,
    pool_size: int = 50,
    seed: int = 0,
    side: Side | None = None,
) -> list[tuple[Side, int]]:
    """A random sample of high-degree query vertices.

    Ranks vertices by degree (both layers unless ``side`` is given),
    keeps the top ``pool_size`` and samples ``num_queries`` of them
    without replacement (all of them when the pool is smaller).
    Deterministic for a given seed.
    """
    if num_queries < 1 or pool_size < 1:
        raise ValueError("num_queries and pool_size must be >= 1")
    sides = [side] if side is not None else list(Side)
    candidates: list[tuple[int, Side, int]] = []
    for s in sides:
        for v in range(graph.num_vertices_on(s)):
            degree = graph.degree(s, v)
            if degree > 0:
                candidates.append((degree, s, v))
    candidates.sort(key=lambda item: (-item[0], item[1].value, item[2]))
    pool = [(s, v) for __, s, v in candidates[:pool_size]]
    rng = random.Random(seed)
    if len(pool) <= num_queries:
        return pool
    return rng.sample(pool, num_queries)


def uniform_queries(
    graph: BipartiteGraph,
    num_queries: int = 20,
    seed: int = 0,
    side: Side | None = None,
) -> list[tuple[Side, int]]:
    """Uniformly random non-isolated query vertices.

    The workload-sensitivity study's counterpoint to the paper's
    hub-biased sampling.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    sides = [side] if side is not None else list(Side)
    population = [
        (s, v)
        for s in sides
        for v in range(graph.num_vertices_on(s))
        if graph.degree(s, v) > 0
    ]
    rng = random.Random(seed)
    if len(population) <= num_queries:
        return population
    return rng.sample(population, num_queries)


def zipf_queries(
    graph: BipartiteGraph,
    num_queries: int = 200,
    exponent: float = 1.1,
    seed: int = 0,
    side: Side | None = None,
) -> list[tuple[Side, int]]:
    """A Zipf-skewed *stream* of query vertices (with repetition).

    Models serving traffic: vertices are ranked by degree and drawn
    with probability proportional to ``1 / rank**exponent``, so a few
    hubs dominate the stream while the tail still appears.  Unlike the
    other generators this samples **with** replacement — repeats are
    the point (they exercise caches and single-flight dedup in
    :mod:`repro.serve`).  Deterministic for a given seed.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    sides = [side] if side is not None else list(Side)
    ranked = sorted(
        (
            (-graph.degree(s, v), s.value, s, v)
            for s in sides
            for v in range(graph.num_vertices_on(s))
            if graph.degree(s, v) > 0
        ),
    )
    if not ranked:
        raise ValueError("graph has no non-isolated vertices")
    population = [(s, v) for __, __, s, v in ranked]
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(population))]
    rng = random.Random(seed)
    return rng.choices(population, weights=weights, k=num_queries)


def temporal_replay(
    graph: BipartiteGraph,
    num_updates: int = 500,
    delete_fraction: float = 0.45,
    rewire_fraction: float = 0.7,
    query_every: int = 0,
    query_exponent: float = 1.1,
    seed: int = 0,
) -> list[tuple[int, str, int, int]]:
    """A timestamped edge-update stream with interleaved queries.

    Models a live graph under churn: starting from ``graph``'s edge
    set, each step deletes a random live edge (probability
    ``delete_fraction``) or inserts one — preferring to *re-insert* a
    previously deleted edge (probability ``rewire_fraction``, the
    steady-state rewire churn that keeps every degree inside its
    original envelope, so the packed bit space never drifts past the
    re-pack budget) and otherwise creating a fresh edge between
    existing vertices.  With ``query_every > 0`` a Zipf-skewed query
    event is interleaved after every that many updates.

    Returns events as uniform 4-tuples, timestamped by position:

    - ``(t, "insert", u, v)`` / ``(t, "delete", u, v)`` — an edge
      update between upper vertex ``u`` and lower vertex ``v``;
    - ``(t, "query", side, vertex)`` — a personalized query against
      the graph state at time ``t`` (``side`` is a :class:`Side`).

    Deterministic for a given seed.  ``rewire_fraction=1.0`` after a
    warm-up yields a pure steady-state segment (every insert undoes an
    earlier delete), the regime where incremental maintenance must be
    re-pack free.
    """
    if num_updates < 1:
        raise ValueError("num_updates must be >= 1")
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError(f"delete_fraction must be in [0,1], got {delete_fraction}")
    if not 0.0 <= rewire_fraction <= 1.0:
        raise ValueError(f"rewire_fraction must be in [0,1], got {rewire_fraction}")
    rng = random.Random(seed)
    live_list = [
        (u, v)
        for u in range(graph.num_upper)
        for v in graph.neighbors(Side.UPPER, u)
    ]
    live = set(live_list)
    deleted: list[tuple[int, int]] = []

    def pop_live() -> tuple[int, int]:
        # O(1) uniform sample via swap-remove; live_list may hold
        # stale entries for edges re-inserted after a delete, so skip
        # anything no longer live.
        while True:
            i = rng.randrange(len(live_list))
            edge = live_list[i]
            live_list[i] = live_list[-1]
            live_list.pop()
            if edge in live:
                return edge
    queries = (
        zipf_queries(
            graph,
            num_queries=(num_updates // query_every) + 1,
            exponent=query_exponent,
            seed=seed + 1,
        )
        if query_every > 0
        else []
    )
    events: list[tuple[int, str, int, int]] = []
    next_query = iter(queries)
    for step in range(num_updates):
        if live and (not deleted or rng.random() < delete_fraction):
            edge = pop_live()
            live.discard(edge)
            deleted.append(edge)
            events.append((len(events), "delete", *edge))
        elif deleted and rng.random() < rewire_fraction:
            edge = deleted.pop(rng.randrange(len(deleted)))
            live.add(edge)
            live_list.append(edge)
            events.append((len(events), "insert", *edge))
        else:
            for __ in range(64):
                edge = (
                    rng.randrange(graph.num_upper),
                    rng.randrange(graph.num_lower),
                )
                if edge not in live:
                    break
            else:  # dense graph: fall back to rewire
                if not deleted:
                    continue
                edge = deleted.pop(rng.randrange(len(deleted)))
            live.add(edge)
            live_list.append(edge)
            if edge in deleted:
                deleted.remove(edge)
            events.append((len(events), "insert", *edge))
        if query_every > 0 and (step + 1) % query_every == 0:
            side, vertex = next(next_query)
            events.append((len(events), "query", side, vertex))
    return events


def low_degree_queries(
    graph: BipartiteGraph,
    num_queries: int = 20,
    pool_factor: int = 3,
    seed: int = 0,
    side: Side | None = None,
) -> list[tuple[Side, int]]:
    """A random sample from the lowest-degree non-isolated vertices."""
    if num_queries < 1 or pool_factor < 1:
        raise ValueError("num_queries and pool_factor must be >= 1")
    sides = [side] if side is not None else list(Side)
    candidates = sorted(
        (
            (graph.degree(s, v), s.value, s, v)
            for s in sides
            for v in range(graph.num_vertices_on(s))
            if graph.degree(s, v) > 0
        ),
    )[: num_queries * pool_factor]
    pool = [(s, v) for __, __, s, v in candidates]
    rng = random.Random(seed)
    if len(pool) <= num_queries:
        return pool
    return rng.sample(pool, num_queries)
