"""Paper-style table and series formatting.

The benchmark harness prints each reproduced table/figure as plain text
rows matching the layout of Section VII, so paper-vs-measured
comparisons are a diff away.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """A fixed-width text table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """A figure rendered as one row per x value, one column per series."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)
