"""The shard router: scatter/gather serving over N shard workers.

:class:`ShardedService` fronts ``num_shards`` independent
:class:`~repro.serve.service.PMBCService` instances — one per shard —
behind the :class:`~repro.serve.service.PMBCService` request surface
(``admit`` / ``query`` / ``admit_batch`` / ``query_batch`` / ``stats``
/ ``healthy``), so the HTTP front-ends drive either interchangeably.

Every query is rooted at one vertex, so routing is the
:class:`~repro.shard.partition.ShardMap` ownership rule: single
queries go to the owning shard, and a batch is split into per-shard
sub-batches (each preserving the positions of its requests) that are
admitted concurrently and gathered back into one in-order
:class:`~repro.serve.service.BatchResult`.  Because batch grouping by
query vertex happens *inside* each shard's service, the split costs
nothing extra: a vertex's requests all land on one shard, so shared
two-hop extractions are still paid once.

Failure semantics: every shard holds the full graph (two-hop
subgraphs cross shard boundaries, so the graph cannot be split — what
a shard *owns* is the warm state for its vertices: engine LRU entries,
hot set, adaptive trees, index tier).  A down shard therefore degrades
performance, not availability — its queries reroute to the next
healthy shard (answered cold, marked ``degraded=True``) and only when
*no* shard is healthy does admission fail with
:class:`~repro.serve.service.ServiceClosedError`.

The router keeps its own :class:`~repro.serve.metrics.MetricsRegistry`
(``pmbc_shard_*``); each shard's service keeps per-shard internals in
its own registry, surfaced via ``stats()["per_shard"]``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace

from repro.core.index import PMBCIndex
from repro.core.query import QueryRequest
from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import BipartiteGraph, Side
from repro.obs.trace import stitch_summaries
from repro.serve.metrics import MetricsRegistry
from repro.serve.service import (
    BatchResult,
    DeadlineExceededError,
    InvalidRequestError,
    PMBCService,
    QueryResult,
    ServiceClosedError,
    ServiceConfig,
    Submission,
    UpdateResult,
)
from repro.shard.partition import ShardMap

__all__ = ["ShardWorker", "ShardedService"]


@dataclass
class ShardWorker:
    """One shard: an id, its vertex span, and its backing service."""

    shard_id: int
    span: tuple[int, int]
    service: PMBCService

    def healthy(self) -> bool:
        """True while the shard's service accepts requests."""
        return self.service.healthy()

    @property
    def num_owned(self) -> int:
        """How many vertices this shard owns."""
        return self.span[1] - self.span[0]


class _CombinedTraceRing:
    """A read-only union view over every shard's trace ring."""

    def __init__(self, workers: list[ShardWorker]) -> None:
        self._workers = workers

    @property
    def capacity(self) -> int:
        return sum(w.service.traces.capacity for w in self._workers)

    @property
    def total_recorded(self) -> int:
        return sum(w.service.traces.total_recorded for w in self._workers)

    def __len__(self) -> int:
        return sum(len(w.service.traces) for w in self._workers)

    def snapshot(self, limit: int | None = None) -> list[dict]:
        entries: list[dict] = []
        for worker in self._workers:
            entries.extend(worker.service.traces.snapshot(limit=limit))
        if limit is not None and limit >= 0:
            entries = entries[:limit]
        return entries

    def find(self, trace_id: str) -> dict | None:
        for worker in self._workers:
            found = worker.service.traces.find(trace_id)
            if found is not None:
                return found
        return None


class ShardedService:
    """Vertex-partitioned serving behind the ``PMBCService`` surface.

    Parameters
    ----------
    graph:
        The bipartite graph; every shard serves the full graph (see
        the module docstring for why), owning the warm state for its
        vertex range.
    num_shards:
        How many shard workers to run (>= 1).
    index:
        Optional prebuilt :class:`PMBCIndex`, shared read-only by
        every shard's index tier.
    config:
        The *per-shard* :class:`ServiceConfig` template —
        ``num_workers``/``exec_workers`` are per shard.  Two knobs are
        adjusted per shard: the adaptive ``index_budget_mb`` is divided
        evenly across shards (each shard budgets its own hot set), and
        ``adaptive_persist_path`` gets a ``.shard<i>`` suffix so
        snapshots never collide.
    metrics:
        Optional registry for the router's ``pmbc_shard_*`` series.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        num_shards: int,
        index: PMBCIndex | None = None,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.graph = graph
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self.shard_map = ShardMap.for_graph(graph, num_shards)
        # Core bounds are a whole-graph precomputation; do it once and
        # hand the same object to every shard instead of N times over.
        bounds = (
            compute_bounds(graph) if self.config.use_core_bounds else None
        )
        self._workers: list[ShardWorker] = []
        for shard_id in range(num_shards):
            shard_config = self._shard_config(shard_id, num_shards)
            service = PMBCService(
                graph, index=index, config=shard_config, bounds=bounds
            )
            self._workers.append(
                ShardWorker(
                    shard_id=shard_id,
                    span=self.shard_map.span(shard_id),
                    service=service,
                )
            )
        self.traces = _CombinedTraceRing(self._workers)
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._update_lock = threading.Lock()
        self._update_state_shared = False
        self._started_at = time.monotonic()
        self._init_metrics()

    def _shard_config(self, shard_id: int, num_shards: int) -> ServiceConfig:
        changes: dict = {}
        if self.config.adaptive:
            changes["index_budget_mb"] = (
                self.config.index_budget_mb / num_shards
            )
            if self.config.adaptive_persist_path:
                changes["adaptive_persist_path"] = (
                    f"{self.config.adaptive_persist_path}.shard{shard_id}"
                )
        return replace(self.config, **changes) if changes else self.config

    def _init_metrics(self) -> None:
        m = self.metrics
        self._shard_requests = m.counter(
            "pmbc_shard_requests_total",
            "Single queries routed, by answering shard.",
        )
        self._shard_degraded = m.counter(
            "pmbc_shard_degraded_total",
            "Requests rerouted because the owning shard was down.",
        )
        self._shard_batches = m.counter(
            "pmbc_shard_batches_total", "Batches admitted by the router."
        )
        self._batch_splits = m.histogram(
            "pmbc_shard_batch_splits",
            "Sub-batches per scattered batch.",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self._shard_latency = m.histogram(
            "pmbc_shard_request_latency_seconds",
            "End-to-end latency of router-served requests.",
        )
        self._shard_updates = m.counter(
            "pmbc_shard_updates_total",
            "Effective edge updates, by applying shard.",
        )
        self._shard_update_batches = m.counter(
            "pmbc_shard_update_batches_total",
            "Update batches routed by the router.",
        )
        self._shard_update_cross = m.counter(
            "pmbc_shard_update_cross_total",
            "Updated edges whose endpoints are owned by different shards.",
        )
        m.gauge(
            "pmbc_shards", "Configured shard count."
        ).set_function(lambda: len(self._workers))
        m.gauge(
            "pmbc_shards_up", "Shards currently accepting requests."
        ).set_function(
            lambda: sum(1 for w in self._workers if w.healthy())
        )

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> ShardedService:
        """Start every shard's worker pool (idempotent)."""
        with self._lifecycle_lock:
            if self._closed:
                raise ServiceClosedError("sharded service already closed")
        for worker in self._workers:
            worker.service.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Close every shard's service."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            worker.service.close(wait=wait)

    def __enter__(self) -> ShardedService:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun."""
        return self._closed

    def healthy(self) -> bool:
        """True while at least one shard accepts requests."""
        return not self._closed and any(w.healthy() for w in self._workers)

    @property
    def shards(self) -> tuple[ShardWorker, ...]:
        """The shard workers, in shard order."""
        return tuple(self._workers)

    @property
    def backend_names(self) -> tuple[str, ...]:
        """Backend chain of shard 0 (identical across shards)."""
        return self._workers[0].service.backend_names

    # ------------------------------------------------------------------
    # routing

    def _owner(self, side: Side, vertex: int) -> int:
        try:
            return self.shard_map.shard_of(side, vertex)
        except ValueError as exc:
            raise InvalidRequestError(str(exc)) from None

    def _healthy_worker(self, owner: int) -> tuple[ShardWorker, bool]:
        """The owning shard, or the next healthy one (degraded)."""
        n = len(self._workers)
        for offset in range(n):
            worker = self._workers[(owner + offset) % n]
            if worker.healthy():
                return worker, offset > 0
        raise ServiceClosedError("no healthy shard")

    @staticmethod
    def _tag(
        inner: Future, shard: int, degraded: bool, observe=None
    ) -> Future:
        """An outer future carrying ``shard``/``degraded`` metadata."""
        outer: Future = Future()

        def _copy(done: Future) -> None:
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
                return
            result = replace(
                done.result(), shard=shard, degraded=degraded
            )
            if observe is not None:
                observe(result)
            outer.set_result(result)

        inner.add_done_callback(_copy)
        return outer

    def admit(
        self,
        side: Side | QueryRequest,
        vertex: int | None = None,
        tau_u: int = 1,
        tau_l: int = 1,
        deadline: float | None = None,
        explain: bool = False,
    ) -> Submission:
        """Route one request to its owning shard and admit it there.

        Mirrors :meth:`PMBCService.admit`; the resulting
        :class:`QueryResult` additionally carries the answering
        :attr:`~repro.serve.service.QueryResult.shard` and whether the
        request was
        :attr:`~repro.serve.service.QueryResult.degraded`-rerouted.
        """
        if self._closed:
            raise ServiceClosedError("sharded service is closed")
        if isinstance(side, QueryRequest):
            route_side, route_vertex = side.side, side.vertex
        else:
            if not isinstance(side, Side):
                raise InvalidRequestError(
                    f"side must be a Side, got {side!r}"
                )
            if vertex is None:
                raise InvalidRequestError("query vertex is required")
            route_side, route_vertex = side, vertex
        owner = self._owner(route_side, route_vertex)
        degraded = False
        last_error: Exception = ServiceClosedError("no healthy shard")
        for __ in range(len(self._workers)):
            worker, rerouted = self._healthy_worker(owner)
            degraded = degraded or rerouted
            try:
                inner = worker.service.admit(
                    side, vertex, tau_u, tau_l, deadline, explain
                )
            except ServiceClosedError as exc:
                # Lost the race with a concurrent shard shutdown; skip
                # this worker and retry from the next candidate.
                last_error = exc
                owner = (worker.shard_id + 1) % len(self._workers)
                degraded = True
                continue
            self._shard_requests.inc(shard=str(worker.shard_id))
            if degraded:
                self._shard_degraded.inc(shard=str(worker.shard_id))
            outer = self._tag(
                inner.future,
                worker.shard_id,
                degraded,
                observe=lambda r: self._shard_latency.observe(
                    r.total_seconds
                ),
            )
            return Submission(
                future=outer, budget=inner.budget, _expire=inner.expire
            )
        raise last_error

    def submit(
        self,
        side: Side | QueryRequest,
        vertex: int | None = None,
        tau_u: int = 1,
        tau_l: int = 1,
        deadline: float | None = None,
        explain: bool = False,
    ) -> Future:
        """Admit a routed request; the Future resolves to its result."""
        return self.admit(
            side, vertex, tau_u, tau_l, deadline, explain
        ).future

    def query(
        self,
        side: Side | QueryRequest,
        vertex: int | None = None,
        tau_u: int = 1,
        tau_l: int = 1,
        deadline: float | None = None,
        explain: bool = False,
    ) -> QueryResult:
        """Admit a routed request and block for its answer."""
        submission = self.admit(side, vertex, tau_u, tau_l, deadline, explain)
        return _settle_blocking(submission)

    # ------------------------------------------------------------------
    # batch scatter/gather

    def admit_batch(
        self,
        requests,
        deadline: float | None = None,
        explain: bool = False,
    ) -> Submission:
        """Scatter a batch across owning shards; gather one result.

        The batch is split into at most one sub-batch per shard; each
        sub-batch occupies one queue slot on its shard and is grouped
        by query vertex there, so the scatter preserves the
        single-process batch plan (a vertex's requests always share a
        shard).  Answers come back in request order.  If a sub-batch
        admission fails (queue full, closed), the whole call raises —
        already-admitted sub-batches finish in the background and warm
        their shards' caches.
        """
        if self._closed:
            raise ServiceClosedError("sharded service is closed")
        try:
            coerced = [QueryRequest.of(raw) for raw in requests]
        except (TypeError, ValueError) as exc:
            raise InvalidRequestError(str(exc)) from None
        if not coerced:
            raise InvalidRequestError("batch must contain >= 1 request")

        # Group request positions by healthy owning shard.
        groups: dict[int, tuple[ShardWorker, list[int], bool]] = {}
        any_degraded = False
        for position, request in enumerate(coerced):
            owner = self._owner(request.side, request.vertex)
            worker, rerouted = self._healthy_worker(owner)
            any_degraded = any_degraded or rerouted
            entry = groups.get(worker.shard_id)
            if entry is None:
                entry = (worker, [], rerouted)
                groups[worker.shard_id] = entry
            entry[1].append(position)
            if rerouted:
                groups[worker.shard_id] = (entry[0], entry[1], True)

        inner: list[tuple[ShardWorker, list[int], Submission]] = []
        for shard_id in sorted(groups):
            worker, positions, rerouted = groups[shard_id]
            sub_requests = [coerced[p] for p in positions]
            submission = worker.service.admit_batch(
                sub_requests, deadline=deadline, explain=explain
            )
            self._shard_requests.inc(
                len(positions), shard=str(worker.shard_id)
            )
            if rerouted:
                self._shard_degraded.inc(
                    len(positions), shard=str(worker.shard_id)
                )
            inner.append((worker, positions, submission))
        self._shard_batches.inc()
        self._batch_splits.observe(len(inner))

        outer = self._gather(coerced, inner, any_degraded)
        budget = inner[0][2].budget

        def _expire() -> bool:
            won = False
            for __, __positions, submission in inner:
                won = submission.expire() or won
            return won

        return Submission(future=outer, budget=budget, _expire=_expire)

    def _gather(
        self,
        coerced: list[QueryRequest],
        inner: list[tuple[ShardWorker, list[int], Submission]],
        degraded: bool,
    ) -> Future:
        """Merge sub-batch futures into one in-order batch future."""
        outer: Future = Future()
        lock = threading.Lock()
        slots: list = [None] * len(coerced)
        sub_results: dict[int, BatchResult] = {}
        pending = {len(inner): None}  # mutable countdown cell

        def _one_done(shard_id: int, positions: list[int], done: Future):
            with lock:
                if outer.done():
                    return
                error = done.exception()
                if error is not None:
                    outer.set_exception(error)
                    return
                result: BatchResult = done.result()
                sub_results[shard_id] = result
                for slot, answer in zip(positions, result.bicliques):
                    slots[slot] = answer
                (remaining,) = pending
                pending.clear()
                if remaining > 1:
                    pending[remaining - 1] = None
                    return
            outer.set_result(self._merge(slots, sub_results, degraded))

        for worker, positions, submission in inner:
            submission.future.add_done_callback(
                lambda f, s=worker.shard_id, p=positions: _one_done(s, p, f)
            )
        return outer

    def _merge(
        self,
        slots: list,
        sub_results: dict[int, BatchResult],
        degraded: bool,
    ) -> BatchResult:
        parts = sub_results.values()
        backends = {part.backend for part in parts}
        traces = [part.trace for part in parts if part.trace is not None]
        stitched = None
        if traces:
            stitched = stitch_summaries(
                traces,
                kind="sharded_batch",
                shards=sorted(sub_results),
                backend="mixed" if len(backends) > 1 else backends.copy().pop(),
            )
        merged = BatchResult(
            bicliques=tuple(slots),
            backend=backends.pop() if len(backends) == 1 else "mixed",
            queue_seconds=max(p.queue_seconds for p in parts),
            total_seconds=max(p.total_seconds for p in parts),
            trace=stitched,
            shard=next(iter(sub_results)) if len(sub_results) == 1 else None,
            degraded=degraded,
        )
        self._shard_latency.observe(merged.total_seconds)
        return merged

    def submit_batch(
        self,
        requests,
        deadline: float | None = None,
        explain: bool = False,
    ) -> Future:
        """Scatter a batch; the Future resolves to a merged result."""
        return self.admit_batch(requests, deadline, explain).future

    def query_batch(
        self,
        requests,
        deadline: float | None = None,
        explain: bool = False,
    ) -> BatchResult:
        """Scatter a batch and block for the merged in-order answers."""
        submission = self.admit_batch(requests, deadline, explain)
        return _settle_blocking(submission)

    # ------------------------------------------------------------------
    # streaming updates

    def _ensure_shared_update_state(self) -> None:
        """Make every shard share ONE update state (caller holds lock).

        The bounds object is already shared (computed once in the
        constructor), so per-shard incremental maintainers would
        corrupt it: a maintainer's internal sweep family must observe
        *every* applied update, not just the ones routed to its shard.
        Shard 0's service builds the state lazily; the same maintainer
        / packed adjacency / mirror / lock objects are then attached to
        every other shard, so whichever shard applies a batch advances
        the one true state.
        """
        if self._update_state_shared:
            return
        first = self._workers[0].service
        with first._update_lock:
            first._ensure_updater()
        for worker in self._workers[1:]:
            service = worker.service
            service._updater = first._updater
            service._dynadj = first._dynadj
            service._mirror = first._mirror
            service._update_lock = first._update_lock
        self._update_state_shared = True

    def _owner_or_default(self, side: Side, vertex: int) -> int:
        """The owning shard, or shard 0 for ids beyond the shard map.

        Growth inserts reference vertex ids the (construction-time)
        shard map has never seen; they are applied through shard 0
        until a re-shard.
        """
        try:
            return self.shard_map.shard_of(side, vertex)
        except ValueError:
            return 0

    def update_batch(self, updates) -> UpdateResult:
        """Apply edge updates across the sharded deployment.

        Each update is routed to the shard owning its upper endpoint
        (cross-shard edges — endpoints owned by different shards — are
        counted in ``pmbc_shard_update_cross_total``; their warm-state
        invalidation reaches both owners because *every* shard adopts
        each applied group).  The applying shard repairs the shared
        bounds, mounted index and packed adjacency exactly once
        (:meth:`PMBCService.update_batch`); the remaining shards then
        :meth:`~PMBCService.adopt_update` the new snapshot — a graph
        swap plus scoped eviction of their own engine-cache and
        partial-index entries, with no repeated repair work.  Returns
        one merged :class:`UpdateResult` (``shard`` set when a single
        shard applied the whole batch).
        """
        if self._closed:
            raise ServiceClosedError("sharded service is closed")
        start = time.monotonic()
        ops = self._workers[0].service._coerce_updates(updates)
        groups: dict[int, list[tuple[str, int, int]]] = {}
        cross = 0
        for action, u, v in ops:
            owner = self._owner_or_default(Side.UPPER, u)
            if owner != self._owner_or_default(Side.LOWER, v):
                cross += 1
            groups.setdefault(owner, []).append((action, u, v))
        applied = noops = inserts = deletes = 0
        trees = evicted = cascade = 0
        applied_shards: set[int] = set()
        with self._update_lock:
            self._ensure_shared_update_state()
            for shard_id in sorted(groups):
                worker, __ = self._healthy_worker(shard_id)
                result = worker.service.update_batch(groups[shard_id])
                applied += result.applied
                noops += result.noops
                inserts += result.inserts
                deletes += result.deletes
                trees += result.trees_repaired
                evicted += result.evicted
                cascade += result.cascade
                if result.applied:
                    applied_shards.add(worker.shard_id)
                    self._shard_updates.inc(
                        result.applied, shard=str(worker.shard_id)
                    )
                    graph = worker.service.graph
                    affected = worker.service.last_update_affected
                    for other in self._workers:
                        if other is worker:
                            continue
                        evicted += other.service.adopt_update(
                            graph, affected
                        )
                    self.graph = graph
        self._shard_update_batches.inc()
        if cross:
            self._shard_update_cross.inc(cross)
        return UpdateResult(
            applied=applied,
            noops=noops,
            inserts=inserts,
            deletes=deletes,
            trees_repaired=trees,
            evicted=evicted,
            cascade=cascade,
            seconds=time.monotonic() - start,
            shard=applied_shards.pop() if len(applied_shards) == 1 else None,
        )

    # ------------------------------------------------------------------
    # introspection

    def stats(self) -> dict:
        """A JSON-friendly router + per-shard snapshot for ``/stats``."""
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "healthy": self.healthy(),
            "sharding": {
                **self.shard_map.to_json(),
                "healthy": [w.healthy() for w in self._workers],
                "requests": {
                    str(w.shard_id): self._shard_requests.value(
                        shard=str(w.shard_id)
                    )
                    for w in self._workers
                },
                "degraded": self._shard_degraded.total(),
                "batches": self._shard_batches.total(),
                "batch_splits_mean": self._batch_splits.mean(),
                "updates": {
                    "batches": int(self._shard_update_batches.total()),
                    "applied": {
                        str(w.shard_id): int(
                            self._shard_updates.value(shard=str(w.shard_id))
                        )
                        for w in self._workers
                    },
                    "cross_shard_edges": int(
                        self._shard_update_cross.total()
                    ),
                },
            },
            "latency_seconds": {
                "count": self._shard_latency.count,
                "mean": self._shard_latency.mean(),
                **self._shard_latency.percentiles(),
            },
            "per_shard": [w.service.stats() for w in self._workers],
        }


def _settle_blocking(submission: Submission) -> QueryResult | BatchResult:
    """Block on a submission, running the expiry race on timeout."""
    try:
        return submission.future.result(timeout=submission.budget)
    except FutureTimeoutError:
        if submission.expire():
            raise DeadlineExceededError(
                f"no answer within {submission.budget}s"
            ) from None
        return submission.future.result()
