"""repro.shard — vertex-partitioned serving across worker shards.

The paper's index is *per-vertex decomposable*: every query is rooted
at one vertex and answered from that vertex's search tree, so the
vertex space partitions cleanly across N shard workers.  Each shard
owns the packed adjacency, core bounds, and partial/full index tier
for its vertex range — queries for a vertex land on the shard whose
caches, hot set, and adaptive trees already know it.

- :class:`~repro.shard.partition.ShardMap` — the deterministic
  contiguous-range partitioning rule over the combined
  (upper then lower) vertex space;
- :class:`~repro.shard.router.ShardedService` — the scatter/gather
  router: one :class:`~repro.serve.service.PMBCService` per shard,
  single queries routed to the owning shard, batches split
  shard-aware and merged back in order, degraded rerouting around a
  down shard, and ``pmbc_shard_*`` metrics;
- :class:`~repro.serve.aserver.AsyncPMBCServer` (in
  :mod:`repro.serve`) — the asyncio front-end that multiplexes many
  open connections onto a sharded (or plain) service.

See docs/sharding.md for the design and failure semantics.
"""

from repro.shard.partition import ShardMap
from repro.shard.router import ShardedService, ShardWorker

__all__ = [
    "ShardMap",
    "ShardedService",
    "ShardWorker",
]
