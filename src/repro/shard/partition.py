"""The partitioning rule: which shard owns which query vertex.

A :class:`ShardMap` deterministically assigns every vertex of a
bipartite graph to exactly one of ``num_shards`` shards.  Vertices are
laid out on a single combined axis — upper vertices first (global ids
``0 .. num_upper-1``), then lower vertices (``num_upper ..
num_upper+num_lower-1``), the same order the packed CSR adjacency and
the index serializer use — and the axis is cut into ``num_shards``
contiguous ranges of near-equal size (the first ``total % num_shards``
ranges hold one extra vertex).

Contiguity is what makes the rule cheap and auditable: ownership is a
single integer division, a shard's span survives relabeling because it
is defined over post-relabel dense ids, and with more shards than
vertices the trailing shards own empty ranges (legal — the router
simply never routes to them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.bipartite import BipartiteGraph, Side

__all__ = ["ShardMap"]


@dataclass(frozen=True)
class ShardMap:
    """Deterministic contiguous-range vertex → shard assignment.

    Attributes
    ----------
    num_shards:
        How many shards the vertex space is cut into (>= 1).
    num_upper / num_lower:
        The graph shape the map was built for; guards against applying
        a map to a differently shaped graph after reload.
    """

    num_shards: int
    num_upper: int
    num_lower: int

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.num_upper < 0 or self.num_lower < 0:
            raise ValueError("vertex counts must be non-negative")

    @classmethod
    def for_graph(cls, graph: BipartiteGraph, num_shards: int) -> ShardMap:
        """The map partitioning ``graph``'s vertices into ``num_shards``."""
        return cls(
            num_shards=num_shards,
            num_upper=graph.num_upper,
            num_lower=graph.num_lower,
        )

    @property
    def total_vertices(self) -> int:
        """Size of the combined (upper + lower) vertex axis."""
        return self.num_upper + self.num_lower

    def global_id(self, side: Side, vertex: int) -> int:
        """Position of ``(side, vertex)`` on the combined axis."""
        if not 0 <= vertex < (
            self.num_upper if side is Side.UPPER else self.num_lower
        ):
            raise ValueError(
                f"vertex {vertex} out of range for the {side.value} layer"
            )
        return vertex if side is Side.UPPER else self.num_upper + vertex

    def shard_of(self, side: Side, vertex: int) -> int:
        """The shard owning ``(side, vertex)``."""
        gid = self.global_id(side, vertex)
        total = self.total_vertices
        base, extra = divmod(total, self.num_shards)
        # The first `extra` shards own (base + 1) vertices each.
        boundary = extra * (base + 1)
        if gid < boundary:
            return gid // (base + 1)
        if base == 0:
            # More shards than vertices: everything past the boundary
            # is unreachable, but guard the division anyway.
            return extra
        return extra + (gid - boundary) // base

    def span(self, shard: int) -> tuple[int, int]:
        """Half-open global-id range ``[start, stop)`` owned by ``shard``.

        Empty shards (possible when ``num_shards > total_vertices``)
        answer ``start == stop``.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        base, extra = divmod(self.total_vertices, self.num_shards)
        if shard < extra:
            start = shard * (base + 1)
            return start, start + base + 1
        start = extra * (base + 1) + (shard - extra) * base
        return start, start + base

    def spans(self) -> list[tuple[int, int]]:
        """Every shard's ``[start, stop)`` span, in shard order."""
        return [self.span(shard) for shard in range(self.num_shards)]

    def owned(self, shard: int) -> list[tuple[Side, int]]:
        """The ``(side, vertex)`` pairs ``shard`` owns, in axis order."""
        start, stop = self.span(shard)
        pairs = []
        for gid in range(start, stop):
            if gid < self.num_upper:
                pairs.append((Side.UPPER, gid))
            else:
                pairs.append((Side.LOWER, gid - self.num_upper))
        return pairs

    def to_json(self) -> dict:
        """A JSON-friendly description (used by ``/stats``)."""
        return {
            "num_shards": self.num_shards,
            "num_upper": self.num_upper,
            "num_lower": self.num_lower,
            "spans": [list(span) for span in self.spans()],
        }
