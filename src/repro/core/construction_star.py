"""PMBC-IC* (Algorithm 4): index construction with cost-sharing.

Identical to PMBC-IC except that a :class:`~repro.core.skyline.SkylineIndex`
is threaded through the per-vertex builds: every stored personalized
maximum biclique is registered with each of its member vertices, and
later searches for those vertices start from the best registered
biclique satisfying their constraints (Lemma 7).  Queries for different
vertices frequently share one personalized maximum biclique, so later
search trees are often seeded with their exact answer and the
branch-and-bound terminates immediately.
"""

from __future__ import annotations

from repro.core.construction import _build
from repro.corenum.bounds import CoreBounds
from repro.graph.bipartite import BipartiteGraph


def build_index_star(
    graph: BipartiteGraph,
    bounds: CoreBounds | None = None,
    use_core_bounds: bool = True,
    instrument: bool = False,
    kernel: str | None = None,
):
    """PMBC-IC*: build the index with skyline cost-sharing.

    Returns the index, or ``(index, stats)`` when ``instrument`` is
    set; ``stats.skyline_seed_hits`` counts how often a previously
    computed biclique seeded a search.  ``kernel`` picks the compute
    kernel for the per-node searches.
    """
    index, stats = _build(
        graph,
        use_skyline=True,
        bounds=bounds,
        use_core_bounds=use_core_bounds,
        instrument=instrument,
        kernel=kernel,
    )
    return (index, stats) if instrument else index
