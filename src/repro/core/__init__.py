"""The paper's primary contribution: personalized maximum biclique search.

Public surface:

- :func:`~repro.core.online.pmbc_online` — PMBC-OL (Algorithm 1);
- :func:`~repro.core.online.pmbc_online_star` — PMBC-OL* (Algorithm 5);
- :class:`~repro.core.index.PMBCIndex` — the PMBC-Index (forest ``T`` +
  biclique array ``A``) with save/load;
- :func:`~repro.core.query.pmbc_index_query` — PMBC-IQ (Algorithm 2);
- :func:`~repro.core.construction.build_index` — PMBC-IC (Algorithm 3);
- :func:`~repro.core.construction_star.build_index_star` — PMBC-IC*
  (Algorithm 4, skyline cost-sharing);
- :mod:`~repro.core.parallel` — Algorithm 6 (parallel construction) and
  the dynamic-scheduling speedup model for Fig 8;
- :class:`~repro.core.naive_index.NaiveIndex` — the basic index
  baseline of Section IV.
"""

from repro.core.result import Biclique
from repro.core.online import (
    pmbc_online,
    pmbc_online_batch,
    pmbc_online_local,
    pmbc_online_star,
)
from repro.core.index import BicliqueArray, PMBCIndex, SearchTree, SearchTreeNode
from repro.core.query import (
    QueryRequest,
    as_request,
    pmbc_index_query,
    pmbc_index_topk,
)
from repro.core.engine import CacheStats, PMBCQueryEngine
from repro.core.construction import BuildStats, build_index, build_search_tree
from repro.core.construction_star import build_index_star
from repro.core.naive_index import NaiveIndex, NaiveIndexTimeout, build_naive_index
from repro.core.skyline import SkylineIndex
from repro.core.dynamic import DynamicPMBCIndex
from repro.core.serialize import (
    load_binary,
    read_binary,
    save_binary,
    write_binary,
)
from repro.core.verify import AnswerCheck, check_personalized_answer
from repro.core.parallel import (
    ScheduleResult,
    build_index_parallel,
    measure_task_costs,
    simulate_parallel_schedule,
)

__all__ = [
    "Biclique",
    "QueryRequest",
    "as_request",
    "pmbc_online",
    "pmbc_online_batch",
    "pmbc_online_local",
    "pmbc_online_star",
    "PMBCIndex",
    "SearchTree",
    "SearchTreeNode",
    "BicliqueArray",
    "pmbc_index_query",
    "pmbc_index_topk",
    "PMBCQueryEngine",
    "CacheStats",
    "build_index",
    "build_index_star",
    "build_search_tree",
    "BuildStats",
    "NaiveIndex",
    "NaiveIndexTimeout",
    "build_naive_index",
    "SkylineIndex",
    "DynamicPMBCIndex",
    "save_binary",
    "load_binary",
    "write_binary",
    "read_binary",
    "AnswerCheck",
    "check_personalized_answer",
    "build_index_parallel",
    "simulate_parallel_schedule",
    "measure_task_costs",
    "ScheduleResult",
]
