"""Dynamic maintenance of the PMBC-Index (the paper's future work).

Section VIII closes with: "solutions for solving this problem under a
dynamic environment is an interesting research direction for future
studies."  This module implements the natural affected-set maintenance
scheme on top of the static constructors:

- An edge ``(u, v)`` only influences the answer of a query vertex ``x``
  when the edge lies inside ``x``'s two-hop subgraph *and* can
  participate in an ``x``-containing biclique — which requires ``x`` to
  be adjacent to the endpoint on the opposite layer.  Hence the
  **affected set** of an update is ``N(v) ∪ {u}`` on the upper layer
  and ``N(u) ∪ {v}`` on the lower layer (neighborhoods taken *after*
  an insertion and *before* a deletion), and only those vertices'
  search trees need rebuilding.
- The (α,β)-core bounds are global pruning structures; they are
  maintained **incrementally** by
  :class:`~repro.corenum.incremental.IncrementalCoreBounds` — a bounded
  peeling cascade per update instead of a from-scratch ``O(δ·m)``
  recomputation — and stay *exact* at every point.
- For packed kernels the adjacency is additionally mirrored in a
  :class:`~repro.kernel.DynamicPackedAdjacency`, so affected trees are
  rebuilt by fused extraction from live patched bit rows — no ``O(m)``
  graph snapshot per update batch.
- Deleted edges can strand biclique instances in the array ``A``;
  they become unreachable (every tree referencing a broken biclique is
  in the affected set) and :meth:`DynamicPMBCIndex.compact` garbage
  collects them — automatically every ``compact_every`` deletions when
  that knob is set.

Rebuilding a tree costs the same as during construction —
``O(deg(x) · TC(PMBC-OL*))`` — so an update touches
``O(deg(u) + deg(v))`` trees instead of all ``n``.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.construction import build_search_tree
from repro.core.index import BicliqueArray, PMBCIndex, SearchTree
from repro.core.query import pmbc_index_query
from repro.core.result import Biclique
from repro.corenum.bounds import CoreBounds
from repro.corenum.incremental import (
    DEFAULT_CASCADE_CAP,
    IncrementalCoreBounds,
)
from repro.graph.bipartite import BipartiteGraph, Side
from repro.kernel import is_packed_kernel, resolve_kernel
from repro.kernel.dynadj import DEFAULT_CHURN_BUDGET, DynamicPackedAdjacency


def edge_affected_sets(
    neighbors_of_u: Iterable[int],
    neighbors_of_v: Iterable[int],
    u: int,
    v: int,
) -> tuple[set[int], set[int]]:
    """The per-layer vertex sets an update to edge ``(u, v)`` affects.

    ``neighbors_of_u`` are the lower-layer neighbors of upper vertex
    ``u`` and ``neighbors_of_v`` the upper-layer neighbors of lower
    vertex ``v`` — taken *after* an insertion and *before* a deletion.
    Returns ``(affected_upper, affected_lower)``: exactly the vertices
    whose search trees the update can change (module docstring).  This
    is the invalidation rule shared by :class:`DynamicPMBCIndex`
    (rebuild) and :class:`repro.adaptive.PartialIndex` (evict).
    """
    return set(neighbors_of_v) | {u}, set(neighbors_of_u) | {v}


class DynamicPMBCIndex:
    """A PMBC-Index that stays correct under edge insertions/deletions.

    Parameters
    ----------
    graph:
        The starting graph.
    use_core_bounds:
        Maintain (α,β)-core bounds (PMBC-OL* pruning) incrementally.
    compact_every:
        When set, :meth:`compact` runs automatically after every this
        many effective deletions (``None`` — the default — disables
        auto-GC; stranded bicliques then accumulate until an explicit
        :meth:`compact`).
    kernel:
        Compute kernel for tree rebuilds; packed kernels additionally
        maintain a patched :class:`DynamicPackedAdjacency` so rebuilds
        skip graph snapshots.
    cascade_cap / churn_budget:
        Tuning knobs forwarded to the incremental bounds and the packed
        adjacency respectively.
    bounds:
        Optional existing :class:`CoreBounds` of ``graph`` to adopt —
        it is then repaired in place, so external holders (engines,
        shards) observe updates without a reference swap.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        use_core_bounds: bool = True,
        compact_every: int | None = None,
        kernel: str | None = None,
        cascade_cap: int = DEFAULT_CASCADE_CAP,
        churn_budget: int = DEFAULT_CHURN_BUDGET,
        bounds: CoreBounds | None = None,
    ) -> None:
        self._adj: dict[Side, list[set[int]]] = {
            side: [
                set(graph.neighbors(side, v))
                for v in range(graph.num_vertices_on(side))
            ]
            for side in Side
        }
        self._use_core_bounds = use_core_bounds
        self._kernel = resolve_kernel(kernel)
        self._inc = (
            IncrementalCoreBounds(graph, bounds=bounds, cascade_cap=cascade_cap)
            if use_core_bounds
            else None
        )
        self._dyn = (
            DynamicPackedAdjacency(graph, churn_budget=churn_budget)
            if is_packed_kernel(self._kernel)
            else None
        )
        self.compact_every = compact_every
        self._snapshot: BipartiteGraph | None = None
        self._array = BicliqueArray()
        self._trees: dict[Side, list[SearchTree]] = {}
        self.trees_rebuilt = 0
        self.noop_updates = 0
        self.auto_compactions = 0
        self._deletions_since_compact = 0
        self._rebuild_all()

    # ------------------------------------------------------------------
    # Graph state
    # ------------------------------------------------------------------
    def graph(self) -> BipartiteGraph:
        """An immutable snapshot of the current graph."""
        if self._snapshot is None:
            self._snapshot = BipartiteGraph(
                [sorted(ns) for ns in self._adj[Side.UPPER]],
                num_lower=len(self._adj[Side.LOWER]),
            )
        return self._snapshot

    def num_vertices_on(self, side: Side) -> int:
        """Current vertex count on ``side`` (including isolated)."""
        return len(self._adj[side])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` (upper id, lower id) currently exists."""
        if u >= len(self._adj[Side.UPPER]) or v >= len(self._adj[Side.LOWER]):
            return False
        return v in self._adj[Side.UPPER][u]

    @property
    def index(self) -> PMBCIndex:
        """The current index as a plain (static) PMBCIndex view."""
        return PMBCIndex(
            num_upper=len(self._adj[Side.UPPER]),
            num_lower=len(self._adj[Side.LOWER]),
            trees=self._trees,
            array=self._array,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self, side: Side, q: int, tau_u: int = 1, tau_l: int = 1
    ) -> Biclique | None:
        """PMBC-IQ against the maintained index."""
        return pmbc_index_query(self.index, side, q, tau_u, tau_l)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> int:
        """Insert edge ``(u, v)``; new vertex ids extend the layers.

        Returns the number of search trees rebuilt.  Inserting an
        existing edge is a free, counted no-op (returns 0).
        """
        if u < 0 or v < 0:
            raise ValueError(f"vertex ids must be non-negative: ({u}, {v})")
        return self.apply_updates([("insert", u, v)])

    def delete_edge(self, u: int, v: int) -> int:
        """Delete edge ``(u, v)``.

        Returns the number of search trees rebuilt.  Deleting a
        missing edge is a free, counted no-op (returns 0).
        """
        return self.apply_updates([("delete", u, v)])

    def apply_updates(
        self, updates: list[tuple[str, int, int]]
    ) -> int:
        """Apply a batch of ``("insert"|"delete", u, v)`` updates.

        All graph mutations happen first, then the union of affected
        trees is rebuilt once — cheaper than per-edge maintenance when
        updates cluster around the same vertices.  Returns the number
        of trees rebuilt.  No-op updates (deleting a missing edge,
        inserting an existing one) are skipped for free and counted in
        :attr:`noop_updates` — they trigger no bounds work and no
        rebuilds; a batch of only no-ops leaves the index untouched.
        Core bounds are repaired incrementally per effective update,
        never recomputed from scratch.
        """
        affected_upper: set[int] = set()
        affected_lower: set[int] = set()
        deletions = 0
        for action, u, v in updates:
            if action == "insert":
                self._grow(Side.UPPER, u)
                self._grow(Side.LOWER, v)
                if v in self._adj[Side.UPPER][u]:
                    self.noop_updates += 1
                    continue
                self._adj[Side.UPPER][u].add(v)
                self._adj[Side.LOWER][v].add(u)
                if self._inc is not None:
                    self._inc.insert_edge(u, v)
                if self._dyn is not None:
                    self._dyn.insert_edge(u, v)
                affected_upper |= self._adj[Side.LOWER][v]
                affected_lower |= self._adj[Side.UPPER][u]
            elif action == "delete":
                if not self.has_edge(u, v):
                    self.noop_updates += 1
                    continue
                affected_upper |= self._adj[Side.LOWER][v]
                affected_lower |= self._adj[Side.UPPER][u]
                self._adj[Side.UPPER][u].discard(v)
                self._adj[Side.LOWER][v].discard(u)
                if self._inc is not None:
                    self._inc.delete_edge(u, v)
                if self._dyn is not None:
                    self._dyn.delete_edge(u, v)
                deletions += 1
            else:
                raise ValueError(f"unknown update action {action!r}")
            affected_upper.add(u)
            affected_lower.add(v)
        if not affected_upper and not affected_lower:
            return 0  # pure no-op batch: nothing moved, nothing to do
        self._snapshot = None
        rebuilt = self._rebuild(affected_upper, affected_lower)
        if deletions:
            self._deletions_since_compact += deletions
            if (
                self.compact_every is not None
                and self._deletions_since_compact >= self.compact_every
            ):
                self.compact()
                self.auto_compactions += 1
        return rebuilt

    def delete_vertex(self, side: Side, v: int) -> int:
        """Remove all incident edges of ``v`` (the vertex id remains,
        with an empty tree).  Returns the number of trees rebuilt."""
        if not 0 <= v < len(self._adj[side]):
            raise ValueError(
                f"vertex {v} out of range for the {side.value} layer"
            )
        neighbors = sorted(self._adj[side][v])
        if not neighbors:
            return 0
        if side is Side.UPPER:
            updates = [("delete", v, w) for w in neighbors]
        else:
            updates = [("delete", w, v) for w in neighbors]
        return self.apply_updates(updates)

    def insert_vertex(
        self, side: Side, neighbors: list[int]
    ) -> tuple[int, int]:
        """Add a fresh vertex on ``side`` connected to ``neighbors``.

        Returns ``(new_vertex_id, trees_rebuilt)``.
        """
        new_id = len(self._adj[side])
        if not neighbors:
            self._grow(side, new_id)
            return new_id, 0
        if side is Side.UPPER:
            updates = [("insert", new_id, w) for w in sorted(set(neighbors))]
        else:
            updates = [("insert", w, new_id) for w in sorted(set(neighbors))]
        rebuilt = self.apply_updates(updates)
        return new_id, rebuilt

    def compact(self) -> int:
        """Garbage-collect unreferenced bicliques; returns the number
        removed.  Tree pointers are remapped in place."""
        self._deletions_since_compact = 0
        referenced: set[int] = set()
        for side in Side:
            for tree in self._trees[side]:
                for node in tree.walk():
                    if node.biclique_id is not None:
                        referenced.add(node.biclique_id)
        fresh = BicliqueArray()
        remap: dict[int, int] = {}
        for old_id in sorted(referenced):
            new_id, __ = fresh.add(self._array[old_id])
            remap[old_id] = new_id
        removed = len(self._array) - len(fresh)
        for side in Side:
            for tree in self._trees[side]:
                for node in tree.walk():
                    if node.biclique_id is not None:
                        node.biclique_id = remap[node.biclique_id]
        self._array = fresh
        return removed

    def stats(self) -> dict:
        """JSON-friendly maintenance counters (nested per component)."""
        out = {
            "trees_rebuilt": self.trees_rebuilt,
            "noop_updates": self.noop_updates,
            "auto_compactions": self.auto_compactions,
            "deletions_since_compact": self._deletions_since_compact,
            "kernel": self._kernel,
        }
        if self._inc is not None:
            out["bounds"] = self._inc.stats()
        if self._dyn is not None:
            out["adjacency"] = self._dyn.stats()
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _grow(self, side: Side, v: int) -> None:
        if v < len(self._adj[side]):
            return
        if self._inc is not None:
            self._inc.ensure_vertex(side, v)
        if self._dyn is not None:
            self._dyn.ensure_vertex(side, v)
        while v >= len(self._adj[side]):
            self._adj[side].append(set())
            self._trees[side].append(SearchTree())
            self._snapshot = None

    def _current_bounds(self) -> CoreBounds | None:
        if self._inc is None:
            return None
        return self._inc.bounds

    def _rebuild(
        self, affected_upper: set[int], affected_lower: set[int]
    ) -> int:
        # Packed kernels extract straight from the live patched
        # adjacency; the set kernel still needs a materialized snapshot.
        if self._dyn is not None:
            graph, extractor = self._dyn, self._dyn.extract
        else:
            graph, extractor = self.graph(), None
        bounds = self._current_bounds()
        count = 0
        for side, affected in (
            (Side.UPPER, affected_upper),
            (Side.LOWER, affected_lower),
        ):
            for x in affected:
                self._trees[side][x] = build_search_tree(
                    graph,
                    side,
                    x,
                    self._array,
                    bounds,
                    kernel=self._kernel,
                    extractor=extractor,
                )
                count += 1
        self.trees_rebuilt += count
        return count

    def _rebuild_all(self) -> None:
        graph = self.graph()
        bounds = self._current_bounds()
        self._trees = {
            side: [
                build_search_tree(
                    graph, side, q, self._array, bounds, kernel=self._kernel
                )
                for q in range(graph.num_vertices_on(side))
            ]
            for side in Side
        }
