"""PMBC-Index construction: PMBC-IC (Algorithm 3).

For each vertex ``q``, a BFS over critical ``(τ_U, τ_L)`` combinations
builds the search tree: the root is ``(1, 1)``; a node whose answer is
the biclique ``C`` spawns children ``(|U(C)|+1, τ_L)`` and
``(τ_U, |L(C)|+1)`` (Lemma 4).  Each node's answer is computed with the
online search, seeded per Algorithm 3/4 and constrained by the Lemma 6
shape caps derived from its parent's answer.

Children are enqueued only when feasible:

- ``τ_U`` cannot exceed the largest neighbor degree of ``q`` on the
  opposite layer and ``τ_L`` cannot exceed ``deg(q)`` (oriented per
  query side) — the paper's "size constraints are satisfied" check;
- a Lemma 6 cap below the child's own constraint proves infeasibility;
- with core bounds available, ``τ_U·τ_L > z_q`` proves infeasibility
  (Lemma 9).

``build_index`` uses PMBC-OL* internally by default (``bounds`` are
computed once per graph), matching the paper's evaluation setup.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.core.index import (
    BicliqueArray,
    PMBCIndex,
    SearchTree,
    SearchTreeNode,
)
from repro.core.online import extract_local, pmbc_online_local
from repro.core.skyline import SkylineIndex
from repro.corenum.bounds import CoreBounds, compute_bounds
from repro.graph.bipartite import BipartiteGraph, Side
from repro.kernel import resolve_kernel


@dataclass
class BuildStats:
    """Instrumentation collected during index construction."""

    seconds: float = 0.0
    online_calls: int = 0
    skyline_seed_hits: int = 0
    per_vertex_seconds: dict[Side, list[float]] = field(default_factory=dict)


def vertex_constraint_limits(
    graph: BipartiteGraph, side: Side, q: int
) -> tuple[int, int]:
    """The largest feasible ``(τ_U, τ_L)`` for queries on ``q``.

    A biclique containing ``q`` has at most ``deg(q)`` vertices on the
    opposite layer and at most ``max_{w∈N(q)} deg(w)`` on ``q``'s own
    layer (every own-layer member is a neighbor of each opposite
    member).
    """
    other = side.other
    own_limit = max(
        (graph.degree(other, w) for w in graph.neighbors(side, q)), default=0
    )
    other_limit = graph.degree(side, q)
    if side is Side.UPPER:
        return own_limit, other_limit
    return other_limit, own_limit


def build_search_tree(
    graph: BipartiteGraph,
    side: Side,
    q: int,
    array: BicliqueArray,
    bounds: CoreBounds | None = None,
    skyline: SkylineIndex | None = None,
    stats: BuildStats | None = None,
    use_lemma6_caps: bool = True,
    kernel: str | None = None,
    extractor=None,
) -> SearchTree:
    """Build ``T_q`` (the per-vertex loop body of Algorithms 3/4/6).

    ``use_lemma6_caps=False`` disables the Lemma 6 shape caps — an
    ablation knob; the resulting tree is identical, only slower to
    build.  ``kernel`` picks the compute kernel for the per-node
    searches; both kernels build identical trees.  ``extractor``
    overrides :func:`extract_local` (same signature) — dynamic callers
    pass :meth:`repro.kernel.DynamicPackedAdjacency.extract` to pull
    ``H_q`` straight from live patched adjacency, in which case
    ``graph`` only needs ``degree``/``neighbors``.
    """
    tree = SearchTree()
    if graph.degree(side, q) == 0:
        return tree
    limit_u, limit_l = vertex_constraint_limits(graph, side, q)
    z_q = bounds.z_bound(side, q) if bounds is not None else None
    if extractor is None:
        extractor = extract_local
    local = extractor(graph, side, q, resolve_kernel(kernel))

    root = SearchTreeNode(tau_u=1, tau_l=1)
    tree.nodes.append(root)
    # Queue entries: (node_id, lemma-6 caps on the answer shape).
    queue: deque[tuple[int, int | None, int | None]] = deque()
    queue.append((0, None, None))
    while queue:
        node_id, max_u, max_l = queue.popleft()
        node = tree.nodes[node_id]
        seed = None
        if skyline is not None:
            seed = skyline.lookup(side, q, node.tau_u, node.tau_l)
            if seed is not None and stats is not None:
                stats.skyline_seed_hits += 1
        if stats is not None:
            stats.online_calls += 1
        result = pmbc_online_local(
            local,
            node.tau_u,
            node.tau_l,
            seed=seed,
            bounds=bounds,
            max_u=max_u if use_lemma6_caps else None,
            max_l=max_l if use_lemma6_caps else None,
            kernel=kernel,
        )
        if result is None:
            continue
        biclique_id, newly_added = array.add(result)
        node.biclique_id = biclique_id
        if skyline is not None and newly_added:
            skyline.update(result, biclique_id)

        num_u, num_l = result.shape
        # Child via condition (1): raise tau_u; the answer must then
        # have strictly fewer lower vertices (Lemma 6).
        child1 = (num_u + 1, node.tau_l, None, num_l - 1)
        # Child via condition (2): raise tau_l.
        child2 = (node.tau_u, num_l + 1, num_u - 1, None)
        for tau_u_new, tau_l_new, cap_u, cap_l in (child1, child2):
            if tau_u_new > limit_u or tau_l_new > limit_l:
                continue
            if cap_u is not None and cap_u < tau_u_new:
                continue
            if cap_l is not None and cap_l < tau_l_new:
                continue
            if z_q is not None and tau_u_new * tau_l_new > z_q:
                continue
            child = SearchTreeNode(tau_u=tau_u_new, tau_l=tau_l_new)
            child_id = len(tree.nodes)
            tree.nodes.append(child)
            if tau_u_new > node.tau_u:
                node.left = child_id
            else:
                node.right = child_id
            queue.append((child_id, cap_u, cap_l))
    return tree


def _build(
    graph: BipartiteGraph,
    use_skyline: bool,
    bounds: CoreBounds | None,
    use_core_bounds: bool,
    instrument: bool,
    use_lemma6_caps: bool = True,
    kernel: str | None = None,
) -> tuple[PMBCIndex, BuildStats]:
    start = time.perf_counter()
    kernel = resolve_kernel(kernel)
    if bounds is None and use_core_bounds:
        bounds = compute_bounds(graph)
    array = BicliqueArray()
    skyline = SkylineIndex(graph, array) if use_skyline else None
    stats = BuildStats()
    if instrument:
        stats.per_vertex_seconds = {
            side: [0.0] * graph.num_vertices_on(side) for side in Side
        }
    trees: dict[Side, list[SearchTree]] = {}
    for side in Side:
        side_trees = []
        for q in range(graph.num_vertices_on(side)):
            tick = time.perf_counter() if instrument else 0.0
            side_trees.append(
                build_search_tree(
                    graph,
                    side,
                    q,
                    array,
                    bounds,
                    skyline,
                    stats,
                    use_lemma6_caps=use_lemma6_caps,
                    kernel=kernel,
                )
            )
            if instrument:
                stats.per_vertex_seconds[side][q] = time.perf_counter() - tick
        trees[side] = side_trees
    index = PMBCIndex(
        num_upper=graph.num_upper,
        num_lower=graph.num_lower,
        trees=trees,
        array=array,
    )
    stats.seconds = time.perf_counter() - start
    return index, stats


def build_index(
    graph: BipartiteGraph,
    bounds: CoreBounds | None = None,
    use_core_bounds: bool = True,
    instrument: bool = False,
    use_lemma6_caps: bool = True,
    kernel: str | None = None,
):
    """PMBC-IC (Algorithm 3): build the index without cost-sharing.

    Returns the index, or ``(index, stats)`` when ``instrument`` is
    set.  ``use_core_bounds`` selects PMBC-OL* (the paper's setting)
    over plain PMBC-OL for the per-node searches;
    ``use_lemma6_caps=False`` is an ablation knob.  ``kernel`` picks
    the compute kernel; both kernels build byte-identical indexes.
    """
    index, stats = _build(
        graph,
        use_skyline=False,
        bounds=bounds,
        use_core_bounds=use_core_bounds,
        instrument=instrument,
        use_lemma6_caps=use_lemma6_caps,
        kernel=kernel,
    )
    return (index, stats) if instrument else index
