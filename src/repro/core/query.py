"""PMBC-IQ — index-based query processing (Algorithm 2).

Walk the query vertex's search tree from the root: a node whose stored
biclique satisfies the size constraints is the answer (the first hit is
maximal by Lemma 2); otherwise descend into the unique child whose
``(τ_U, τ_L)`` is dominated by the query's.  Runs in
``O(deg(q) + |C|)`` (Theorem 2).
"""

from __future__ import annotations

from repro.core.index import PMBCIndex
from repro.core.result import Biclique
from repro.graph.bipartite import Side


def pmbc_index_topk(
    index: PMBCIndex,
    side: Side,
    q: int,
    k: int,
    tau_u: int = 1,
    tau_l: int = 1,
) -> list[Biclique]:
    """The ``k`` largest *distinct* personalized maximum bicliques of ``q``.

    The search tree ``T_q`` stores exactly the distinct personalized
    maxima of ``q`` across all constraint combinations, so the top-k
    diverse groups of ``q`` (each maximal for some constraint regime)
    come straight off the tree — an extension the index supports for
    free.  Results satisfy the given constraints and are sorted by edge
    count descending (ties broken by shape for determinism).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if tau_u < 1 or tau_l < 1:
        raise ValueError(
            f"size constraints must be >= 1, got ({tau_u}, {tau_l})"
        )
    trees = index.trees[side]
    if not 0 <= q < len(trees):
        raise ValueError(
            f"query vertex {q} out of range for the {side.value} layer"
        )
    seen: set[int] = set()
    results: list[Biclique] = []
    for node in trees[q].walk():
        if node.biclique_id is None or node.biclique_id in seen:
            continue
        seen.add(node.biclique_id)
        candidate = index.biclique(node.biclique_id)
        if candidate.satisfies(tau_u, tau_l):
            results.append(candidate)
    results.sort(key=lambda c: (-c.num_edges, c.shape))
    return results[:k]


def pmbc_index_query(
    index: PMBCIndex, side: Side, q: int, tau_u: int = 1, tau_l: int = 1
) -> Biclique | None:
    """The personalized maximum biclique of ``q`` from the PMBC-Index.

    Returns None when no biclique containing ``q`` meets the
    constraints.
    """
    if tau_u < 1 or tau_l < 1:
        raise ValueError(
            f"size constraints must be >= 1, got ({tau_u}, {tau_l})"
        )
    trees = index.trees[side]
    if not 0 <= q < len(trees):
        raise ValueError(
            f"query vertex {q} out of range for the {side.value} layer"
        )
    tree = trees[q]
    node_id: int | None = 0 if tree.nodes else None
    while node_id is not None:
        node = tree.nodes[node_id]
        if node.biclique_id is not None:
            candidate = index.biclique(node.biclique_id)
            if candidate.satisfies(tau_u, tau_l):
                return candidate
        next_id: int | None = None
        for child_id in (node.left, node.right):
            if child_id is None:
                continue
            child = tree.nodes[child_id]
            if child.tau_u <= tau_u and child.tau_l <= tau_l:
                next_id = child_id
                break
        node_id = next_id
    return None
