"""PMBC-IQ — index-based query processing (Algorithm 2) + the request type.

Walk the query vertex's search tree from the root: a node whose stored
biclique satisfies the size constraints is the answer (the first hit is
maximal by Lemma 2); otherwise descend into the unique child whose
``(τ_U, τ_L)`` is dominated by the query's.  Runs in
``O(deg(q) + |C|)`` (Theorem 2).

This module also defines :class:`QueryRequest`, the one value type a
personalized query is expressed as across the whole stack — the online
searches, the caching engine, the index lookup, the execution substrate
(:mod:`repro.exec`) and the serving layer all accept it, while keeping
their historical positional ``(side, q, tau_u, tau_l)`` signatures as
thin wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.index import PMBCIndex
from repro.core.result import Biclique
from repro.graph.bipartite import Side
from repro.objectives import DEFAULT_OBJECTIVE, get_objective
from repro.obs.trace import current_trace


@dataclass(frozen=True)
class QueryRequest:
    """One personalized query: ``(side, vertex, τ_U, τ_L[, objective])``.

    The canonical request shape of Definition 3, shared by every query
    surface (``pmbc_online``/``pmbc_online_star``, the engine, the
    index, the service, the HTTP client) and by batch APIs
    (``query_batch`` takes a ``Sequence[QueryRequest]``).

    ``side`` may be given as a :class:`Side` or its string value
    (``"upper"``/``"lower"``); it is normalized to a :class:`Side`.
    ``objective`` names the query family (default ``"pmbc"``) and is
    validated against the :mod:`repro.objectives` registry — an unknown
    name raises ``ValueError`` at construction, before the request
    reaches any backend.  Range/constraint validation stays with the
    consumer (each layer reports violations with its own error type),
    except for the structural invariants every surface agrees on:
    integer fields, a known side, and a registered objective.
    """

    side: Side
    vertex: int
    tau_u: int = 1
    tau_l: int = 1

    objective: str = DEFAULT_OBJECTIVE
    """Query-family name from the :mod:`repro.objectives` registry.
    Part of :attr:`key` (and thus of equality/hash): a balanced and a
    PMBC query for the same vertex never share a cache entry or a
    single-flight leader."""

    trace_id: str | None = field(default=None, compare=False)
    """Optional correlation id for observability.  Excluded from
    equality/hash (and from :attr:`key`) so tracing never perturbs
    caching or single-flight collapsing, and omitted from
    :meth:`to_json` when unset."""

    def __post_init__(self) -> None:
        if isinstance(self.side, str):
            object.__setattr__(self, "side", Side(self.side.lower()))
        elif not isinstance(self.side, Side):
            raise TypeError(
                f"side must be a Side or its string value, got {self.side!r}"
            )
        for name in ("vertex", "tau_u", "tau_l"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(f"{name} must be an int, got {value!r}")
        if not isinstance(self.objective, str):
            raise TypeError(
                f"objective must be a string, got {self.objective!r}"
            )
        get_objective(self.objective)  # raises ValueError on unknown names
        if self.trace_id is not None and not isinstance(self.trace_id, str):
            raise TypeError(
                f"trace_id must be a string or None, got {self.trace_id!r}"
            )

    @property
    def key(self) -> tuple[Side, int, int, int, str]:
        """A hashable identity (cache keys, single-flight collapsing)."""
        return (self.side, self.vertex, self.tau_u, self.tau_l, self.objective)

    def to_json(self) -> dict:
        """A JSON-friendly representation (the HTTP wire shape).

        ``trace_id`` (when unset) and ``objective`` (when the default
        ``"pmbc"``) are omitted, so historical requests keep their
        four-key wire shape.
        """
        payload = {
            "side": self.side.value,
            "vertex": self.vertex,
            "tau_u": self.tau_u,
            "tau_l": self.tau_l,
        }
        if self.objective != DEFAULT_OBJECTIVE:
            payload["objective"] = self.objective
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        return payload

    @classmethod
    def of(cls, request) -> "QueryRequest":
        """Coerce a request-like value into a :class:`QueryRequest`.

        Accepts an existing request (returned as-is), a ``(side,
        vertex[, tau_u[, tau_l[, objective]]])`` tuple, or a mapping
        with those keys — the shapes batch callers naturally hold.
        """
        if isinstance(request, cls):
            return request
        if isinstance(request, dict):
            return cls(
                side=request["side"],
                vertex=request["vertex"],
                tau_u=request.get("tau_u", 1),
                tau_l=request.get("tau_l", 1),
                objective=request.get("objective", DEFAULT_OBJECTIVE),
                trace_id=request.get("trace_id"),
            )
        if isinstance(request, (tuple, list)) and 2 <= len(request) <= 5:
            return cls(*request)
        raise TypeError(f"cannot interpret {request!r} as a QueryRequest")


def as_request(
    side,
    q=None,
    tau_u: int = 1,
    tau_l: int = 1,
    objective: str = DEFAULT_OBJECTIVE,
) -> QueryRequest:
    """Normalize a positional-or-request call signature.

    Every query entry point accepts either its historical positional
    arguments or a single :class:`QueryRequest` in the ``side``
    position; this helper implements that contract in one place.  When
    a request object is given, it wins: the positional defaults
    (including ``objective``) are ignored.
    """
    if isinstance(side, QueryRequest):
        if q is not None:
            raise TypeError(
                "pass either a QueryRequest or positional arguments, not both"
            )
        return side
    if q is None:
        raise TypeError("missing query vertex (or pass a QueryRequest)")
    return QueryRequest(
        side=side, vertex=q, tau_u=tau_u, tau_l=tau_l, objective=objective
    )


def _require_index_compatible(objective: str) -> None:
    """Reject objectives the PMBC-Index storage model cannot answer.

    The index stores the Lemma 6 skyline of *edge-count* maxima; for
    any other family its trees would return a wrong-family biclique, so
    the library-level lookups refuse outright (the serving tiers
    instead decline with a MISS and fall through to online search).
    """
    if not get_objective(objective).index_compatible:
        raise ValueError(
            f"objective {objective!r} is not answerable from a PMBC index; "
            "use the online/engine surfaces instead"
        )


def pmbc_index_topk(
    index: PMBCIndex,
    side: Side | QueryRequest,
    q: int | None = None,
    k: int = 1,
    tau_u: int = 1,
    tau_l: int = 1,
) -> list[Biclique]:
    """The ``k`` largest *distinct* personalized maximum bicliques of ``q``.

    The search tree ``T_q`` stores exactly the distinct personalized
    maxima of ``q`` across all constraint combinations, so the top-k
    diverse groups of ``q`` (each maximal for some constraint regime)
    come straight off the tree — an extension the index supports for
    free.  Results satisfy the given constraints and are sorted by edge
    count descending (ties broken by shape for determinism).

    ``side``/``q``/``tau_u``/``tau_l`` may be replaced by a single
    :class:`QueryRequest` in the ``side`` position.
    """
    request = as_request(side, q, tau_u, tau_l)
    side, q, tau_u, tau_l, objective = request.key
    _require_index_compatible(objective)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if tau_u < 1 or tau_l < 1:
        raise ValueError(
            f"size constraints must be >= 1, got ({tau_u}, {tau_l})"
        )
    trees = index.trees[side]
    if not 0 <= q < len(trees):
        raise ValueError(
            f"query vertex {q} out of range for the {side.value} layer"
        )
    seen: set[int] = set()
    results: list[Biclique] = []
    for node in trees[q].walk():
        if node.biclique_id is None or node.biclique_id in seen:
            continue
        seen.add(node.biclique_id)
        candidate = index.biclique(node.biclique_id)
        if candidate.satisfies(tau_u, tau_l):
            results.append(candidate)
    results.sort(key=lambda c: (-c.num_edges, c.shape))
    return results[:k]


def pmbc_index_query(
    index: PMBCIndex,
    side: Side | QueryRequest,
    q: int | None = None,
    tau_u: int = 1,
    tau_l: int = 1,
) -> Biclique | None:
    """The personalized maximum biclique of ``q`` from the PMBC-Index.

    Returns None when no biclique containing ``q`` meets the
    constraints.  ``side``/``q``/``tau_u``/``tau_l`` may be replaced by
    a single :class:`QueryRequest` in the ``side`` position.
    """
    request = as_request(side, q, tau_u, tau_l)
    side, q, tau_u, tau_l, objective = request.key
    _require_index_compatible(objective)
    if tau_u < 1 or tau_l < 1:
        raise ValueError(
            f"size constraints must be >= 1, got ({tau_u}, {tau_l})"
        )
    trees = index.trees[side]
    if not 0 <= q < len(trees):
        raise ValueError(
            f"query vertex {q} out of range for the {side.value} layer"
        )
    tree = trees[q]
    trace = current_trace()
    visited = 0
    answer: Biclique | None = None
    node_id: int | None = 0 if tree.nodes else None
    while node_id is not None:
        visited += 1
        node = tree.nodes[node_id]
        if node.biclique_id is not None:
            candidate = index.biclique(node.biclique_id)
            if candidate.satisfies(tau_u, tau_l):
                answer = candidate
                break
        next_id: int | None = None
        for child_id in (node.left, node.right):
            if child_id is None:
                continue
            child = tree.nodes[child_id]
            if child.tau_u <= tau_u and child.tau_l <= tau_l:
                next_id = child_id
                break
        node_id = next_id
    if trace.enabled:
        trace.add("index_lookups")
        trace.add("index_nodes_visited", visited)
    return answer
