"""The basic index baseline of Section IV.

Stores, for every vertex and every feasible ``τ_U``, the list of
``τ_L``-regions sharing one personalized maximum biclique.  The
region observation ("if we change τ_L by fixing τ_U, C stays the same
biclique in a fixed region") lets construction skip directly from one
region boundary to the next instead of enumerating every ``τ_L``; this
is the improved variant the paper sketches with binary search.  Even
so, construction enumerates ``Σ_q O(deg(q)²)`` online searches in the
worst case, which is why the paper reports it timing out everywhere
but the smallest dataset — a behaviour the benchmark harness
reproduces via the ``time_budget``.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field

from repro.core.construction import vertex_constraint_limits
from repro.core.index import BicliqueArray
from repro.core.online import pmbc_online_local
from repro.core.result import Biclique
from repro.corenum.bounds import CoreBounds, compute_bounds
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.subgraph import two_hop_subgraph


class NaiveIndexTimeout(Exception):
    """Raised when construction exceeds its time budget."""


@dataclass
class NaiveIndex:
    """Per-vertex, per-``τ_U`` region tables over a shared array."""

    array: BicliqueArray
    # tables[side][v][tau_u - 1] is a list of (tau_l_start, biclique_id)
    # region starts, sorted ascending; a query binary-searches its region.
    tables: dict[Side, list[list[list[tuple[int, int]]]]] = field(
        default_factory=dict
    )

    def query(
        self, side: Side, q: int, tau_u: int = 1, tau_l: int = 1
    ) -> Biclique | None:
        """Answer a query by direct table lookup."""
        if tau_u < 1 or tau_l < 1:
            raise ValueError(
                f"size constraints must be >= 1, got ({tau_u}, {tau_l})"
            )
        rows = self.tables[side][q]
        if tau_u > len(rows):
            return None
        regions = rows[tau_u - 1]
        starts = [start for start, __ in regions]
        pos = bisect.bisect_right(starts, tau_l) - 1
        if pos < 0:
            return None
        __, biclique_id = regions[pos]
        candidate = self.array[biclique_id]
        if not candidate.satisfies(tau_u, tau_l):
            return None
        return candidate

    def size_bytes(self) -> int:
        """Storage under the paper's word model (regions + array)."""
        region_words = sum(
            2 * len(regions)
            for side in Side
            for rows in self.tables[side]
            for regions in rows
        )
        array_words = sum(
            len(b.upper) + len(b.lower) + 2 for b in self.array
        )
        return (region_words + array_words) * 8


def build_naive_index(
    graph: BipartiteGraph,
    bounds: CoreBounds | None = None,
    use_core_bounds: bool = True,
    time_budget: float | None = None,
) -> NaiveIndex:
    """Build the basic index; raises :class:`NaiveIndexTimeout` when the
    optional ``time_budget`` (seconds) is exceeded."""
    start = time.perf_counter()
    if bounds is None and use_core_bounds:
        bounds = compute_bounds(graph)
    array = BicliqueArray()
    tables: dict[Side, list[list[list[tuple[int, int]]]]] = {}
    for side in Side:
        side_tables = []
        for q in range(graph.num_vertices_on(side)):
            side_tables.append(
                _build_vertex_table(
                    graph, side, q, array, bounds, start, time_budget
                )
            )
        tables[side] = side_tables
    return NaiveIndex(array=array, tables=tables)


def _build_vertex_table(
    graph: BipartiteGraph,
    side: Side,
    q: int,
    array: BicliqueArray,
    bounds: CoreBounds | None,
    start: float,
    time_budget: float | None,
) -> list[list[tuple[int, int]]]:
    rows: list[list[tuple[int, int]]] = []
    if graph.degree(side, q) == 0:
        return rows
    limit_u, limit_l = vertex_constraint_limits(graph, side, q)
    local = two_hop_subgraph(graph, side, q)
    for tau_u in range(1, limit_u + 1):
        regions: list[tuple[int, int]] = []
        tau_l = 1
        while tau_l <= limit_l:
            if time_budget is not None and (
                time.perf_counter() - start > time_budget
            ):
                raise NaiveIndexTimeout(
                    f"naive index construction exceeded {time_budget}s"
                )
            result = pmbc_online_local(local, tau_u, tau_l, bounds=bounds)
            if result is None:
                break
            biclique_id, __ = array.add(result)
            regions.append((tau_l, biclique_id))
            # The same biclique answers every tau_l up to |L(C)|
            # (Lemma 3), so jump to the next region boundary.
            tau_l = len(result.lower) + 1
        if not regions:
            # No biclique with |U| >= tau_u at all: larger tau_u values
            # are also infeasible (Lemma 2).
            break
        rows.append(regions)
    return rows
