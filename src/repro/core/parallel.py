"""Parallel index construction (Algorithm 6) + the Fig 8 model.

Two pieces:

1. :func:`build_index_parallel` — the concurrent builder, rebased onto
   the shared execution substrate of :mod:`repro.exec` so index
   construction and query serving use **one** pool implementation with
   one set of metrics.  With ``execution="thread"`` workers append
   into the shared biclique array ``A`` and skyline index ``S``
   through locks — the CPython stand-in for the paper's atomic
   fetch-and-add slot allocation (GIL bound, reproduces the
   *algorithm*).  With ``execution="process"`` each worker process
   builds portable per-vertex trees against the graph it inherited
   once, and the parent merges them into one deduplicated array —
   real-core speedup for the pure-Python search.

2. :func:`simulate_parallel_schedule` — the Fig 8 measurement model:
   given measured per-vertex task costs from an instrumented
   sequential run, compute the makespan of greedy dynamic scheduling
   onto ``t`` workers.  This is precisely the quantity Fig 8 reports
   (workload-balance-limited speedup of an embarrassingly parallel
   per-vertex loop), derived from real measured costs rather than a
   GIL-bound thread race.  See DESIGN.md ("Substitutions").
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass

from repro.core.index import BicliqueArray, PMBCIndex, SearchTree
from repro.core.skyline import SkylineIndex
from repro.corenum.bounds import CoreBounds, compute_bounds
from repro.graph.bipartite import BipartiteGraph, Side


class _LockedBicliqueArray(BicliqueArray):
    """BicliqueArray with a lock around slot allocation.

    Mirrors the paper's scheme of atomically incrementing the array
    fill counter before writing the element.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def add(self, biclique):
        with self._lock:
            return super().add(biclique)


def build_index_parallel(
    graph: BipartiteGraph,
    num_threads: int = 4,
    use_skyline: bool = True,
    bounds: CoreBounds | None = None,
    use_core_bounds: bool = True,
    execution: str = "thread",
    executor=None,
    metrics=None,
) -> PMBCIndex:
    """Algorithm 6: build the PMBC-Index with ``num_threads`` workers.

    ``use_skyline`` selects PMBC-IC* (the paper's Algorithm 6) versus
    the parallelized PMBC-IC the paper mentions as the same technique.
    The result is equivalent (same query answers, Lemma 8/size bounds)
    to a sequential build, though the array order and cost-sharing hits
    depend on scheduling.

    ``execution`` picks the :mod:`repro.exec` backend (``"thread"`` or
    ``"process"``); alternatively pass a ready ``executor`` to share a
    pool (and its metrics) with the serving layer — it is borrowed, not
    closed.  Skyline cost-sharing spans workers only on the thread
    backend (shared memory); process workers build standalone trees
    whose bicliques the parent merges and deduplicates.
    """
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    from repro.exec.executor import create_executor

    if bounds is None and use_core_bounds:
        bounds = compute_bounds(graph)
    owned = executor is None
    if owned:
        executor = create_executor(
            execution,
            graph,
            bounds=bounds,
            use_core_bounds=False,
            num_workers=num_threads,
            metrics=metrics,
        )
    items = [
        (side, q)
        for side in Side
        for q in range(graph.num_vertices_on(side))
    ]
    trees: dict[Side, list[SearchTree]] = {
        side: [SearchTree() for __ in range(graph.num_vertices_on(side))]
        for side in Side
    }
    try:
        if executor.kind == "process":
            array = BicliqueArray()
            from repro.exec.tasks import merge_portable_tree

            for side, q, tree, bicliques in executor.map("build_tree", items):
                trees[side][q] = merge_portable_tree(array, tree, bicliques)
        else:
            array = _LockedBicliqueArray()
            skyline = (
                SkylineIndex(graph, array, locking=True)
                if use_skyline
                else None
            )
            executor.state.scratch["build"] = (array, bounds, skyline)
            try:
                for side, q, tree in executor.map("build_tree_shared", items):
                    trees[side][q] = tree
            finally:
                executor.state.scratch.pop("build", None)
    finally:
        if owned:
            executor.close()
    return PMBCIndex(
        num_upper=graph.num_upper,
        num_lower=graph.num_lower,
        trees=trees,
        array=array,
    )


@dataclass
class ScheduleResult:
    """Outcome of a simulated dynamic schedule."""

    num_workers: int
    makespan: float
    total_work: float

    @property
    def speedup(self) -> float:
        """Speedup versus one worker (= total work / makespan)."""
        if self.makespan == 0:
            return float(self.num_workers)
        return self.total_work / self.makespan


def simulate_parallel_schedule(
    task_costs: list[float], num_workers: int
) -> ScheduleResult:
    """Makespan of greedy dynamic scheduling of ``task_costs``.

    Tasks are taken in order by whichever worker frees up first —
    OpenMP ``schedule(dynamic)`` with chunk size 1, the paper's
    setting.  With measured per-vertex costs this reproduces the Fig 8
    speedup curves, including the sub-linear tapering caused by skewed
    per-vertex workloads.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    total = sum(task_costs)
    if not task_costs:
        return ScheduleResult(num_workers, 0.0, 0.0)
    workers = [0.0] * min(num_workers, len(task_costs))
    heapq.heapify(workers)
    for cost in task_costs:
        free_at = heapq.heappop(workers)
        heapq.heappush(workers, free_at + cost)
    return ScheduleResult(num_workers, max(workers), total)


def measure_task_costs(
    graph: BipartiteGraph,
    use_skyline: bool = True,
    bounds: CoreBounds | None = None,
) -> tuple[PMBCIndex, list[float]]:
    """Instrumented sequential build returning per-vertex costs.

    The cost list concatenates upper- then lower-layer vertices, the
    order the parallel queue would hand them out.
    """
    from repro.core.construction import _build

    index, stats = _build(
        graph,
        use_skyline=use_skyline,
        bounds=bounds,
        use_core_bounds=True,
        instrument=True,
    )
    costs = (
        stats.per_vertex_seconds[Side.UPPER]
        + stats.per_vertex_seconds[Side.LOWER]
    )
    return index, costs
