"""Answer verification utilities.

Downstream users integrating the index into a pipeline often want a
cheap certificate that a returned biclique is a *valid* answer (it is
complete, contains the query vertex, and meets the constraints) and,
optionally, an independent exactness check against the online
algorithm.  These helpers package both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.online import pmbc_online
from repro.core.result import Biclique
from repro.graph.bipartite import BipartiteGraph, Side


@dataclass(frozen=True)
class AnswerCheck:
    """Outcome of verifying one personalized answer."""

    valid: bool
    reasons: tuple[str, ...] = ()

    def __bool__(self) -> bool:  # truthiness = validity
        return self.valid


def check_personalized_answer(
    graph: BipartiteGraph,
    side: Side,
    q: int,
    tau_u: int,
    tau_l: int,
    answer: Biclique | None,
    exact: bool = False,
) -> AnswerCheck:
    """Verify an answer to ``C^q_{τU,τL}``.

    Cheap structural checks always run: completeness, query membership,
    constraint satisfaction.  ``exact=True`` additionally recomputes the
    optimum with PMBC-OL and compares edge counts (expensive — meant
    for audits and tests, not per-query use).

    A ``None`` answer is valid exactly when no biclique meets the
    constraints; that can only be certified with ``exact=True``, so a
    bare structural check accepts None with a caveat reason.
    """
    reasons: list[str] = []
    if answer is None:
        if exact:
            optimum = pmbc_online(graph, side, q, tau_u, tau_l)
            if optimum is not None:
                reasons.append(
                    f"answer is None but a {optimum.shape} biclique exists"
                )
        else:
            reasons.append("answer is None (not certified without exact=True)")
            return AnswerCheck(valid=True, reasons=tuple(reasons))
        return AnswerCheck(valid=not reasons, reasons=tuple(reasons))

    if not answer.contains(side, q):
        reasons.append(f"query vertex {q} not in the answer")
    if not answer.satisfies(tau_u, tau_l):
        reasons.append(
            f"shape {answer.shape} violates constraints ({tau_u}, {tau_l})"
        )
    if not answer.is_valid_in(graph):
        reasons.append("vertex sets do not induce a complete subgraph")
    if exact and not reasons:
        optimum = pmbc_online(graph, side, q, tau_u, tau_l)
        optimum_size = optimum.num_edges if optimum else 0
        if answer.num_edges != optimum_size:
            reasons.append(
                f"answer has {answer.num_edges} edges but the optimum "
                f"has {optimum_size}"
            )
    return AnswerCheck(valid=not reasons, reasons=tuple(reasons))
