"""The biclique value type shared by every algorithm layer.

Vertex ids are always *global* graph ids: ``upper`` holds upper-layer
ids of the parent :class:`~repro.graph.bipartite.BipartiteGraph` and
``lower`` holds lower-layer ids, regardless of which side a query
vertex was on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.bipartite import BipartiteGraph, Side


@dataclass(frozen=True)
class Biclique:
    """A complete bipartite subgraph given by its two vertex sets."""

    upper: frozenset[int]
    lower: frozenset[int]

    def __post_init__(self) -> None:
        object.__setattr__(self, "upper", frozenset(self.upper))
        object.__setattr__(self, "lower", frozenset(self.lower))

    @property
    def num_edges(self) -> int:
        """``|C| = |U(C)| · |L(C)|`` — the paper's size measure."""
        return len(self.upper) * len(self.lower)

    @property
    def shape(self) -> tuple[int, int]:
        """``(|U(C)|, |L(C)|)`` — an (a×b)-biclique has shape (a, b)."""
        return (len(self.upper), len(self.lower))

    def side_count(self, side: Side) -> int:
        """Number of vertices on the given layer."""
        return len(self.upper) if side is Side.UPPER else len(self.lower)

    def vertices(self, side: Side) -> frozenset[int]:
        """The vertex set on the given layer."""
        return self.upper if side is Side.UPPER else self.lower

    def contains(self, side: Side, v: int) -> bool:
        """Whether vertex ``v`` of the given layer is in the biclique."""
        return v in self.vertices(side)

    def satisfies(self, tau_u: int, tau_l: int) -> bool:
        """Whether the layer-size constraints of Definition 3 hold."""
        return len(self.upper) >= tau_u and len(self.lower) >= tau_l

    def dominates(self, other: "Biclique") -> bool:
        """Shape domination: at least as many vertices on both layers."""
        return (
            len(self.upper) >= len(other.upper)
            and len(self.lower) >= len(other.lower)
        )

    def signature(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """A canonical, hashable identity used to deduplicate array A."""
        return (tuple(sorted(self.upper)), tuple(sorted(self.lower)))

    def is_valid_in(self, graph: BipartiteGraph) -> bool:
        """Whether every upper–lower pair is an edge of ``graph``."""
        return all(
            graph.has_edge(u, v) for u in self.upper for v in self.lower
        )

    def with_labels(self, graph: BipartiteGraph) -> tuple[set, set]:
        """The vertex sets translated to application labels."""
        return (
            {graph.label(Side.UPPER, u) for u in self.upper},
            {graph.label(Side.LOWER, v) for v in self.lower},
        )

    def __repr__(self) -> str:
        a, b = self.shape
        return f"Biclique({a}x{b}, {self.num_edges} edges)"
