"""Compact binary serialization of the PMBC-Index.

The JSON format of :meth:`PMBCIndex.save` is convenient but 3–5×
larger than the paper's storage model.  This module provides a packed
little-endian binary format whose on-disk footprint matches the size
accounting of Table III closely, plus streaming read/write.

Layout (all integers little-endian):

```
magic     : 8 bytes  b"PMBCIDX1"
header    : 2 × u32  num_upper, num_lower
array     : u32 count, then per biclique:
            u32 |U|, u32 |L|, |U| × u32 upper ids, |L| × u32 lower ids
trees     : per side (upper then lower): u32 tree count, then per tree:
            u32 node count, then per node:
            u32 tau_u, u32 tau_l, i32 biclique_id, i32 left, i32 right
            (-1 encodes None)
```
"""

from __future__ import annotations

import io
import os
import struct
import warnings

from repro.core.index import (
    BicliqueArray,
    PMBCIndex,
    SearchTree,
    SearchTreeNode,
)
from repro.core.result import Biclique
from repro.graph.bipartite import Side

MAGIC = b"PMBCIDX1"

_U32 = struct.Struct("<I")
_NODE = struct.Struct("<IIiii")


class IndexFormatError(Exception):
    """Raised when a file is not a valid binary PMBC-Index."""


def _write_u32(out, value: int) -> None:
    out.write(_U32.pack(value))


def _read_u32(handle) -> int:
    raw = handle.read(4)
    if len(raw) != 4:
        raise IndexFormatError("truncated file (u32)")
    return _U32.unpack(raw)[0]


def write_binary(index: PMBCIndex, path: str | os.PathLike) -> int:
    """Write ``index`` in the binary format; returns bytes written.

    Prefer the unified :meth:`PMBCIndex.save` entry point
    (``index.save(path, format="binary")``); this function is its
    implementation.
    """
    buffer = io.BytesIO()
    buffer.write(MAGIC)
    _write_u32(buffer, index.num_upper)
    _write_u32(buffer, index.num_lower)

    _write_u32(buffer, len(index.array))
    for biclique in index.array:
        upper = sorted(biclique.upper)
        lower = sorted(biclique.lower)
        buffer.write(_U32.pack(len(upper)))
        buffer.write(_U32.pack(len(lower)))
        for v in upper:
            _write_u32(buffer, v)
        for v in lower:
            _write_u32(buffer, v)

    for side in (Side.UPPER, Side.LOWER):
        trees = index.trees[side]
        _write_u32(buffer, len(trees))
        for tree in trees:
            buffer.write(_U32.pack(len(tree.nodes)))
            for node in tree.nodes:
                buffer.write(
                    _NODE.pack(
                        node.tau_u,
                        node.tau_l,
                        -1 if node.biclique_id is None else node.biclique_id,
                        -1 if node.left is None else node.left,
                        -1 if node.right is None else node.right,
                    )
                )
    payload = buffer.getvalue()
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def read_binary(path: str | os.PathLike) -> PMBCIndex:
    """Read an index previously written in the binary format.

    Prefer the unified :meth:`PMBCIndex.load` entry point, which
    auto-detects the format; this function is its binary branch.
    """
    with open(path, "rb") as handle:
        if handle.read(len(MAGIC)) != MAGIC:
            raise IndexFormatError("bad magic — not a binary PMBC-Index")
        num_upper = _read_u32(handle)
        num_lower = _read_u32(handle)

        array = BicliqueArray()
        count = _read_u32(handle)
        for __ in range(count):
            size_u = _read_u32(handle)
            size_l = _read_u32(handle)
            upper = frozenset(_read_u32(handle) for __ in range(size_u))
            lower = frozenset(_read_u32(handle) for __ in range(size_l))
            array.add(Biclique(upper=upper, lower=lower))

        trees: dict[Side, list[SearchTree]] = {}
        for side in (Side.UPPER, Side.LOWER):
            tree_count = _read_u32(handle)
            side_trees = []
            for __ in range(tree_count):
                node_count = _read_u32(handle)
                nodes = []
                for __ in range(node_count):
                    raw = handle.read(_NODE.size)
                    if len(raw) != _NODE.size:
                        raise IndexFormatError("truncated file (node)")
                    tau_u, tau_l, biclique_id, left, right = _NODE.unpack(raw)
                    nodes.append(
                        SearchTreeNode(
                            tau_u=tau_u,
                            tau_l=tau_l,
                            biclique_id=(
                                None if biclique_id < 0 else biclique_id
                            ),
                            left=None if left < 0 else left,
                            right=None if right < 0 else right,
                        )
                    )
                side_trees.append(SearchTree(nodes=nodes))
            trees[side] = side_trees
    return PMBCIndex(
        num_upper=num_upper,
        num_lower=num_lower,
        trees=trees,
        array=array,
    )


# ----------------------------------------------------------------------
# deprecated aliases (pre-unified persistence API)


def save_binary(index: PMBCIndex, path: str | os.PathLike) -> int:
    """Deprecated alias for ``index.save(path, format="binary")``."""
    warnings.warn(
        "save_binary() is deprecated; use "
        "PMBCIndex.save(path, format='binary')",
        DeprecationWarning,
        stacklevel=2,
    )
    return write_binary(index, path)


def load_binary(path: str | os.PathLike) -> PMBCIndex:
    """Deprecated alias for :meth:`PMBCIndex.load` (auto-detecting)."""
    warnings.warn(
        "load_binary() is deprecated; use PMBCIndex.load(path), which "
        "auto-detects the format",
        DeprecationWarning,
        stacklevel=2,
    )
    return read_binary(path)
