"""A stateful online-query engine with per-vertex caching.

Sits between the two extremes the paper evaluates: cheaper than
building the full PMBC-Index, faster than cold PMBC-OL* for workloads
that revisit vertices.  The engine precomputes the (α,β)-core bounds
once (the offline part of Algorithm 5) and memoizes two-hop subgraphs
and fully-unconstrained answers per vertex.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.online import pmbc_online_local
from repro.core.result import Biclique
from repro.corenum.bounds import CoreBounds, compute_bounds
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.subgraph import LocalGraph, two_hop_subgraph


class PMBCQueryEngine:
    """Answer repeated personalized queries against a fixed graph.

    Parameters
    ----------
    graph:
        The (immutable) bipartite graph.
    use_core_bounds:
        Precompute the Section VI-C bounds (PMBC-OL* mode).  Disable to
        get plain PMBC-OL with caching only.
    cache_size:
        Maximum number of two-hop subgraphs kept (LRU).  Hub subgraphs
        can be large, so the cache is bounded.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        use_core_bounds: bool = True,
        cache_size: int = 256,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self._graph = graph
        self._bounds: CoreBounds | None = (
            compute_bounds(graph) if use_core_bounds else None
        )
        self._cache_size = cache_size
        self._locals: OrderedDict[tuple[Side, int], LocalGraph] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def graph(self) -> BipartiteGraph:
        return self._graph

    @property
    def bounds(self) -> CoreBounds | None:
        return self._bounds

    def query(
        self, side: Side, q: int, tau_u: int = 1, tau_l: int = 1
    ) -> Biclique | None:
        """The personalized maximum biclique of ``q`` (Definition 3)."""
        if not 0 <= q < self._graph.num_vertices_on(side):
            raise ValueError(
                f"query vertex {q} out of range for the {side.value} layer"
            )
        if tau_u < 1 or tau_l < 1:
            raise ValueError(
                f"size constraints must be >= 1, got ({tau_u}, {tau_l})"
            )
        local = self._two_hop(side, q)
        return pmbc_online_local(
            local, tau_u, tau_l, bounds=self._bounds
        )

    def _two_hop(self, side: Side, q: int) -> LocalGraph:
        key = (side, q)
        cached = self._locals.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._locals.move_to_end(key)
            return cached
        self.cache_misses += 1
        local = two_hop_subgraph(self._graph, side, q)
        self._locals[key] = local
        if len(self._locals) > self._cache_size:
            self._locals.popitem(last=False)
        return local
