"""A stateful online-query engine with per-vertex caching.

Sits between the two extremes the paper evaluates: cheaper than
building the full PMBC-Index, faster than cold PMBC-OL* for workloads
that revisit vertices.  The engine precomputes the (α,β)-core bounds
once (the offline part of Algorithm 5) and memoizes two-hop subgraphs
and fully-unconstrained answers per vertex.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.online import (
    answer_group_local,
    extract_local,
    pmbc_online_local,
)
from repro.core.query import QueryRequest, as_request
from repro.core.result import Biclique
from repro.corenum.bounds import CoreBounds, compute_bounds
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.subgraph import LocalGraph
from repro.kernel import resolve_kernel
from repro.obs.trace import current_trace


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of the engine's two-hop LRU cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of two-hop lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PMBCQueryEngine:
    """Answer repeated personalized queries against a fixed graph.

    Parameters
    ----------
    graph:
        The (immutable) bipartite graph.
    use_core_bounds:
        Precompute the Section VI-C bounds (PMBC-OL* mode).  Disable to
        get plain PMBC-OL with caching only.
    cache_size:
        Maximum number of two-hop subgraphs kept (LRU).  Hub subgraphs
        can be large, so the cache is bounded.
    bounds:
        Precomputed :class:`CoreBounds` to reuse (skips the offline
        computation regardless of ``use_core_bounds``).
    kernel:
        Compute kernel (``"bitset"``/``"set"``/``"words"``) for every
        search this engine runs; resolved **once** at construction
        (None defers to :func:`repro.kernel.default_kernel`).
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        use_core_bounds: bool = True,
        cache_size: int = 256,
        bounds: CoreBounds | None = None,
        kernel: str | None = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self._graph = graph
        self._kernel = resolve_kernel(kernel)
        if bounds is None and use_core_bounds:
            bounds = compute_bounds(graph)
        self._bounds: CoreBounds | None = bounds
        self._cache_size = cache_size
        self._locals: OrderedDict[tuple[Side, int], LocalGraph] = OrderedDict()
        self._cache_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._epoch = 0

    @property
    def graph(self) -> BipartiteGraph:
        """The graph this engine answers queries over."""
        return self._graph

    @property
    def bounds(self) -> CoreBounds | None:
        """Precomputed (α,β)-core bounds, or None when disabled."""
        return self._bounds

    @property
    def kernel(self) -> str:
        """The compute kernel this engine searches with."""
        return self._kernel

    @property
    def cache_hits(self) -> int:
        """Two-hop cache hits since construction."""
        return self._hits

    @property
    def cache_misses(self) -> int:
        """Two-hop cache misses since construction."""
        return self._misses

    @property
    def cache_evictions(self) -> int:
        """LRU evictions from the two-hop cache since construction."""
        return self._evictions

    def cache_stats(self) -> CacheStats:
        """A consistent snapshot of hit/miss/eviction counters."""
        with self._cache_lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._locals),
                capacity=self._cache_size,
            )

    def clear_cache(self) -> None:
        """Drop every cached two-hop subgraph (counters are kept)."""
        with self._cache_lock:
            self._epoch += 1
            self._locals.clear()

    def update_graph(
        self,
        graph: BipartiteGraph,
        affected: set[tuple[Side, int]] | None = None,
    ) -> None:
        """Swap the engine onto a post-update graph snapshot.

        ``affected`` are the ``(side, vertex)`` pairs whose two-hop
        subgraphs an edge update can change (from
        :func:`repro.core.dynamic.edge_affected_sets`); only their
        cache entries are evicted — an edge outside a vertex's two-hop
        neighborhood cannot alter its local graph.  ``None`` drops the
        whole cache.  The epoch bump makes extractions already in
        flight against the old graph return without being cached, so a
        racing query can never resurrect a stale subgraph.  The bounds
        object is intentionally **not** swapped: streaming callers
        repair it in place
        (:class:`repro.corenum.incremental.IncrementalCoreBounds`), so
        this engine — and everyone else sharing the object — observes
        the repaired bounds without any hand-off.
        """
        with self._cache_lock:
            self._graph = graph
            self._epoch += 1
            if affected is None:
                self._locals.clear()
            else:
                for key in affected:
                    self._locals.pop(key, None)

    def query(
        self,
        side: Side | QueryRequest,
        q: int | None = None,
        tau_u: int = 1,
        tau_l: int = 1,
        objective: str = "pmbc",
    ) -> Biclique | None:
        """The personalized objective-maximal biclique of ``q``.

        A single :class:`~repro.core.query.QueryRequest` may replace
        ``side``/``q``/``tau_u``/``tau_l``/``objective``.  The cached
        two-hop subgraph is objective-independent, so mixed-objective
        workloads share the cache.
        """
        request = as_request(side, q, tau_u, tau_l, objective=objective)
        side, q, tau_u, tau_l, objective = request.key
        self._validate(side, q, tau_u, tau_l)
        local = self._two_hop(side, q)
        return pmbc_online_local(
            local,
            tau_u,
            tau_l,
            bounds=self._bounds,
            kernel=self._kernel,
            objective=objective,
        )

    def query_batch(self, requests) -> list[Biclique | None]:
        """Answer a batch of :class:`QueryRequest` with shared work.

        Requests are grouped by ``(side, vertex)`` so each distinct
        query vertex's two-hop subgraph is extracted **at most once**
        per batch — even when the LRU is smaller than the batch's
        working set, and regardless of request order.  Each group is
        answered from its one shared extraction
        (:func:`repro.core.online.answer_group_local`): duplicate
        requests share a single search, distinct requests share the
        packed view and the memoized seeds/reductions of
        :mod:`repro.kernel.batch`.  The (α,β)-core bounds were computed
        once at engine construction, so a batch pays the offline cost
        zero additional times.  Answers come back in request order.
        """
        reqs = [QueryRequest.of(r) for r in requests]
        for request in reqs:
            self._validate(
                request.side, request.vertex, request.tau_u, request.tau_l
            )
        results: list[Biclique | None] = [None] * len(reqs)
        order = sorted(
            range(len(reqs)),
            key=lambda i: (reqs[i].side.value, reqs[i].vertex),
        )
        start = 0
        while start < len(order):
            side = reqs[order[start]].side
            vertex = reqs[order[start]].vertex
            stop = start
            while stop < len(order) and (
                reqs[order[stop]].side is side
                and reqs[order[stop]].vertex == vertex
            ):
                stop += 1
            local = self._two_hop(side, vertex)
            group = order[start:stop]
            answers = answer_group_local(
                local,
                [reqs[i] for i in group],
                bounds=self._bounds,
                kernel=self._kernel,
            )
            for i, answer in zip(group, answers):
                results[i] = answer
            start = stop
        return results

    def _validate(self, side: Side, q: int, tau_u: int, tau_l: int) -> None:
        if not 0 <= q < self._graph.num_vertices_on(side):
            raise ValueError(
                f"query vertex {q} out of range for the {side.value} layer"
            )
        if tau_u < 1 or tau_l < 1:
            raise ValueError(
                f"size constraints must be >= 1, got ({tau_u}, {tau_l})"
            )

    def _two_hop(self, side: Side, q: int) -> LocalGraph:
        key = (side, q)
        trace = current_trace()
        with self._cache_lock:
            cached = self._locals.get(key)
            if cached is not None:
                self._hits += 1
                self._locals.move_to_end(key)
                if trace.enabled:
                    trace.add("cache_hits")
                return cached
            self._misses += 1
            epoch = self._epoch
            graph = self._graph
        # Extraction runs outside the lock so concurrent workers on
        # *different* vertices never serialize (identical concurrent
        # queries are collapsed upstream by repro.serve's single-flight).
        with trace.span("two_hop_extract"):
            local = extract_local(graph, side, q, self._kernel)
        if trace.enabled:
            trace.add("cache_misses")
            trace.record_twohop(
                local.num_upper,
                local.num_lower,
                local.num_edges,
            )
        with self._cache_lock:
            if self._epoch != epoch:
                return local  # raced an update: answer, don't cache
            if key not in self._locals:
                self._locals[key] = local
            else:
                self._locals.move_to_end(key)
            while len(self._locals) > self._cache_size:
                self._locals.popitem(last=False)
                self._evictions += 1
        return local
