"""The PMBC-Index structure: search-tree forest ``T`` + biclique array ``A``.

Section V of the paper.  Each vertex ``q`` owns a binary search tree
whose root carries ``(τ_U, τ_L) = (1, 1)``; a node holding the
personalized maximum biclique ``C`` spawns at most two children with the
critical combinations ``(|U(C)|+1, τ_L)`` and ``(τ_U, |L(C)|+1)``
(Lemma 4).  Tree nodes point into a shared, deduplicated array of
biclique instances, since one biclique typically answers queries of many
vertices.

Size accounting follows the paper's model: a tree node stores two
integers and three pointers (5 machine words), a biclique instance its
two vertex lists plus two length words.  ``save``/``load`` provide a
JSON serialization for persistence.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.result import Biclique
from repro.graph.bipartite import Side

#: Bytes per machine word in the size model.
WORD_BYTES = 8
#: Words per search-tree node: tau_u, tau_l, p_c, p_l, p_r.
NODE_WORDS = 5


@dataclass
class SearchTreeNode:
    """One node of a vertex's search tree (``N`` in the paper)."""

    tau_u: int
    tau_l: int
    biclique_id: int | None = None
    left: int | None = None
    right: int | None = None


@dataclass
class SearchTree:
    """The search tree ``T_q`` of one vertex; node 0 is the root."""

    nodes: list[SearchTreeNode] = field(default_factory=list)

    @property
    def root(self) -> SearchTreeNode | None:
        """The tree's root node, or None for an empty tree."""
        return self.nodes[0] if self.nodes else None

    def __len__(self) -> int:
        return len(self.nodes)

    def walk(self) -> Iterator[SearchTreeNode]:
        """All nodes in insertion (BFS) order."""
        return iter(self.nodes)


class BicliqueArray:
    """The shared array ``A`` with signature-based deduplication."""

    def __init__(self) -> None:
        self._items: list[Biclique] = []
        self._ids: dict[tuple, int] = {}

    def add(self, biclique: Biclique) -> tuple[int, bool]:
        """Insert (or find) ``biclique``; returns ``(id, newly_added)``."""
        signature = biclique.signature()
        existing = self._ids.get(signature)
        if existing is not None:
            return existing, False
        new_id = len(self._items)
        self._items.append(biclique)
        self._ids[signature] = new_id
        return new_id, True

    def __getitem__(self, biclique_id: int) -> Biclique:
        return self._items[biclique_id]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Biclique]:
        return iter(self._items)


@dataclass
class PMBCIndex:
    """The full PMBC-Index of a graph.

    ``trees[side][v]`` is the search tree of vertex ``v`` on ``side``;
    ``array`` is the shared biclique array ``A``.
    """

    num_upper: int
    num_lower: int
    trees: dict[Side, list[SearchTree]]
    array: BicliqueArray

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def tree(self, side: Side, v: int) -> SearchTree:
        """The search tree ``T_v`` of the given vertex."""
        return self.trees[side][v]

    def biclique(self, biclique_id: int) -> Biclique:
        """The biclique instance at the given position of ``A``."""
        return self.array[biclique_id]

    @property
    def num_bicliques(self) -> int:
        """``|A|`` as an element count."""
        return len(self.array)

    @property
    def num_tree_nodes(self) -> int:
        """Total node count over all search trees."""
        return sum(
            len(tree) for side in Side for tree in self.trees[side]
        )

    # ------------------------------------------------------------------
    # Size model (Table III columns |T| and |A|)
    # ------------------------------------------------------------------
    def tree_size_bytes(self) -> int:
        """``|T|`` under the paper's storage model."""
        return self.num_tree_nodes * NODE_WORDS * WORD_BYTES

    def array_size_bytes(self) -> int:
        """``|A|`` under the paper's storage model."""
        return sum(
            (len(b.upper) + len(b.lower) + 2) * WORD_BYTES for b in self.array
        )

    def total_size_bytes(self) -> int:
        """``|T| + |A|``."""
        return self.tree_size_bytes() + self.array_size_bytes()

    def stats(self) -> dict:
        """A summary dictionary used by the benchmark harness."""
        return {
            "num_bicliques": self.num_bicliques,
            "num_tree_nodes": self.num_tree_nodes,
            "tree_size_bytes": self.tree_size_bytes(),
            "array_size_bytes": self.array_size_bytes(),
            "total_size_bytes": self.total_size_bytes(),
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    #: Extensions that :meth:`save` maps to the binary format in
    #: ``format="auto"`` mode.
    BINARY_EXTENSIONS = (".bin", ".pmbc", ".pmbcidx")

    def save(self, path: str | os.PathLike, format: str = "auto") -> None:
        """Write the index to ``path``.

        ``format`` selects the on-disk representation:

        - ``"json"`` — the readable JSON layout;
        - ``"binary"`` — the compact packed layout of
          :mod:`repro.core.serialize` (3–5× smaller);
        - ``"auto"`` (default) — binary when the extension is one of
          :attr:`BINARY_EXTENSIONS`, JSON otherwise.

        :meth:`load` reads either format back without being told which
        one was written.
        """
        if format == "auto":
            extension = os.path.splitext(os.fspath(path))[1].lower()
            format = (
                "binary" if extension in self.BINARY_EXTENSIONS else "json"
            )
        if format == "binary":
            from repro.core.serialize import write_binary

            write_binary(self, path)
            return
        if format != "json":
            raise ValueError(
                f"format must be 'auto', 'json' or 'binary', got {format!r}"
            )
        self._save_json(path)

    def _save_json(self, path: str | os.PathLike) -> None:
        payload = {
            "num_upper": self.num_upper,
            "num_lower": self.num_lower,
            "bicliques": [
                [sorted(b.upper), sorted(b.lower)] for b in self.array
            ],
            "trees": {
                side.value: [
                    [
                        [n.tau_u, n.tau_l, n.biclique_id, n.left, n.right]
                        for n in tree.nodes
                    ]
                    for tree in self.trees[side]
                ]
                for side in Side
            },
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "PMBCIndex":
        """Read an index previously written by :meth:`save`.

        The format is auto-detected: files starting with the binary
        magic bytes are read as binary, everything else as JSON.
        """
        from repro.core.serialize import MAGIC, read_binary

        with open(path, "rb") as handle:
            head = handle.read(len(MAGIC))
        if head == MAGIC:
            return read_binary(path)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        array = BicliqueArray()
        for upper, lower in payload["bicliques"]:
            array.add(Biclique(upper=frozenset(upper), lower=frozenset(lower)))
        trees = {
            side: [
                SearchTree(
                    nodes=[
                        SearchTreeNode(
                            tau_u=n[0],
                            tau_l=n[1],
                            biclique_id=n[2],
                            left=n[3],
                            right=n[4],
                        )
                        for n in tree_nodes
                    ]
                )
                for tree_nodes in payload["trees"][side.value]
            ]
            for side in Side
        }
        return cls(
            num_upper=payload["num_upper"],
            num_lower=payload["num_lower"],
            trees=trees,
            array=array,
        )
