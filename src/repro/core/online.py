"""Online personalized maximum biclique search: PMBC-OL and PMBC-OL*.

``pmbc_online`` implements Algorithm 1: extract the two-hop subgraph
``H_q`` (the answer lives entirely inside it — Lemma 1), seed with a
greedy biclique, then run the progressive-bounding maximum biclique
search.  ``pmbc_online_star`` is Algorithm 5: the same search
accelerated by the precomputed (α,β)-core bounds of Section VI-C
(Lemma 9 vertex pruning plus the prefix/suffix bounds inside
Branch&Bound).
"""

from __future__ import annotations

from repro.core.query import QueryRequest, as_request
from repro.core.result import Biclique
from repro.corenum.bounds import CoreBounds
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.subgraph import LocalGraph, two_hop_subgraph
from repro.kernel import is_packed_kernel, resolve_kernel
from repro.kernel.packed import two_hop_packed
from repro.mbc.greedy import greedy_biclique
from repro.mbc.progressive import SearchOptions, maximum_biclique_local
from repro.objectives import DEFAULT_OBJECTIVE, Objective, get_objective
from repro.obs.trace import current_trace


def pmbc_online(
    graph: BipartiteGraph,
    side: Side | QueryRequest,
    q: int | None = None,
    tau_u: int = 1,
    tau_l: int = 1,
    seed: Biclique | None = None,
    bounds: CoreBounds | None = None,
    max_u: int | None = None,
    max_l: int | None = None,
    use_two_hop_reduction: bool = True,
    kernel: str | None = None,
    objective: str = DEFAULT_OBJECTIVE,
) -> Biclique | None:
    """The personalized maximum biclique ``C^q_{τU,τL}`` (Definition 3).

    Parameters
    ----------
    graph, side, q:
        The bipartite graph and the query vertex (layer + id).  A
        single :class:`~repro.core.query.QueryRequest` may replace
        ``side``/``q``/``tau_u``/``tau_l``.
    tau_u, tau_l:
        Layer-size constraints on the answer (≥ 1).
    seed:
        An optional known valid biclique containing ``q`` that already
        satisfies the constraints — used as a search lower bound
        (Lemma 7 cost-sharing).  The greedy seed is computed regardless
        and the larger of the two is used.
    bounds:
        Precomputed :class:`~repro.corenum.bounds.CoreBounds`; when
        given, the search runs as PMBC-OL*.
    max_u, max_l:
        Optional Lemma 6 caps on the answer shape, used by the index
        constructor.  They are redundant for correctness (any
        constraint-valid candidate obeys them) and only prune search.
    kernel:
        Compute kernel for the search (``"bitset"``/``"set"``/
        ``"words"``); None defers to
        :func:`repro.kernel.default_kernel`.  All kernels return
        identical answers.
    objective:
        Query-family name from the :mod:`repro.objectives` registry
        (default ``"pmbc"``); ``"balanced"`` maximizes ``min(|U|,|L|)``
        and returns the trimmed ``k×k`` answer.

    Returns the objective-maximal biclique containing ``q`` with
    ``|U| ≥ tau_u`` and ``|L| ≥ tau_l``, or None when none exists.
    """
    request = as_request(side, q, tau_u, tau_l, objective=objective)
    side, q, tau_u, tau_l, objective = request.key
    _validate_query(graph, side, q, tau_u, tau_l)
    kernel = resolve_kernel(kernel)
    trace = current_trace()
    with trace.span("two_hop_extract"):
        local = extract_local(graph, side, q, kernel)
    _trace_twohop(trace, local)
    return pmbc_online_local(
        local,
        tau_u,
        tau_l,
        seed=seed,
        bounds=bounds,
        max_u=max_u,
        max_l=max_l,
        use_two_hop_reduction=use_two_hop_reduction,
        kernel=kernel,
        objective=objective,
    )


def pmbc_online_local(
    local: LocalGraph,
    tau_u: int,
    tau_l: int,
    seed: Biclique | None = None,
    bounds: CoreBounds | None = None,
    max_u: int | None = None,
    max_l: int | None = None,
    use_two_hop_reduction: bool = True,
    kernel: str | None = None,
    objective: str | Objective | None = None,
) -> Biclique | None:
    """PMBC-OL on an already-extracted two-hop subgraph.

    The index constructor calls the search many times per vertex with
    different constraints; reusing the extracted ``H_q`` avoids
    rebuilding it per tree node.  Constraints, caps, seed and result
    are all in global coordinates; the local orientation is resolved
    here via ``local.upper_side``.
    """
    side = local.upper_side
    if side is Side.UPPER:
        tau_p, tau_w = tau_u, tau_l
        max_p, max_w = max_u, max_l
    else:
        tau_p, tau_w = tau_l, tau_u
        max_p, max_w = max_l, max_u

    obj = get_objective(objective)
    tau_p, tau_w = obj.effective_floors(tau_p, tau_w)
    kernel = resolve_kernel(kernel)
    local_seed = _best_local_seed(local, seed, side, tau_p, tau_w, kernel, obj)
    options = SearchOptions(
        bounds=bounds,
        max_p=max_p,
        max_w=max_w,
        use_two_hop_reduction=use_two_hop_reduction,
        kernel=kernel,
        objective=obj,
    )
    with current_trace().span("progressive_search"):
        found = maximum_biclique_local(
            local, tau_p, tau_w, local_seed, options
        )
    if found is None:
        return None
    return _finalize_biclique(local, found, obj)


def pmbc_online_star(
    graph: BipartiteGraph,
    side: Side | QueryRequest,
    q: int | None = None,
    tau_u: int = 1,
    tau_l: int = 1,
    bounds: CoreBounds | None = None,
    seed: Biclique | None = None,
    max_u: int | None = None,
    max_l: int | None = None,
    kernel: str | None = None,
    objective: str = DEFAULT_OBJECTIVE,
) -> Biclique | None:
    """PMBC-OL* (Algorithm 5): PMBC-OL with (α,β)-core upper bounds.

    ``bounds`` should be precomputed once per graph (the paper computes
    them offline); when omitted they are computed on the fly, which is
    correct but defeats the purpose for repeated queries.  A single
    :class:`~repro.core.query.QueryRequest` may replace
    ``side``/``q``/``tau_u``/``tau_l``/``objective``.  Non-``"pmbc"``
    objectives ignore the core bounds (not admissible for their score)
    but share every other acceleration.
    """
    from repro.corenum.bounds import compute_bounds

    request = as_request(side, q, tau_u, tau_l, objective=objective)
    side, q, tau_u, tau_l, objective = request.key
    if bounds is None and get_objective(objective).uses_size_bounds:
        bounds = compute_bounds(graph)
    return pmbc_online(
        graph,
        side,
        q,
        tau_u,
        tau_l,
        seed=seed,
        bounds=bounds,
        max_u=max_u,
        max_l=max_l,
        kernel=kernel,
        objective=objective,
    )


def pmbc_online_batch(
    graph: BipartiteGraph,
    requests,
    bounds: CoreBounds | None = None,
    use_core_bounds: bool = True,
    kernel: str | None = None,
) -> list[Biclique | None]:
    """Answer a batch of requests with shared offline work.

    The batch analogue of :func:`pmbc_online_star`: the (α,β)-core
    bounds are computed **once** for the whole batch (instead of once
    per call), requests are grouped by query vertex so each distinct
    two-hop subgraph is extracted exactly once, and each group is
    answered from that one shared extraction
    (:func:`answer_group_local`): duplicate requests share one search,
    and the per-extraction seed/reduction caches of
    :mod:`repro.kernel.batch` amortize the progressive rounds across
    the rest.  Answers come back in request order.
    """
    from repro.corenum.bounds import compute_bounds

    reqs = [QueryRequest.of(r) for r in requests]
    kernel = resolve_kernel(kernel)
    for request in reqs:
        _validate_query(
            graph, request.side, request.vertex, request.tau_u, request.tau_l
        )
    if bounds is None and use_core_bounds and reqs:
        bounds = compute_bounds(graph)
    results: list[Biclique | None] = [None] * len(reqs)
    order = sorted(
        range(len(reqs)),
        key=lambda i: (reqs[i].side.value, reqs[i].vertex),
    )
    trace = current_trace()
    start = 0
    while start < len(order):
        side = reqs[order[start]].side
        vertex = reqs[order[start]].vertex
        stop = start
        while stop < len(order) and (
            reqs[order[stop]].side is side
            and reqs[order[stop]].vertex == vertex
        ):
            stop += 1
        with trace.span("two_hop_extract"):
            local = extract_local(graph, side, vertex, kernel)
        _trace_twohop(trace, local)
        group = order[start:stop]
        answers = answer_group_local(
            local,
            [reqs[i] for i in group],
            bounds=bounds,
            kernel=kernel,
        )
        for i, answer in zip(group, answers):
            results[i] = answer
        start = stop
    return results


def answer_group_local(
    local: LocalGraph,
    requests: list[QueryRequest],
    bounds: CoreBounds | None = None,
    kernel: str | None = None,
) -> list[Biclique | None]:
    """Answer requests sharing one extracted ``H_q`` (batch inner loop).

    All requests must target the vertex ``local`` was extracted around.
    Identical requests — same τ floors and objective — share a single
    progressive search: the first occurrence runs it and duplicates
    reuse its answer, tallied by the ``batch_dedup`` trace counter
    (fires identically on every kernel).  Distinct requests still share
    the extraction's packed view plus the memoized seeds and reduction
    fixpoints of :mod:`repro.kernel.batch`.
    """
    answered: dict[tuple[int, int, str], Biclique | None] = {}
    trace = current_trace()
    results: list[Biclique | None] = []
    for request in requests:
        key = (request.tau_u, request.tau_l, request.objective)
        if key in answered:
            if trace.enabled:
                trace.add("batch_dedup")
            results.append(answered[key])
            continue
        answer = pmbc_online_local(
            local,
            request.tau_u,
            request.tau_l,
            bounds=bounds,
            kernel=kernel,
            objective=request.objective,
        )
        answered[key] = answer
        results.append(answer)
    return results


def extract_local(
    graph: BipartiteGraph, side: Side, q: int, kernel: str
) -> LocalGraph:
    """Extract ``H_q`` via the extractor matched to the compute kernel.

    The packed kernels (``"bitset"``/``"words"``) use the fused
    extractor (adjacency packed straight into bitmasks, sets deferred);
    both extractors produce interchangeable ``LocalGraph`` views of the
    same subgraph.
    """
    if is_packed_kernel(kernel):
        return two_hop_packed(graph, side, q)
    return two_hop_subgraph(graph, side, q)


def _trace_twohop(trace, local: LocalGraph) -> None:
    """Record the size of a freshly extracted two-hop subgraph."""
    if trace.enabled:
        trace.record_twohop(
            local.num_upper,
            local.num_lower,
            local.num_edges,
        )


def _validate_query(
    graph: BipartiteGraph, side: Side, q: int, tau_u: int, tau_l: int
) -> None:
    if not 0 <= q < graph.num_vertices_on(side):
        raise ValueError(
            f"query vertex {q} out of range for the {side.value} layer"
        )
    if tau_u < 1 or tau_l < 1:
        raise ValueError(
            f"size constraints must be >= 1, got ({tau_u}, {tau_l})"
        )


def _best_local_seed(
    local: LocalGraph,
    seed: Biclique | None,
    side: Side,
    tau_p: int,
    tau_w: int,
    kernel: str | None = None,
    objective: Objective | None = None,
) -> tuple[frozenset[int], frozenset[int]] | None:
    """The better-scoring of the greedy seed and the caller's seed."""
    obj = get_objective(objective)
    best = greedy_biclique(local, tau_p, tau_w, kernel=kernel)
    if seed is not None:
        local_seed = _seed_to_local(local, seed, side)
        if local_seed is not None and (
            len(local_seed[0]) >= tau_p and len(local_seed[1]) >= tau_w
        ):
            if best is None or (
                obj.score(len(local_seed[0]), len(local_seed[1]))
                > obj.score(len(best[0]), len(best[1]))
            ):
                best = local_seed
    return best


def _seed_to_local(
    local: LocalGraph, seed: Biclique, side: Side
) -> tuple[frozenset[int], frozenset[int]] | None:
    """Map a global-coordinate seed into local ids (None if outside H_q)."""
    if side is Side.UPPER:
        own_globals, other_globals = seed.upper, seed.lower
    else:
        own_globals, other_globals = seed.lower, seed.upper
    upper_index = local.upper_index()
    lower_index = local.lower_index()
    try:
        upper = frozenset(upper_index[g] for g in own_globals)
        lower = frozenset(lower_index[g] for g in other_globals)
    except KeyError:
        return None
    return upper, lower


def _to_biclique(
    local: LocalGraph, found: tuple[frozenset[int], frozenset[int]]
) -> Biclique:
    side, own, other = local.to_global(found[0], found[1])
    if side is Side.UPPER:
        return Biclique(upper=own, lower=other)
    return Biclique(upper=other, lower=own)


def _finalize_biclique(
    local: LocalGraph,
    found: tuple[frozenset[int], frozenset[int]],
    objective: Objective,
) -> Biclique:
    """Map a local answer to global ids and apply the objective's trim.

    The anchor (when the subgraph is anchored) is passed through so
    trims — e.g. the balanced objective cutting the larger side down to
    ``k`` — never drop the personalized query vertex.
    """
    result = _to_biclique(local, found)
    anchor_upper = anchor_lower = None
    if local.q_local is not None:
        anchor = local.upper_globals[local.q_local]
        if local.upper_side is Side.UPPER:
            anchor_upper = anchor
        else:
            anchor_lower = anchor
    upper, lower = objective.finalize(
        result.upper, result.lower, anchor_upper, anchor_lower
    )
    if upper is result.upper and lower is result.lower:
        return result
    return Biclique(upper=upper, lower=lower)
