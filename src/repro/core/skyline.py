"""The skyline maximal biclique inverted index ``S`` (Section VI-B).

``S[v]`` holds the ids of previously computed personalized maximum
bicliques containing ``v`` whose ``(|U|, |L|)`` shapes are mutually
non-dominated (Definition 5).  During PMBC-IC*, a lookup before each
PMBC-OL run supplies a lower-bound seed (Lemma 7); Lemma 8 bounds
``|S[v]| ≤ deg(v)``.

Entries carry their shape alongside the id, so the per-node hot path of
an index build — dominance maintenance on every insert, constraint
filtering on every lookup — runs on plain ints and only dereferences
the backing :class:`~repro.core.index.BicliqueArray` for the one
biclique a lookup actually returns.  Scan order and tie-breaking
(first strictly-greater edge count wins) are exactly those of the
previous object-dereferencing implementation, so builds — and their
serialized indexes — are unchanged byte for byte.
"""

from __future__ import annotations

import threading

from repro.core.index import BicliqueArray
from repro.core.result import Biclique
from repro.graph.bipartite import BipartiteGraph, Side


class SkylineIndex:
    """Per-vertex skyline sets over a shared biclique array.

    Thread-safe when constructed with ``locking=True`` (used by the
    parallel builder of Algorithm 6, standing in for the paper's atomic
    fetch-and-add appends).
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        array: BicliqueArray,
        locking: bool = False,
    ) -> None:
        self._array = array
        #: Per-vertex skylines as ``(id, |U|, |L|)`` tuples — shapes are
        #: denormalized so scans never touch the biclique objects.
        self._entries: dict[Side, list[list[tuple[int, int, int]]]] = {
            side: [[] for __ in range(graph.num_vertices_on(side))]
            for side in Side
        }
        self._lock = threading.Lock() if locking else None

    def entries(self, side: Side, v: int) -> list[int]:
        """The current skyline biclique ids of vertex ``v`` (a copy)."""
        return [entry[0] for entry in self._entries[side][v]]

    def lookup(
        self, side: Side, v: int, tau_u: int, tau_l: int
    ) -> Biclique | None:
        """The largest stored biclique containing ``v`` that satisfies
        the constraints — a valid lower-bound seed (Lemma 7)."""
        if self._lock is not None:
            with self._lock:
                entries = list(self._entries[side][v])
        else:
            entries = self._entries[side][v]
        best_id = -1
        best_edges = -1
        for biclique_id, num_u, num_l in entries:
            if num_u < tau_u or num_l < tau_l:
                continue
            if num_u * num_l > best_edges:
                best_edges = num_u * num_l
                best_id = biclique_id
        if best_id < 0:
            return None
        return self._array[best_id]

    def update(self, biclique: Biclique, biclique_id: int) -> None:
        """Register a newly computed biclique with every vertex it contains.

        Per-vertex skylines are maintained: dominated entries are
        evicted and the insert is skipped when an existing entry
        dominates the new shape.
        """
        if self._lock is not None:
            with self._lock:
                self._update(biclique, biclique_id)
        else:
            self._update(biclique, biclique_id)

    def _update(self, biclique: Biclique, biclique_id: int) -> None:
        num_u, num_l = biclique.shape
        for side in Side:
            for v in biclique.vertices(side):
                self._insert(side, v, biclique_id, num_u, num_l)

    def _insert(
        self, side: Side, v: int, biclique_id: int, num_u: int, num_l: int
    ) -> None:
        entries = self._entries[side][v]
        kept: list[tuple[int, int, int]] = []
        for entry in entries:
            __, ex_u, ex_l = entry
            if ex_u >= num_u and ex_l >= num_l:
                return  # an existing shape dominates: nothing to add
            if not (num_u >= ex_u and num_l >= ex_l):
                kept.append(entry)
        kept.append((biclique_id, num_u, num_l))
        self._entries[side][v] = kept

    def max_entries(self) -> int:
        """The largest per-vertex skyline (tests check Lemma 8)."""
        return max(
            (
                len(entry)
                for side in Side
                for entry in self._entries[side]
            ),
            default=0,
        )
