"""The skyline maximal biclique inverted index ``S`` (Section VI-B).

``S[v]`` holds the ids of previously computed personalized maximum
bicliques containing ``v`` whose ``(|U|, |L|)`` shapes are mutually
non-dominated (Definition 5).  During PMBC-IC*, a lookup before each
PMBC-OL run supplies a lower-bound seed (Lemma 7); Lemma 8 bounds
``|S[v]| ≤ deg(v)``.
"""

from __future__ import annotations

import threading

from repro.core.index import BicliqueArray
from repro.core.result import Biclique
from repro.graph.bipartite import BipartiteGraph, Side


class SkylineIndex:
    """Per-vertex skyline sets over a shared biclique array.

    Thread-safe when constructed with ``locking=True`` (used by the
    parallel builder of Algorithm 6, standing in for the paper's atomic
    fetch-and-add appends).
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        array: BicliqueArray,
        locking: bool = False,
    ) -> None:
        self._array = array
        self._entries: dict[Side, list[list[int]]] = {
            side: [[] for __ in range(graph.num_vertices_on(side))]
            for side in Side
        }
        self._lock = threading.Lock() if locking else None

    def entries(self, side: Side, v: int) -> list[int]:
        """The current skyline biclique ids of vertex ``v`` (a copy)."""
        return list(self._entries[side][v])

    def lookup(
        self, side: Side, v: int, tau_u: int, tau_l: int
    ) -> Biclique | None:
        """The largest stored biclique containing ``v`` that satisfies
        the constraints — a valid lower-bound seed (Lemma 7)."""
        best: Biclique | None = None
        if self._lock is not None:
            with self._lock:
                ids = list(self._entries[side][v])
        else:
            ids = self._entries[side][v]
        for biclique_id in ids:
            candidate = self._array[biclique_id]
            if not candidate.satisfies(tau_u, tau_l):
                continue
            if best is None or candidate.num_edges > best.num_edges:
                best = candidate
        return best

    def update(self, biclique: Biclique, biclique_id: int) -> None:
        """Register a newly computed biclique with every vertex it contains.

        Per-vertex skylines are maintained: dominated entries are
        evicted and the insert is skipped when an existing entry
        dominates the new shape.
        """
        if self._lock is not None:
            with self._lock:
                self._update(biclique, biclique_id)
        else:
            self._update(biclique, biclique_id)

    def _update(self, biclique: Biclique, biclique_id: int) -> None:
        for side in Side:
            for v in biclique.vertices(side):
                self._insert(side, v, biclique, biclique_id)

    def _insert(
        self, side: Side, v: int, biclique: Biclique, biclique_id: int
    ) -> None:
        entries = self._entries[side][v]
        kept: list[int] = []
        for existing_id in entries:
            existing = self._array[existing_id]
            if existing.dominates(biclique):
                return  # the new shape adds nothing
            if not biclique.dominates(existing):
                kept.append(existing_id)
        kept.append(biclique_id)
        self._entries[side][v] = kept

    def max_entries(self) -> int:
        """The largest per-vertex skyline (tests check Lemma 8)."""
        return max(
            (
                len(entry)
                for side in Side
                for entry in self._entries[side]
            ),
            default=0,
        )
