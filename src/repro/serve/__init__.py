"""repro.serve — the production query-serving layer.

Turns the in-process query stack (PMBC-Index, the caching engine,
online search) into a shared, instrumented service:

- :class:`~repro.serve.service.PMBCService` — bounded request queue
  with admission control, worker pool, per-request deadlines,
  single-flight deduplication, pluggable thread/process execution
  (see :mod:`repro.exec`), a vertex-grouped batch path
  (:meth:`~repro.serve.service.PMBCService.query_batch`), and
  index → execution → online degradation;
- :class:`~repro.serve.server.PMBCServer` — ``http.server`` JSON
  front-end (``/query``, ``/query_batch``, ``/healthz``,
  ``/metrics``, ``/stats``), one thread per connection;
- :class:`~repro.serve.aserver.AsyncPMBCServer` — the asyncio
  front-end serving the same schema while multiplexing many open
  connections on one event loop; pairs with the shard router
  (:class:`~repro.shard.ShardedService`) for ``pmbc serve --shards N``;
- :class:`~repro.serve.client.PMBCClient` — stdlib client mapping
  HTTP errors back onto the service exception types;
- :mod:`~repro.serve.metrics` — dependency-free counters, gauges and
  fixed-bucket latency histograms (p50/p95/p99);
- :mod:`~repro.serve.singleflight` — in-flight request collapsing.

See ``docs/serving.md`` for architecture and the endpoint reference,
and ``pmbc serve`` for the CLI entry point.
"""

from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.serve.singleflight import (
    FlightResult,
    SingleFlight,
    SingleFlightTimeout,
)
from repro.serve.service import (
    BackendError,
    BatchResult,
    DeadlineExceededError,
    InvalidRequestError,
    PMBCService,
    QueryResult,
    QueueFullError,
    ServeError,
    ServiceClosedError,
    ServiceConfig,
    Submission,
)
from repro.serve.server import PMBCServer, serve_forever
from repro.serve.aserver import AsyncPMBCServer, aserve_forever
from repro.serve.client import PMBCClient, RemoteServiceError

__all__ = [
    "PMBCService",
    "ServiceConfig",
    "QueryResult",
    "BatchResult",
    "Submission",
    "PMBCServer",
    "serve_forever",
    "AsyncPMBCServer",
    "aserve_forever",
    "PMBCClient",
    "RemoteServiceError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SingleFlight",
    "FlightResult",
    "SingleFlightTimeout",
    "ServeError",
    "InvalidRequestError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServiceClosedError",
    "BackendError",
]
