"""A thin stdlib client for the :mod:`repro.serve` HTTP front-end.

Maps the server's error statuses back onto the service exception
types, so callers handle ``QueueFullError`` / ``DeadlineExceededError``
identically whether they talk to an in-process :class:`PMBCService` or
a remote one.
"""

from __future__ import annotations

import json
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen

from repro.core.query import QueryRequest
from repro.serve.service import (
    BackendError,
    DeadlineExceededError,
    InvalidRequestError,
    QueueFullError,
    ServeError,
    ServiceClosedError,
)

__all__ = ["PMBCClient", "RemoteServiceError"]

_STATUS_TO_ERROR: dict[int, type[ServeError]] = {
    400: InvalidRequestError,
    429: QueueFullError,
    503: ServiceClosedError,
    504: DeadlineExceededError,
    500: BackendError,
}


class RemoteServiceError(ServeError):
    """The server answered with an unexpected status or payload."""


class PMBCClient:
    """Talk to a running ``pmbc serve`` instance.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8642``.
    timeout:
        Socket timeout per HTTP call, seconds.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport

    def _request(
        self, path: str, payload: dict | None = None
    ) -> tuple[int, bytes]:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        try:
            with urlopen(
                Request(url, data=data, headers=headers),
                timeout=self.timeout,
            ) as response:
                return response.status, response.read()
        except HTTPError as exc:
            return exc.code, exc.read()
        except URLError as exc:
            raise RemoteServiceError(
                f"cannot reach {url}: {exc.reason}"
            ) from None

    def _json(self, path: str, payload: dict | None = None) -> dict:
        status, body = self._request(path, payload)
        try:
            decoded = json.loads(body)
        except ValueError:
            raise RemoteServiceError(
                f"non-JSON response (status {status}) from {path}"
            ) from None
        if status == 200:
            return decoded
        error_cls = _STATUS_TO_ERROR.get(status, RemoteServiceError)
        raise error_cls(decoded.get("detail", f"HTTP {status}"))

    # ------------------------------------------------------------------
    # endpoints

    def query(
        self,
        side: str | QueryRequest,
        vertex: int | None = None,
        tau_u: int = 1,
        tau_l: int = 1,
        label: str | None = None,
        deadline: float | None = None,
        verify: bool = False,
        explain: bool = False,
        objective: str = "pmbc",
    ) -> dict:
        """POST ``/query``; returns the decoded response payload.

        ``side`` may be a single
        :class:`~repro.core.query.QueryRequest` replacing the
        ``side``/``vertex``/``tau_u``/``tau_l``/``objective``
        arguments.  ``objective`` selects the query family (e.g.
        ``"balanced"``); the server rejects unregistered names with
        :class:`~repro.serve.service.InvalidRequestError`.  With
        ``explain=True`` the payload carries a ``"trace"`` key — the
        search-trace summary (see docs/observability.md).  Raises the
        matching :class:`~repro.serve.service.ServeError` subclass on a
        non-200 answer.
        """
        if isinstance(side, QueryRequest):
            if vertex is not None or label is not None:
                raise InvalidRequestError(
                    "pass either a QueryRequest or raw arguments, not both"
                )
            payload = side.to_json()
        else:
            payload = {"side": side, "tau_u": tau_u, "tau_l": tau_l}
            if label is not None:
                payload["label"] = label
            elif vertex is not None:
                payload["vertex"] = vertex
            else:
                raise InvalidRequestError("provide vertex or label")
            if objective != "pmbc":
                payload["objective"] = objective
        if deadline is not None:
            payload["deadline"] = deadline
        if verify:
            payload["verify"] = True
        if explain:
            payload["explain"] = True
        return self._json("/query", payload)

    def query_batch(
        self,
        queries,
        deadline: float | None = None,
        explain: bool = False,
    ) -> dict:
        """POST ``/query_batch``; returns the decoded batch payload.

        ``queries`` is a sequence of
        :class:`~repro.core.query.QueryRequest`, dicts (``side`` plus
        ``vertex`` or ``label``, optional
        ``tau_u``/``tau_l``/``objective``), or ``(side, vertex[,
        tau_u[, tau_l[, objective]]])`` tuples.  The whole batch
        shares one admission and one ``deadline`` on the server; with
        ``explain=True`` the payload carries the batch's ``"trace"``.
        """
        items: list[dict] = []
        for query in queries:
            if isinstance(query, dict):
                items.append(query)
            else:
                items.append(QueryRequest.of(query).to_json())
        if not items:
            raise InvalidRequestError("provide at least one query")
        payload: dict = {"queries": items}
        if deadline is not None:
            payload["deadline"] = deadline
        if explain:
            payload["explain"] = True
        return self._json("/query_batch", payload)

    def update(self, updates) -> dict:
        """POST ``/update``; returns the decoded update payload.

        ``updates`` is a sequence of ``("insert"|"delete", u, v)``
        triples or ``{"action", "u", "v"}`` dicts.  The server applies
        them as one batch — incremental bound repair, scoped cache /
        index invalidation — and answers with the
        :class:`~repro.serve.service.UpdateResult` fields
        (``applied``, ``noops``, ``inserts``, ``deletes``,
        ``trees_repaired``, ``evicted``, ``cascade``, ``total_ms``).
        """
        items: list[dict] = []
        for update in updates:
            if isinstance(update, dict):
                items.append(update)
            else:
                try:
                    action, u, v = update
                except (TypeError, ValueError):
                    raise InvalidRequestError(
                        f"update must be (action, u, v), got {update!r}"
                    ) from None
                items.append({"action": action, "u": u, "v": v})
        if not items:
            raise InvalidRequestError("provide at least one update")
        return self._json("/update", {"updates": items})

    def query_get(self, **params) -> dict:
        """GET ``/query`` with raw query-string parameters."""
        return self._json("/query?" + urlencode(params))

    def healthz(self) -> bool:
        """GET ``/healthz``; True when the service reports healthy."""
        status, __ = self._request("/healthz")
        return status == 200

    def stats(self) -> dict:
        """GET ``/stats``; the service's JSON snapshot."""
        return self._json("/stats")

    def debug_traces(
        self, limit: int | None = None, trace_id: str | None = None
    ) -> dict:
        """GET ``/debug/traces``: recent trace summaries or one by id.

        Parameters
        ----------
        limit:
            Return at most this many summaries (server default 20).
        trace_id:
            Fetch one specific trace instead; raises
            :class:`RemoteServiceError` subclasses on 404.
        """
        params: dict = {}
        if trace_id is not None:
            params["id"] = trace_id
        elif limit is not None:
            params["limit"] = limit
        query = ("?" + urlencode(params)) if params else ""
        return self._json("/debug/traces" + query)

    def metrics(self) -> str:
        """GET ``/metrics``; the Prometheus text exposition."""
        status, body = self._request("/metrics")
        if status != 200:
            raise RemoteServiceError(f"/metrics answered HTTP {status}")
        return body.decode()
