"""An asyncio HTTP front-end multiplexing many open connections.

:class:`AsyncPMBCServer` serves the same JSON schema and endpoints as
the threaded :class:`~repro.serve.server.PMBCServer` (it reuses the
same wire translation helpers, so the two cannot drift), but holds
connections on a single event loop instead of one thread each: a
request is **admitted** to the service without blocking
(:meth:`~repro.serve.service.PMBCService.admit` /
:meth:`~repro.serve.service.ShardedService.admit`), its future is
awaited as an asyncio future, and the connection costs no thread
while the worker pool computes.  Thousands of idle keep-alive
connections are then just loop-registered sockets — the shape the
sharded router (:mod:`repro.shard`) needs in front of N shards.

Deadline semantics match the blocking path exactly: when the await
times out, the front-end runs the service's settle race
(:meth:`~repro.serve.service.Submission.expire`) so either the 504 is
accounted ``deadline_exceeded`` on the service or the worker's
just-in-time answer is returned.

The server accepts any object with the ``PMBCService`` request
surface — a plain service or a :class:`~repro.shard.ShardedService`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import sys
import threading
from http.client import responses as _http_reasons
from urllib.parse import parse_qs, urlparse

from repro.serve.server import (
    _BATCH_FIELDS,
    _QUERY_FIELDS,
    _UPDATE_FIELDS,
    _parse_flag,
    _parse_float,
    _parse_int,
    _reject_unknown,
    build_query_request,
    parse_batch_item,
    parse_update_item,
    render_batch_result,
    render_result,
    render_update_result,
)
from repro.serve.service import (
    InvalidRequestError,
    ServeError,
    Submission,
)

__all__ = ["AsyncPMBCServer", "aserve_forever"]

_MAX_BODY_BYTES = 8 * 1024 * 1024


class AsyncPMBCServer:
    """Owns an ``asyncio.start_server`` loop bound to a service.

    The event loop runs on a dedicated background thread so the
    blocking API mirrors :class:`~repro.serve.server.PMBCServer`:
    ``start()`` returns once the socket is live, ``shutdown()`` stops
    the loop, joins its thread, and closes the service.  ``port=0``
    picks a free port; read it back from :attr:`address`.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 8642,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self._host = host
        self._port = port
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._address: tuple[str, int] | None = None
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    @property
    def url(self) -> str:
        """Base URL of the bound socket."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> AsyncPMBCServer:
        """Run the loop in a daemon thread; returns once bound."""
        if self._thread is None:
            self._ready.clear()
            self._startup_error = None
            self._thread = threading.Thread(
                target=self._run, name="pmbc-aserve-loop", daemon=True
            )
            self._thread.start()
            self._ready.wait()
            if self._startup_error is not None:
                self._thread.join()
                self._thread = None
                raise self._startup_error
        return self

    def serve_forever(self) -> None:
        """Serve on the loop thread, blocking the caller until shutdown."""
        self.start()
        thread = self._thread
        while thread is not None and thread.is_alive():
            thread.join(timeout=1.0)

    def shutdown(self) -> None:
        """Stop the loop, join its thread, then close the service.

        Same teardown discipline as the threaded server: the acceptor
        (here, the event loop) is fully stopped and joined *before*
        the service — and with it the executor — goes away.
        """
        if self._thread is not None:
            loop, stop = self._loop, self._stop
            if loop is not None and stop is not None:
                with contextlib.suppress(RuntimeError):
                    loop.call_soon_threadsafe(stop.set)
            self._thread.join()
            self._thread = None
        self.service.close()

    def __enter__(self) -> AsyncPMBCServer:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - defensive
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_conn, self._host, self._port
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._address = server.sockets[0].getsockname()[:2]
        self._ready.set()
        async with server:
            await self._stop.wait()

    # ------------------------------------------------------------------
    # connection handling

    async def _handle_conn(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._respond(
                        writer,
                        400,
                        {"error": "BadRequest", "detail": "malformed request line"},
                        keep_alive=False,
                    )
                    break
                method, target, version = parts
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length") or 0)
                except ValueError:
                    length = -1
                if not 0 <= length <= _MAX_BODY_BYTES:
                    await self._respond(
                        writer,
                        400,
                        {"error": "BadRequest", "detail": "bad content length"},
                        keep_alive=False,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                status, payload, content_type = await self._dispatch(
                    method, target, body
                )
                if self.verbose:
                    print(
                        f"aserve: {method} {target} -> {status}",
                        file=sys.stderr,
                    )
                await self._respond(
                    writer,
                    status,
                    payload,
                    content_type=content_type,
                    keep_alive=keep_alive,
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        content_type: str = "application/json",
        keep_alive: bool = True,
    ) -> None:
        if isinstance(payload, bytes):
            body = payload
        else:
            body = json.dumps(payload, indent=2).encode() + b"\n"
        reason = _http_reasons.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        )
        if status == 429:
            head += "Retry-After: 1\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing

    #: Routes per method, for 404-vs-405 discrimination.
    _GET_ROUTES = ("/healthz", "/metrics", "/stats", "/debug/traces", "/query")
    _POST_ROUTES = ("/query", "/query_batch", "/update")

    def _unknown(self, method: str, route: str) -> tuple[int, dict, str]:
        """404 for unknown paths, 405 when the path exists elsewhere."""
        if route in self._GET_ROUTES or route in self._POST_ROUTES:
            return (
                405,
                {
                    "error": "MethodNotAllowed",
                    "detail": f"{route!r} does not accept {method}",
                },
                "application/json",
            )
        return (
            404,
            {"error": "NotFound", "detail": f"no route {route!r}"},
            "application/json",
        )

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, object, str]:
        parsed = urlparse(target)
        route = parsed.path.rstrip("/") or "/"
        if method == "GET":
            params = {
                key: values[-1]
                for key, values in parse_qs(parsed.query).items()
            }
            if route == "/healthz":
                if self.service.healthy():
                    return 200, {"status": "ok"}, "application/json"
                return 503, {"status": "unavailable"}, "application/json"
            if route == "/metrics":
                return (
                    200,
                    self.service.metrics.render().encode(),
                    "text/plain; version=0.0.4",
                )
            if route == "/stats":
                return 200, self.service.stats(), "application/json"
            if route == "/debug/traces":
                return self._debug_traces(params)
            if route == "/query":
                return await self._query(params)
            return self._unknown(method, route)
        if method == "POST":
            if route not in self._POST_ROUTES:
                return self._unknown(method, route)
            try:
                params = json.loads(body or b"{}")
                if not isinstance(params, dict):
                    raise ValueError("body must be a JSON object")
            except ValueError as exc:
                return (
                    400,
                    {"error": "InvalidRequestError", "detail": str(exc)},
                    "application/json",
                )
            if route == "/query_batch":
                return await self._query_batch(params)
            if route == "/update":
                return await self._update(params)
            return await self._query(params)
        return (
            405,
            {"error": "MethodNotAllowed", "detail": f"no {method} routes"},
            "application/json",
        )

    def _debug_traces(self, params: dict) -> tuple[int, dict, str]:
        ring = self.service.traces
        trace_id = params.get("id")
        if trace_id is not None:
            trace = ring.find(str(trace_id))
            if trace is None:
                return (
                    404,
                    {
                        "error": "NotFound",
                        "detail": f"no buffered trace {trace_id!r}",
                    },
                    "application/json",
                )
            return 200, {"trace": trace}, "application/json"
        try:
            limit = _parse_int(params, "limit", default=20)
        except ServeError as exc:
            return self._error(exc)
        return (
            200,
            {
                "buffered": len(ring),
                "capacity": ring.capacity,
                "recorded": ring.total_recorded,
                "traces": ring.snapshot(limit=limit),
            },
            "application/json",
        )

    @staticmethod
    def _error(exc: ServeError) -> tuple[int, dict, str]:
        return (
            exc.http_status,
            {"error": type(exc).__name__, "detail": str(exc)},
            "application/json",
        )

    async def _settle(self, submission: Submission):
        """Await a submission, running the expiry race on timeout.

        The concurrent future is shielded from ``wait_for``'s
        cancellation — cancelling it would leave the request
        unsettleable by both the worker and :meth:`Submission.expire`.
        After ``expire()`` the future is terminal either way, so the
        final await returns the worker's answer or raises the 504.
        """
        wrapped = asyncio.wrap_future(submission.future)
        if submission.budget is None:
            return await wrapped
        try:
            return await asyncio.wait_for(
                asyncio.shield(wrapped), timeout=submission.budget
            )
        except asyncio.TimeoutError:
            submission.expire()
            return await wrapped

    async def _query(self, params: dict) -> tuple[int, dict, str]:
        graph = self.service.graph
        try:
            _reject_unknown(params, _QUERY_FIELDS, "query")
            request = build_query_request(graph, params, "query")
            deadline = _parse_float(params, "deadline")
            verify = _parse_flag(params, "verify")
            explain = _parse_flag(params, "explain")
            submission = self.service.admit(
                request, deadline=deadline, explain=explain
            )
        except ServeError as exc:
            return self._error(exc)
        try:
            result = await self._settle(submission)
        except ServeError as exc:
            return self._error(exc)
        return 200, render_result(graph, result, request, verify), (
            "application/json"
        )

    async def _query_batch(self, params: dict) -> tuple[int, dict, str]:
        graph = self.service.graph
        try:
            _reject_unknown(params, _BATCH_FIELDS, "batch")
            queries = params.get("queries")
            if not isinstance(queries, list) or not queries:
                raise InvalidRequestError(
                    "'queries' must be a non-empty JSON array"
                )
            requests = [
                parse_batch_item(graph, item, position)
                for position, item in enumerate(queries)
            ]
            deadline = _parse_float(params, "deadline")
            explain = _parse_flag(params, "explain")
            submission = self.service.admit_batch(
                requests, deadline=deadline, explain=explain
            )
        except ServeError as exc:
            return self._error(exc)
        try:
            result = await self._settle(submission)
        except ServeError as exc:
            return self._error(exc)
        return 200, render_batch_result(graph, requests, result), (
            "application/json"
        )

    async def _update(self, params: dict) -> tuple[int, dict, str]:
        try:
            _reject_unknown(params, _UPDATE_FIELDS, "update")
            updates = params.get("updates")
            if not isinstance(updates, list) or not updates:
                raise InvalidRequestError(
                    "'updates' must be a non-empty JSON array"
                )
            ops = [
                parse_update_item(item, position)
                for position, item in enumerate(updates)
            ]
        except ServeError as exc:
            return self._error(exc)
        # update_batch blocks (bounded peeling cascade + tree repairs);
        # run it off the loop so keep-alive connections stay serviced.
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None, self.service.update_batch, ops
            )
        except ServeError as exc:
            return self._error(exc)
        return 200, render_update_result(result), "application/json"


def aserve_forever(
    service,
    host: str = "127.0.0.1",
    port: int = 8642,
    verbose: bool = False,
) -> None:
    """Convenience: run an async server until interrupted."""
    server = AsyncPMBCServer(service, host=host, port=port, verbose=verbose)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
