"""A stdlib HTTP/JSON front-end over :class:`PMBCService`.

Endpoints:

- ``GET /query?side=upper&vertex=3&tau_u=2&tau_l=2`` (or POST the same
  fields as a JSON body; ``label`` may replace ``vertex``,
  ``objective=balanced`` selects another registered query family, and
  ``verify=1`` attaches a structural answer certificate from
  :mod:`repro.core.verify`) — answer a personalized query;
- ``POST /query_batch`` with ``{"queries": [{...}, ...], "deadline":
  s}`` — answer many queries in one admission; the service groups the
  batch by query vertex so shared two-hop extractions are paid once;
- ``POST /update`` with ``{"updates": [{"action": "insert", "u": 3,
  "v": 5}, ...]}`` — apply streaming edge insertions/deletions to the
  live service: core bounds are repaired incrementally, and only the
  affected two-hop neighborhoods' cache entries / adaptive trees /
  index trees are invalidated (see docs/dynamic.md);
- ``GET /healthz`` — liveness;
- ``GET /metrics`` — Prometheus-style text exposition;
- ``GET /stats`` — JSON service snapshot;
- ``GET /debug/traces`` — recent search-trace summaries, most recent
  first (``limit=N`` truncates, ``id=...`` fetches one trace by id).

``explain=1`` on ``/query`` (or ``"explain": true`` in a POST body /
batch body) attaches the computation's search trace to the response —
see docs/observability.md.

Requests are validated against schema version :data:`SCHEMA_VERSION`
(echoed in every success payload): an unknown field or an unregistered
``objective`` is a typed 400 error body, never a silent default or an
opaque 500.

Service errors map to HTTP statuses: invalid request → 400, queue full
→ 429 (with ``Retry-After``), deadline exceeded → 504, shutting down →
503, backend exhaustion → 500.  The server is a
``ThreadingHTTPServer``: each connection gets a thread, but actual
query work is bounded by the service's queue and worker pool.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.query import QueryRequest
from repro.core.verify import check_personalized_answer
from repro.graph.bipartite import Side
from repro.serve.service import (
    InvalidRequestError,
    PMBCService,
    QueryResult,
    QueueFullError,
    ServeError,
)

__all__ = [
    "SCHEMA_VERSION",
    "PMBCRequestHandler",
    "PMBCServer",
    "serve_forever",
    "build_query_request",
    "parse_batch_item",
    "parse_update_item",
    "render_biclique",
    "render_result",
    "render_batch_result",
    "render_update_result",
    "resolve_vertex",
]

#: Version of the JSON request/response schema.  Bumped whenever a
#: field is added or its meaning changes; responses echo it so clients
#: can detect skew.  v2 added ``objective`` and strict unknown-field
#: rejection (a typo like ``objektive`` is a 400, not a silent default).
#: v3 added the sharded-serving response metadata: ``shard`` (which
#: shard answered) and ``degraded`` (the owner was down and the
#: request was rerouted) on query and batch payloads.
#: v4 added ``POST /update`` (streaming edge updates) and its
#: :class:`~repro.serve.service.UpdateResult`-shaped response payload.
SCHEMA_VERSION = 4

_QUERY_FIELDS = frozenset(
    {
        "side", "vertex", "label", "tau_u", "tau_l",
        "deadline", "verify", "explain", "trace_id", "objective",
    }
)
_BATCH_FIELDS = frozenset({"queries", "deadline", "explain"})
_BATCH_ITEM_FIELDS = frozenset(
    {"side", "vertex", "label", "tau_u", "tau_l", "trace_id", "objective"}
)
_UPDATE_FIELDS = frozenset({"updates"})
_UPDATE_ITEM_FIELDS = frozenset({"action", "u", "v"})


def _reject_unknown(params: dict, allowed: frozenset, where: str) -> None:
    unknown = sorted(set(map(str, params)) - allowed)
    if unknown:
        raise InvalidRequestError(
            f"unknown {where} field(s): {', '.join(map(repr, unknown))} "
            f"(schema v{SCHEMA_VERSION})"
        )


def _parse_side(raw: str) -> Side:
    try:
        return Side(raw.lower())
    except ValueError:
        raise InvalidRequestError(
            f"side must be 'upper' or 'lower', got {raw!r}"
        ) from None


def _parse_int(params: dict, name: str, default: int | None = None) -> int:
    raw = params.get(name, default)
    if raw is None:
        raise InvalidRequestError(f"missing required parameter {name!r}")
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise InvalidRequestError(
            f"parameter {name!r} must be an integer, got {raw!r}"
        ) from None


def _parse_float(params: dict, name: str) -> float | None:
    raw = params.get(name)
    if raw is None:
        return None
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise InvalidRequestError(
            f"parameter {name!r} must be a number, got {raw!r}"
        ) from None


def _parse_flag(params: dict, name: str) -> bool:
    """Truthiness of a query/body flag (``1``/``true``/``yes``/JSON true)."""
    raw = params.get(name, "")
    if isinstance(raw, bool):
        return raw
    return str(raw).lower() in ("1", "true", "yes")


# ----------------------------------------------------------------------
# wire <-> domain translation, shared by the threaded front-end below
# and the asyncio front-end (repro.serve.aserver)


def resolve_vertex(graph, params: dict, side: Side) -> int:
    """The dense vertex id from a ``vertex`` or ``label`` wire field."""
    label = params.get("label")
    if label is not None:
        try:
            return graph.vertex_by_label(side, label)
        except KeyError:
            raise InvalidRequestError(
                f"no {side.value} vertex labelled {label!r}"
            ) from None
    return _parse_int(params, "vertex")


def build_query_request(graph, params: dict, where: str) -> QueryRequest:
    """A validated :class:`QueryRequest` from wire fields.

    Structural violations — an unregistered objective, a non-string
    trace id — surface as :class:`InvalidRequestError` (HTTP 400)
    rather than an opaque 500.
    """
    side = _parse_side(str(params.get("side", "")))
    vertex = resolve_vertex(graph, params, side)
    tau_u = _parse_int(params, "tau_u", default=1)
    tau_l = _parse_int(params, "tau_l", default=1)
    trace_id = params.get("trace_id")
    try:
        return QueryRequest(
            side,
            vertex,
            tau_u,
            tau_l,
            objective=str(params.get("objective", "pmbc")),
            trace_id=str(trace_id) if trace_id else None,
        )
    except (TypeError, ValueError) as exc:
        raise InvalidRequestError(f"{where}: {exc}") from None


def parse_batch_item(graph, item, position: int) -> QueryRequest:
    """One validated batch entry (``queries[position]``)."""
    if not isinstance(item, dict):
        raise InvalidRequestError(
            f"queries[{position}] must be a JSON object"
        )
    where = f"queries[{position}]"
    _reject_unknown(item, _BATCH_ITEM_FIELDS, where)
    return build_query_request(graph, item, where)


def render_biclique(graph, biclique) -> dict | None:
    """The JSON shape of one answer (or None for an empty answer)."""
    if biclique is None:
        return None
    upper_labels, lower_labels = biclique.with_labels(graph)
    return {
        "shape": list(biclique.shape),
        "edges": biclique.num_edges,
        "upper": sorted(map(str, upper_labels)),
        "lower": sorted(map(str, lower_labels)),
    }


def render_result(
    graph,
    result: QueryResult,
    request: QueryRequest,
    verify: bool,
) -> dict:
    """The full ``/query`` success payload."""
    payload: dict = {
        "schema_version": SCHEMA_VERSION,
        "query": {
            "side": request.side.value,
            "vertex": request.vertex,
            "tau_u": request.tau_u,
            "tau_l": request.tau_l,
            "objective": request.objective,
        },
        "backend": result.backend,
        "shared": result.shared,
        "queue_ms": result.queue_seconds * 1e3,
        "total_ms": result.total_seconds * 1e3,
        "degraded": result.degraded,
    }
    if result.shard is not None:
        payload["shard"] = result.shard
    biclique = result.biclique
    payload["result"] = render_biclique(graph, biclique)
    if result.trace is not None:
        payload["trace"] = result.trace
    if verify:
        # The structural certificate (query membership, constraint
        # satisfaction, completeness) is objective-agnostic.
        check = check_personalized_answer(
            graph,
            request.side,
            request.vertex,
            request.tau_u,
            request.tau_l,
            biclique,
        )
        payload["verified"] = {
            "valid": check.valid,
            "reasons": list(check.reasons),
        }
    return payload


def parse_update_item(item, position: int) -> tuple[str, int, int]:
    """One validated ``updates[position]`` entry as an op triple."""
    if not isinstance(item, dict):
        raise InvalidRequestError(
            f"updates[{position}] must be a JSON object"
        )
    _reject_unknown(item, _UPDATE_ITEM_FIELDS, f"updates[{position}]")
    missing = sorted(_UPDATE_ITEM_FIELDS - set(item))
    if missing:
        raise InvalidRequestError(
            f"updates[{position}] missing field(s): "
            f"{', '.join(map(repr, missing))}"
        )
    return (item["action"], item["u"], item["v"])


def render_update_result(result) -> dict:
    """The full ``POST /update`` success payload."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "applied": result.applied,
        "noops": result.noops,
        "inserts": result.inserts,
        "deletes": result.deletes,
        "trees_repaired": result.trees_repaired,
        "evicted": result.evicted,
        "cascade": result.cascade,
        "total_ms": result.seconds * 1e3,
    }
    if result.shard is not None:
        payload["shard"] = result.shard
    return payload


def render_batch_result(graph, requests, result) -> dict:
    """The full ``/query_batch`` success payload."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "backend": result.backend,
        "count": len(result),
        "queue_ms": result.queue_seconds * 1e3,
        "total_ms": result.total_seconds * 1e3,
        "degraded": result.degraded,
        "results": [
            {
                "query": request.to_json(),
                "result": render_biclique(graph, biclique),
            }
            for request, biclique in zip(requests, result.bicliques)
        ],
    }
    if result.shard is not None:
        payload["shard"] = result.shard
    if result.trace is not None:
        payload["trace"] = result.trace
    return payload


class PMBCRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's ``service``."""

    server_version = "pmbc-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing

    @property
    def service(self) -> PMBCService:
        """The PMBCService this handler dispatches into."""
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        """Suppress per-request stderr logging unless verbose."""
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, indent=2).encode() + b"\n"
        self._send(status, body, extra_headers=extra_headers)

    def _send_error_json(self, exc: ServeError) -> None:
        headers = {}
        if isinstance(exc, QueueFullError):
            headers["Retry-After"] = "1"
        self._send_json(
            exc.http_status,
            {"error": type(exc).__name__, "detail": str(exc)},
            extra_headers=headers,
        )

    # ------------------------------------------------------------------
    # routing

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Route GET requests (healthz/metrics/stats/query/debug)."""
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/healthz":
            self._handle_healthz()
        elif route == "/metrics":
            self._handle_metrics()
        elif route == "/stats":
            self._handle_stats()
        elif route == "/debug/traces":
            params = {
                key: values[-1]
                for key, values in parse_qs(parsed.query).items()
            }
            self._handle_debug_traces(params)
        elif route == "/query":
            params = {
                key: values[-1]
                for key, values in parse_qs(parsed.query).items()
            }
            self._handle_query(params)
        else:
            self._send_json(
                404, {"error": "NotFound", "detail": f"no route {route!r}"}
            )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Route POST requests (/query and /query_batch)."""
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/")
        if route not in ("/query", "/query_batch", "/update"):
            self._send_json(
                404,
                {"error": "NotFound", "detail": f"no route {parsed.path!r}"},
            )
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            params = json.loads(raw or b"{}")
            if not isinstance(params, dict):
                raise ValueError("body must be a JSON object")
        except ValueError as exc:
            self._send_json(
                400, {"error": "InvalidRequestError", "detail": str(exc)}
            )
            return
        if route == "/query_batch":
            self._handle_query_batch(params)
        elif route == "/update":
            self._handle_update(params)
        else:
            self._handle_query(params)

    # ------------------------------------------------------------------
    # handlers

    def _handle_healthz(self) -> None:
        if self.service.healthy():
            self._send_json(200, {"status": "ok"})
        else:
            self._send_json(503, {"status": "unavailable"})

    def _handle_metrics(self) -> None:
        body = self.service.metrics.render().encode()
        self._send(200, body, content_type="text/plain; version=0.0.4")

    def _handle_stats(self) -> None:
        self._send_json(200, self.service.stats())

    def _handle_debug_traces(self, params: dict) -> None:
        trace_id = params.get("id")
        if trace_id is not None:
            trace = self.service.traces.find(str(trace_id))
            if trace is None:
                self._send_json(
                    404,
                    {
                        "error": "NotFound",
                        "detail": f"no buffered trace {trace_id!r}",
                    },
                )
                return
            self._send_json(200, {"trace": trace})
            return
        try:
            limit = _parse_int(params, "limit", default=20)
        except ServeError as exc:
            self._send_error_json(exc)
            return
        ring = self.service.traces
        self._send_json(
            200,
            {
                "buffered": len(ring),
                "capacity": ring.capacity,
                "recorded": ring.total_recorded,
                "traces": ring.snapshot(limit=limit),
            },
        )

    def _handle_query(self, params: dict) -> None:
        service = self.service
        graph = service.graph
        try:
            _reject_unknown(params, _QUERY_FIELDS, "query")
            request = build_query_request(graph, params, "query")
            deadline = _parse_float(params, "deadline")
            verify = _parse_flag(params, "verify")
            explain = _parse_flag(params, "explain")
            result = service.query(
                request, deadline=deadline, explain=explain
            )
        except ServeError as exc:
            self._send_error_json(exc)
            return
        self._send_json(200, render_result(graph, result, request, verify))

    def _handle_query_batch(self, params: dict) -> None:
        service = self.service
        graph = service.graph
        try:
            _reject_unknown(params, _BATCH_FIELDS, "batch")
            queries = params.get("queries")
            if not isinstance(queries, list) or not queries:
                raise InvalidRequestError(
                    "'queries' must be a non-empty JSON array"
                )
            requests = [
                parse_batch_item(graph, item, position)
                for position, item in enumerate(queries)
            ]
            deadline = _parse_float(params, "deadline")
            explain = _parse_flag(params, "explain")
            result = service.query_batch(
                requests, deadline=deadline, explain=explain
            )
        except ServeError as exc:
            self._send_error_json(exc)
            return
        self._send_json(200, render_batch_result(graph, requests, result))

    def _handle_update(self, params: dict) -> None:
        service = self.service
        try:
            _reject_unknown(params, _UPDATE_FIELDS, "update")
            updates = params.get("updates")
            if not isinstance(updates, list) or not updates:
                raise InvalidRequestError(
                    "'updates' must be a non-empty JSON array"
                )
            ops = [
                parse_update_item(item, position)
                for position, item in enumerate(updates)
            ]
            result = service.update_batch(ops)
        except ServeError as exc:
            self._send_error_json(exc)
            return
        self._send_json(200, render_update_result(result))


class PMBCServer:
    """Owns a :class:`ThreadingHTTPServer` bound to a service.

    ``port=0`` picks a free port (useful in tests); read the bound
    address from :attr:`address`.  Use :meth:`start` for a background
    thread or :meth:`serve_forever` to block.
    """

    def __init__(
        self,
        service: PMBCService,
        host: str = "127.0.0.1",
        port: int = 8642,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), PMBCRequestHandler)
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL of the bound socket."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> PMBCServer:
        """Serve in a daemon thread; returns once the socket is live."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="pmbc-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop the HTTP loop and close the underlying service.

        Teardown order matters: stop the ``serve_forever`` loop and
        **join the acceptor thread first**, then close the listening
        socket, and only then close the service (which tears down its
        executor).  Closing the socket or the service while the
        acceptor is still dispatching lets a late connection race a
        dying executor — the CI-flake class this ordering eliminates.
        """
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._httpd.server_close()
        self.service.close()

    def __enter__(self) -> PMBCServer:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve_forever(
    service: PMBCService,
    host: str = "127.0.0.1",
    port: int = 8642,
    verbose: bool = False,
) -> None:
    """Convenience: run a server in the foreground until interrupted."""
    server = PMBCServer(service, host=host, port=port, verbose=verbose)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
