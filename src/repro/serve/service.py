"""The query-serving service: queueing, workers, deadlines, fallback.

:class:`PMBCService` turns the in-process query stack
(:func:`~repro.core.query.pmbc_index_query`,
:class:`~repro.core.engine.PMBCQueryEngine`,
:func:`~repro.core.online.pmbc_online_star`) into a shared service
suitable for heavy concurrent traffic:

- a **bounded request queue** with admission control — when the queue
  is full new requests are rejected immediately
  (:class:`QueueFullError`, the HTTP front-end maps it to 429) instead
  of building an unbounded backlog;
- a **worker pool** draining the queue, so one shared engine (and its
  two-hop LRU) serves every caller;
- **per-request deadlines** with cooperative timeout: expired requests
  are dropped at dequeue time without touching the backend, and
  waiting callers get :class:`DeadlineExceededError` as soon as their
  budget runs out even if a worker is still computing;
- **single-flight deduplication** of identical concurrent
  ``(side, vertex, tau_u, tau_l, objective)`` requests (see
  :mod:`repro.serve.singleflight`);
- **pluggable execution** (see :mod:`repro.exec`): the CPU-bound
  branch-and-bound runs either in the worker threads themselves
  (``execution="thread"``, the GIL-bound default) or on a process pool
  whose workers inherited the graph once (``execution="process"``,
  real-core parallelism);
- a **batch path** (:meth:`PMBCService.query_batch`): one admission
  for many :class:`~repro.core.query.QueryRequest`, grouped by query
  vertex so shared two-hop extractions and the once-per-graph core
  bounds are amortized across the whole batch;
- **graceful degradation** across backends: adaptive partial index
  (when enabled) → index → execution backend → caching engine → plain
  online search, falling through on unexpected backend failure; a
  partial-index *miss* (vertex not resident) falls through cleanly
  without counting as a failure;
- an optional **traffic-adaptive partial index**
  (``ServiceConfig(adaptive=True)``, see :mod:`repro.adaptive`):
  admission feeds a decayed hot-set tracker, a background builder
  constructs hot vertices' search trees off the request path under a
  byte budget, and the resulting trees serve the head of the traffic
  distribution at index speed;
- **streaming graph updates** (:meth:`PMBCService.update_batch`): edge
  insertions/deletions applied against the live service with
  incremental (α,β)-core repair
  (:class:`~repro.corenum.incremental.IncrementalCoreBounds`), scoped
  invalidation of engine cache / partial index / mounted index trees
  via :func:`~repro.core.dynamic.edge_affected_sets`, and a two-phase
  ordering that keeps concurrent queries sound: inserts repair bounds
  *before* the graph swap (raised bounds are still valid upper bounds
  for the old graph), deletions swap *before* repairing (the old
  bounds stay valid-looser for the shrunk graph);
- **metrics** for all of the above (see :mod:`repro.serve.metrics`).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from contextlib import nullcontext
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

from repro.adaptive.builder import BackgroundBuilder
from repro.adaptive.hotset import HotSetTracker
from repro.adaptive.partial import MISS, PartialIndex
from repro.core.construction import build_search_tree
from repro.core.dynamic import edge_affected_sets
from repro.core.engine import PMBCQueryEngine
from repro.core.index import PMBCIndex, SearchTree
from repro.core.online import pmbc_online_star
from repro.core.query import QueryRequest, pmbc_index_query
from repro.core.result import Biclique
from repro.corenum.incremental import IncrementalCoreBounds
from repro.exec.executor import (
    EXECUTION_KINDS,
    Executor,
    ThreadBackend,
    create_executor,
)
from repro.exec.tasks import WorkerState
from repro.graph.bipartite import BipartiteGraph, Side
from repro.kernel import KERNEL_KINDS, is_packed_kernel
from repro.kernel.dynadj import DynamicPackedAdjacency
from repro.objectives import get_objective, objective_kinds
from repro.obs.metrics_bridge import publish_trace, register_search_metrics
from repro.obs.ring import TraceRing
from repro.obs.trace import PRUNE_RULES, SearchTrace, current_trace, use_trace
from repro.serve.metrics import MetricsRegistry
from repro.serve.singleflight import SingleFlight, SingleFlightTimeout

__all__ = [
    "PMBCService",
    "ServiceConfig",
    "QueryResult",
    "BatchResult",
    "UpdateResult",
    "Submission",
    "ServeError",
    "InvalidRequestError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServiceClosedError",
    "BackendError",
]


class ServeError(Exception):
    """Base class for service-level failures."""

    #: HTTP status the front-end reports for this error class.
    http_status = 500


class InvalidRequestError(ServeError):
    """Malformed request: unknown side, vertex out of range, bad taus."""

    http_status = 400


class QueueFullError(ServeError):
    """Admission control rejected the request (queue at capacity)."""

    http_status = 429


class DeadlineExceededError(ServeError):
    """The request's deadline expired before an answer was produced."""

    http_status = 504


class ServiceClosedError(ServeError):
    """The service is shut down (or shutting down)."""

    http_status = 503


class BackendError(ServeError):
    """Every backend in the degradation chain failed."""

    http_status = 500


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for :class:`PMBCService`.

    Attributes
    ----------
    num_workers:
        Size of the worker thread pool.
    max_queue:
        Bound on queued (admitted, not yet running) requests; beyond
        it new requests fail with :class:`QueueFullError`.
    default_deadline:
        Per-request budget in seconds applied when the caller gives
        none; ``None`` disables the default (requests wait forever).
    cache_size:
        LRU capacity of the shared :class:`PMBCQueryEngine`.
    kernel:
        Compute kernel (``"bitset"``/``"set"``/``"words"``) for every
        search the service runs — the shared engine, the process-pool
        workers and the adaptive builder all inherit it.  ``None``
        defers to :func:`repro.kernel.default_kernel`.
    use_core_bounds:
        Precompute (α,β)-core bounds for the engine/online fallbacks
        (PMBC-OL* mode).  Disable for faster startup on huge graphs.
    execution:
        Where the CPU-bound search runs: ``"thread"`` (in the worker
        threads, PR 1 behaviour) or ``"process"`` (a
        :class:`repro.exec.ProcessBackend` pool — real cores, at the
        price of per-worker caches).  See docs/execution.md.
    exec_workers:
        Process-pool size for ``execution="process"``; defaults to
        ``num_workers``.
    trace_ring_size:
        How many recent trace summaries ``/debug/traces`` retains.
    adaptive:
        Enable the traffic-adaptive partial index (:mod:`repro.adaptive`):
        a hot-set tracker fed at admission, a background builder, and a
        budgeted partial-index tier at the top of the degradation chain.
    index_budget_mb:
        Memory budget (MiB, paper storage model) for adaptive trees;
        exceeding it evicts least-recently-used entries.
    hot_threshold:
        Decayed query count at which a vertex is promoted to a build
        candidate.
    hot_half_life:
        Seconds for an untouched hot-set counter to halve.
    build_interval:
        Seconds between background build sweeps.
    adaptive_persist_path:
        When set, the hot set is periodically saved there (unified
        ``index.save`` format) and re-warmed from on startup.
    persist_interval:
        Seconds between hot-set persistence snapshots.
    """

    num_workers: int = 8
    max_queue: int = 64
    default_deadline: float | None = 30.0
    cache_size: int = 256
    kernel: str | None = None
    use_core_bounds: bool = True
    execution: str = "thread"
    exec_workers: int | None = None
    trace_ring_size: int = 256
    adaptive: bool = False
    index_budget_mb: float = 64.0
    hot_threshold: float = 3.0
    hot_half_life: float = 300.0
    build_interval: float = 0.1
    adaptive_persist_path: str | None = None
    persist_interval: float = 30.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got {self.default_deadline}"
            )
        if self.kernel is not None and self.kernel not in KERNEL_KINDS:
            raise ValueError(
                f"kernel must be one of {KERNEL_KINDS}, got {self.kernel!r}"
            )
        if self.execution not in EXECUTION_KINDS:
            raise ValueError(
                f"execution must be one of {EXECUTION_KINDS}, "
                f"got {self.execution!r}"
            )
        if self.exec_workers is not None and self.exec_workers < 1:
            raise ValueError(
                f"exec_workers must be >= 1, got {self.exec_workers}"
            )
        if self.trace_ring_size < 1:
            raise ValueError(
                f"trace_ring_size must be >= 1, got {self.trace_ring_size}"
            )
        if self.index_budget_mb <= 0:
            raise ValueError(
                f"index_budget_mb must be positive, got {self.index_budget_mb}"
            )
        if self.hot_threshold <= 0:
            raise ValueError(
                f"hot_threshold must be positive, got {self.hot_threshold}"
            )
        if self.hot_half_life <= 0:
            raise ValueError(
                f"hot_half_life must be positive, got {self.hot_half_life}"
            )
        if self.build_interval <= 0:
            raise ValueError(
                f"build_interval must be positive, got {self.build_interval}"
            )
        if self.persist_interval <= 0:
            raise ValueError(
                f"persist_interval must be positive, got {self.persist_interval}"
            )

    @property
    def index_budget_bytes(self) -> int:
        """The adaptive memory budget in bytes."""
        return int(self.index_budget_mb * 1024 * 1024)


@dataclass(frozen=True)
class QueryResult:
    """A served answer plus serving metadata."""

    biclique: Biclique | None
    backend: str
    shared: bool            # single-flight collapsed this request
    queue_seconds: float    # admission -> worker pickup
    total_seconds: float    # admission -> answer
    trace: dict | None = None   # search trace summary (explain requests)
    shard: int | None = None    # answering shard (sharded deployments)
    degraded: bool = False      # rerouted around a down shard


@dataclass(frozen=True)
class BatchResult:
    """A served batch: per-request answers (in order) plus metadata."""

    bicliques: tuple[Biclique | None, ...]
    backend: str
    queue_seconds: float    # admission -> worker pickup
    total_seconds: float    # admission -> answer
    trace: dict | None = None   # search trace summary (explain requests)
    shard: int | None = None    # answering shard (single-shard batches)
    degraded: bool = False      # some sub-batch rerouted around a down shard

    def __len__(self) -> int:
        return len(self.bicliques)


@dataclass(frozen=True)
class UpdateResult:
    """The outcome of one applied update batch."""

    applied: int            # effective edge mutations (net of collapses)
    noops: int              # requested updates that changed nothing
    inserts: int            # effective insertions
    deletes: int            # effective deletions
    trees_repaired: int     # mounted-index trees rebuilt in place
    evicted: int            # partial-index trees dropped
    cascade: int            # vertices touched by bound-repair cascades
    seconds: float          # wall time of the whole batch
    shard: int | None = None    # applying shard (sharded deployments)


@dataclass
class _Request:
    request: QueryRequest
    deadline: float | None          # absolute, time.monotonic() clock
    enqueued_at: float
    explain: bool = False
    future: Future = field(default_factory=Future)

    @property
    def key(self) -> tuple[Side, int, int, int, str]:
        return self.request.key

    def remaining(self, now: float) -> float | None:
        return None if self.deadline is None else self.deadline - now


@dataclass
class _BatchRequest:
    requests: tuple[QueryRequest, ...]
    deadline: float | None          # absolute, time.monotonic() clock
    enqueued_at: float
    explain: bool = False
    future: Future = field(default_factory=Future)

    def remaining(self, now: float) -> float | None:
        return None if self.deadline is None else self.deadline - now


@dataclass
class Submission:
    """A non-blocking admission handle.

    :attr:`future` resolves to the :class:`QueryResult` /
    :class:`BatchResult` (or raises the terminal :class:`ServeError`).
    Async front-ends wrap it with :func:`asyncio.wrap_future` and, when
    their own wait times out, call :meth:`expire` to race the worker
    for the terminal outcome — exactly the settle race the blocking
    :meth:`PMBCService.query` path runs.

    Attributes
    ----------
    future:
        Resolves to the result, or raises the request's terminal error.
    budget:
        The effective deadline budget in seconds (the caller's, or the
        service default), ``None`` when the request may wait forever.
    """

    future: Future
    budget: float | None
    _expire: object = field(default=None, repr=False)

    def expire(self) -> bool:
        """Settle the request as ``deadline_exceeded`` if still pending.

        Returns True when this call won the race (the future now raises
        :class:`DeadlineExceededError`); False when a worker settled
        first, in which case :attr:`future` already holds the real
        outcome.
        """
        if self._expire is None:
            return False
        return self._expire()


class _PartialBackend:
    """The adaptive partial index: hot vertices at index speed.

    A query for a vertex without a resident tree answers
    :data:`repro.adaptive.MISS`, which the degradation walk treats as
    a clean fall-through to the next backend — not a failure, so the
    fallback counter stays untouched.  Requests for objectives the
    PMBC index storage model cannot answer decline the same way.
    """

    name = "partial"

    def __init__(self, partial: PartialIndex) -> None:
        self.partial = partial

    def query(self, request: QueryRequest) -> Biclique | None:
        if not get_objective(request.objective).index_compatible:
            return MISS
        return self.partial.lookup(
            request.side, request.vertex, request.tau_u, request.tau_l
        )

    def query_batch(self, requests):
        # All-or-MISS: a batch is answered here only when every request
        # hits a resident tree; otherwise the whole batch falls through
        # so it stays a single backend walk.
        answers = []
        for r in requests:
            answer = self.query(r)
            if answer is MISS:
                return MISS
            answers.append(answer)
        return answers


class _IndexBackend:
    """PMBC-IQ over a prebuilt index: the O(deg(q)+|C|) fast path.

    The index stores edge-count (PMBC) maxima only, so requests for
    other objectives decline with :data:`repro.adaptive.MISS` and fall
    through to the online tiers instead of answering the wrong family.
    """

    name = "index"

    def __init__(self, index: PMBCIndex) -> None:
        self._index = index

    def query(self, request: QueryRequest) -> Biclique | None:
        if not get_objective(request.objective).index_compatible:
            return MISS
        return pmbc_index_query(self._index, request)

    def query_batch(self, requests):
        # Index lookups touch no two-hop subgraphs; a plain loop is
        # already the optimal batch plan.  All-or-MISS on objective so
        # mixed batches stay a single backend walk downstream.
        answers = []
        for r in requests:
            answer = self.query(r)
            if answer is MISS:
                return MISS
            answers.append(answer)
        return answers


class _ExecBackend:
    """The execution substrate (thread or process pool).

    With a :class:`~repro.exec.ThreadBackend` this runs the shared
    engine in the calling worker thread — behaviourally identical to
    querying the engine directly, so it reports as ``"engine"``.  With
    a :class:`~repro.exec.ProcessBackend` it ships work items to the
    pool and reports as ``"process"``.
    """

    def __init__(self, executor: Executor) -> None:
        self.executor = executor
        self.name = "engine" if executor.kind == "thread" else "process"

    def query(self, request: QueryRequest) -> Biclique | None:
        if self.executor.kind != "process":
            # Thread execution runs in the calling thread, so the
            # active trace propagates through the context variable.
            return self.executor.run("query", request)
        # The pool worker traces in its own address space and ships the
        # summary back with the answer for the parent trace to absorb.
        answer, summary = self.executor.run("query_traced", request)
        trace = current_trace()
        if trace.enabled:
            trace.merge_summary(summary)
        return answer

    def query_batch(self, requests) -> list[Biclique | None]:
        if self.executor.kind != "process":
            return self.executor.run("query_batch", list(requests))
        answers, summary = self.executor.run(
            "query_batch_traced", list(requests)
        )
        trace = current_trace()
        if trace.enabled:
            trace.merge_summary(summary)
        return answers


class _EngineBackend:
    """The shared caching engine (PMBC-OL* + two-hop LRU)."""

    name = "engine"

    def __init__(self, engine: PMBCQueryEngine) -> None:
        self.engine = engine

    def query(self, request: QueryRequest) -> Biclique | None:
        return self.engine.query(request)

    def query_batch(self, requests) -> list[Biclique | None]:
        return self.engine.query_batch(requests)


class _OnlineBackend:
    """Stateless PMBC-OL*: the last-resort fallback."""

    name = "online"

    def __init__(self, graph: BipartiteGraph, bounds=None, kernel=None) -> None:
        self._graph = graph
        self._bounds = bounds
        self._kernel = kernel

    def update_graph(self, graph: BipartiteGraph) -> None:
        """Swap onto a post-update snapshot (bounds repaired in place)."""
        self._graph = graph

    def query(self, request: QueryRequest) -> Biclique | None:
        return pmbc_online_star(
            self._graph, request, bounds=self._bounds, kernel=self._kernel
        )

    def query_batch(self, requests) -> list[Biclique | None]:
        from repro.core.online import pmbc_online_batch

        return pmbc_online_batch(
            self._graph,
            requests,
            bounds=self._bounds,
            use_core_bounds=self._bounds is not None,
            kernel=self._kernel,
        )


class PMBCService:
    """A shared, instrumented personalized-biclique query service.

    Parameters
    ----------
    graph:
        The bipartite graph to serve.
    index:
        Optional prebuilt :class:`PMBCIndex`; when given it is the
        primary backend, with the engine and online search as
        fallbacks.  Without it the caching engine is primary.
    config:
        Service tunables (see :class:`ServiceConfig`).
    metrics:
        Optional shared registry; a fresh one is created by default.
    bounds:
        Optional precomputed :class:`~repro.core.bounds.CoreBounds`
        for ``graph``; when given the engine adopts them instead of
        recomputing.  Sharded deployments (:mod:`repro.shard`) compute
        the bounds once and hand the same object to every shard.

    Use as a context manager, or call :meth:`start` / :meth:`close`::

        with PMBCService(graph, index=index) as service:
            result = service.query(Side.UPPER, 3, tau_u=2, tau_l=2)
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        index: PMBCIndex | None = None,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
        bounds=None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.graph = graph
        self.metrics = metrics or MetricsRegistry()
        self.engine = PMBCQueryEngine(
            graph,
            use_core_bounds=self.config.use_core_bounds,
            cache_size=self.config.cache_size,
            kernel=self.config.kernel,
            bounds=bounds,
        )
        exec_workers = self.config.exec_workers or self.config.num_workers
        if self.config.execution == "process":
            self._executor = create_executor(
                "process",
                graph,
                bounds=self.engine.bounds,
                use_core_bounds=False,
                num_workers=exec_workers,
                cache_size=self.config.cache_size,
                metrics=self.metrics,
                kernel=self.engine.kernel,
            )
        else:
            # Thread execution runs in the serving worker threads
            # against the shared engine (and its LRU) — PR 1 behaviour.
            self._executor = ThreadBackend(
                graph,
                num_workers=exec_workers,
                metrics=self.metrics,
                state=WorkerState(
                    graph=graph,
                    bounds=self.engine.bounds,
                    cache_size=self.config.cache_size,
                    kernel=self.engine.kernel,
                    _engine=self.engine,
                ),
            )
        self._backends: list[object] = []
        self._index_backend: _IndexBackend | None = None
        if index is not None:
            self._index_backend = _IndexBackend(index)
            self._backends.append(self._index_backend)
        self._exec_backend = _ExecBackend(self._executor)
        self._backends.append(self._exec_backend)
        if self._executor.kind == "process":
            # Keep the in-process engine as a degradation target in
            # case the pool breaks mid-flight.
            self._backends.append(_EngineBackend(self.engine))
        self._online_backend = _OnlineBackend(
            graph, bounds=self.engine.bounds, kernel=self.engine.kernel
        )
        self._backends.append(self._online_backend)

        # Streaming-update state, built lazily on the first update (the
        # incremental maintainer re-peels the sweep family once, which
        # costs one compute_bounds; read-only deployments never pay it).
        self._updater: IncrementalCoreBounds | None = None
        self._dynadj: DynamicPackedAdjacency | None = None
        self._mirror: dict[Side, list[set[int]]] | None = None
        self._update_lock = threading.Lock()
        self._exec_degraded = False
        self._fallback_executor: ThreadBackend | None = None
        #: ``(side, vertex)`` keys the most recent update batch affected
        #: (the shard router fans them to the other shards' warm state).
        self.last_update_affected: frozenset[tuple[Side, int]] = frozenset()

        self._prebuilt_coverage: dict | None = None
        if index is not None:
            nonempty = sum(
                1
                for side in Side
                for tree in index.trees.get(side, [])
                if tree.nodes
            )
            total = index.num_upper + index.num_lower
            self._prebuilt_coverage = {
                "vertices": nonempty,
                "fraction": nonempty / total if total else 0.0,
                "bytes": index.total_size_bytes(),
            }

        self._queue: queue.Queue[_Request | _BatchRequest | None] = (
            queue.Queue(maxsize=self.config.max_queue)
        )
        self.traces = TraceRing(self.config.trace_ring_size)
        self._flight = SingleFlight()
        self._workers: list[threading.Thread] = []
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._started_at = time.monotonic()

        self.hot_set: HotSetTracker | None = None
        self.partial_index: PartialIndex | None = None
        self.builder: BackgroundBuilder | None = None
        self._warm_restored = 0
        if self.config.adaptive:
            self.hot_set = HotSetTracker(
                half_life=self.config.hot_half_life
            )
            self.partial_index = PartialIndex(
                budget_bytes=self.config.index_budget_bytes
            )
            self._warm_restored = self._warm_restart()
            self.builder = BackgroundBuilder(
                graph,
                self._executor,
                self.partial_index,
                self.hot_set,
                threshold=self.config.hot_threshold,
                interval=self.config.build_interval,
                persist_path=self.config.adaptive_persist_path,
                persist_interval=self.config.persist_interval,
                metrics=self.metrics,
                trace_sink=self._absorb_build_trace,
            )
            # The partial tier answers hot vertices ahead of every
            # other backend; misses fall through to the rest of the
            # chain.
            self._backends.insert(0, _PartialBackend(self.partial_index))

        self._init_metrics()

    def _warm_restart(self) -> int:
        """Re-warm the partial index from a persisted hot set.

        Silently starts cold when the snapshot is missing, corrupt, or
        was taken against a different graph shape.  Returns the number
        of trees adopted.
        """
        path = self.config.adaptive_persist_path
        if not path or self.partial_index is None:
            return 0
        try:
            saved = PMBCIndex.load(path)
        except FileNotFoundError:
            return 0
        except Exception:
            return 0
        if (
            saved.num_upper != self.graph.num_upper
            or saved.num_lower != self.graph.num_lower
        ):
            return 0
        return self.partial_index.warm_from(saved)

    def _absorb_build_trace(self, summary: dict) -> None:
        """Feed background-build traces into the ring and metrics."""
        self.traces.append(summary)
        publish_trace(summary, self.metrics)

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> PMBCService:
        """Spin up the worker pool (idempotent)."""
        with self._lifecycle_lock:
            if self._closed:
                raise ServiceClosedError("service already closed")
            if self._workers:
                return self
            for i in range(self.config.num_workers):
                worker = threading.Thread(
                    target=self._worker_loop,
                    name=f"pmbc-serve-worker-{i}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        if self.builder is not None and not self.builder.closed:
            self.builder.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Stop admitting requests and shut the worker pool down.

        Queued requests are drained and failed with
        :class:`ServiceClosedError`; in-flight computations finish.
        Shutdown order matters: the background builder is stopped (and,
        when waiting, joined) *before* the executor closes, so no
        adaptive build is in flight on a closing substrate and no
        builder thread outlives the service.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        if self.builder is not None:
            self.builder.close(wait=wait)
        # Fail whatever is still queued, then poison the workers.
        self._drain_queue()
        for __ in workers:
            self._queue.put(None)
        if wait:
            for worker in workers:
                worker.join()
            # A request admitted in the race window between the closed
            # check and the drain would otherwise hang its caller.
            self._drain_queue()
            # Closing a process pool waits for in-flight work, so only
            # a waiting close may do it.
            self._executor.close()
            if self._fallback_executor is not None:
                self._fallback_executor.close()

    def _drain_queue(self) -> None:
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                return
            if request is not None:
                self._settle(
                    request,
                    "closed",
                    error=ServiceClosedError("service shut down"),
                )

    def __enter__(self) -> PMBCService:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun."""
        return self._closed

    # ------------------------------------------------------------------
    # metrics plumbing

    def _init_metrics(self) -> None:
        m = self.metrics
        register_search_metrics(m)
        self._requests = m.counter(
            "pmbc_requests_total", "Requests by terminal status."
        )
        self._latency = m.histogram(
            "pmbc_request_latency_seconds",
            "End-to-end latency of successful requests.",
        )
        self._requests_by_objective = m.counter(
            "pmbc_requests_by_objective_total",
            "Admitted requests by query-family objective.",
        )
        self._latency_by_objective = {
            name: m.histogram(
                f"pmbc_request_latency_{name}_seconds",
                f"End-to-end latency of successful {name!r} requests.",
            )
            for name in objective_kinds()
        }
        self._queue_wait = m.histogram(
            "pmbc_queue_wait_seconds",
            "Time between admission and worker pickup.",
        )
        self._backend_queries = m.counter(
            "pmbc_backend_queries_total", "Backend invocations by backend."
        )
        self._fallbacks = m.counter(
            "pmbc_backend_fallbacks_total",
            "Degradations from a failing backend to the next one.",
        )
        self._sf_leaders = m.counter(
            "pmbc_singleflight_leaders_total",
            "Requests that actually ran a computation.",
        )
        self._sf_shared = m.counter(
            "pmbc_singleflight_shared_total",
            "Requests whose computation was shared via single-flight.",
        )
        self._batch_size = m.histogram(
            "pmbc_batch_size", "Requests per admitted batch."
        )
        self._updates = m.counter(
            "pmbc_updates_total", "Edge updates by kind (insert/delete/noop)."
        )
        self._update_batches = m.counter(
            "pmbc_update_batches_total", "Applied update batches."
        )
        self._update_cascade = m.counter(
            "pmbc_update_cascade_vertices_total",
            "Vertices touched by incremental bound-repair cascades.",
        )
        self._update_trees = m.counter(
            "pmbc_update_trees_repaired_total",
            "Mounted-index search trees rebuilt by updates.",
        )
        self._update_repacks = m.counter(
            "pmbc_update_repacks_total",
            "Full re-packs of the dynamic packed adjacency.",
        )
        self._update_evictions = m.counter(
            "pmbc_update_partial_evictions_total",
            "Partial-index trees evicted by updates.",
        )
        self._update_latency = m.histogram(
            "pmbc_update_batch_seconds", "Wall time per applied update batch."
        )
        depth = m.gauge("pmbc_queue_depth", "Requests waiting in the queue.")
        depth.set_function(self._queue.qsize)
        self._inflight = m.gauge(
            "pmbc_inflight_requests", "Requests admitted but not finished."
        )
        workers_gauge = m.gauge("pmbc_workers", "Worker pool size.")
        workers_gauge.set_function(lambda: len(self._workers))
        for name, reader in (
            ("pmbc_engine_cache_hits", lambda: self.engine.cache_stats().hits),
            (
                "pmbc_engine_cache_misses",
                lambda: self.engine.cache_stats().misses,
            ),
            (
                "pmbc_engine_cache_evictions",
                lambda: self.engine.cache_stats().evictions,
            ),
            (
                "pmbc_engine_cache_size",
                lambda: self.engine.cache_stats().size,
            ),
        ):
            m.gauge(name, "Shared engine two-hop LRU.").set_function(reader)
        self._adaptive_hits = None
        self._adaptive_misses = None
        if self.partial_index is not None:
            self._adaptive_hits = m.counter(
                "pmbc_adaptive_hits_total",
                "Requests answered by the adaptive partial index.",
            )
            self._adaptive_misses = m.counter(
                "pmbc_adaptive_misses_total",
                "Partial-index fall-throughs (vertex not resident).",
            )
            m.gauge(
                "pmbc_adaptive_budget_bytes",
                "Adaptive partial-index memory budget.",
            ).set_function(lambda: self.partial_index.budget_bytes)
            m.gauge(
                "pmbc_adaptive_index_bytes",
                "Accounted size of resident adaptive trees.",
            ).set_function(lambda: self.partial_index.total_bytes)
            m.gauge(
                "pmbc_adaptive_entries",
                "Resident adaptive trees.",
            ).set_function(lambda: len(self.partial_index))

    def _finish(self, status: str) -> None:
        self._requests.inc(status=status)
        self._inflight.dec()

    def _settle(
        self,
        request: _Request | _BatchRequest,
        status: str,
        result: QueryResult | BatchResult | None = None,
        error: Exception | None = None,
    ) -> bool:
        """Resolve a request's future exactly once.

        The future is the arbiter between the worker and a caller whose
        deadline fired: whichever side settles first does the terminal
        accounting, the loser backs off.  Returns True for the winner.
        """
        try:
            if error is not None:
                request.future.set_exception(error)
            else:
                request.future.set_result(result)
        except InvalidStateError:
            return False
        self._finish(status)
        return True

    # ------------------------------------------------------------------
    # request path

    def _validate(
        self, side: Side, vertex: int, tau_u: int, tau_l: int
    ) -> None:
        if not isinstance(side, Side):
            raise InvalidRequestError(f"side must be a Side, got {side!r}")
        if tau_u < 1 or tau_l < 1:
            raise InvalidRequestError(
                f"size constraints must be >= 1, got ({tau_u}, {tau_l})"
            )
        if not 0 <= vertex < self.graph.num_vertices_on(side):
            raise InvalidRequestError(
                f"vertex {vertex} out of range for the {side.value} layer"
            )

    def _coerce(
        self,
        side: Side | QueryRequest,
        vertex: int | None,
        tau_u: int,
        tau_l: int,
    ) -> QueryRequest:
        """Normalize raw arguments or a :class:`QueryRequest`.

        The raw-argument surface deliberately rejects non-``Side``
        sides (no string coercion) — validation therefore runs *before*
        a :class:`QueryRequest` is built from raw arguments.
        """
        if isinstance(side, QueryRequest):
            if vertex is not None:
                raise InvalidRequestError(
                    "pass either a QueryRequest or raw arguments, not both"
                )
            request = side
            self._validate(
                request.side, request.vertex, request.tau_u, request.tau_l
            )
            return request
        if vertex is None:
            raise InvalidRequestError("query vertex is required")
        self._validate(side, vertex, tau_u, tau_l)
        return QueryRequest(side, vertex, tau_u, tau_l)

    def submit(
        self,
        side: Side | QueryRequest,
        vertex: int | None = None,
        tau_u: int = 1,
        tau_l: int = 1,
        deadline: float | None = None,
        explain: bool = False,
    ) -> Future:
        """Admit a request; the Future resolves to a :class:`QueryResult`.

        Accepts either raw ``(side, vertex, tau_u, tau_l)`` arguments
        or a single :class:`~repro.core.query.QueryRequest`.  Raises
        immediately on invalid input, a full queue, or a closed
        service — admission failures never consume a queue slot.  With
        ``explain=True`` the result carries the computation's trace
        summary in :attr:`QueryResult.trace`.
        """
        return self._admit(
            side, vertex, tau_u, tau_l, deadline, explain
        ).future

    def submit_batch(
        self,
        requests,
        deadline: float | None = None,
        explain: bool = False,
    ) -> Future:
        """Admit a batch; the Future resolves to a :class:`BatchResult`.

        The non-blocking counterpart of :meth:`query_batch`; admission
        failures raise immediately, exactly as :meth:`submit`.
        """
        return self._admit_batch(requests, deadline, explain).future

    def admit(
        self,
        side: Side | QueryRequest,
        vertex: int | None = None,
        tau_u: int = 1,
        tau_l: int = 1,
        deadline: float | None = None,
        explain: bool = False,
    ) -> Submission:
        """Admit a request and return a :class:`Submission` handle.

        Like :meth:`submit`, but the handle additionally exposes
        :meth:`Submission.expire` so non-blocking callers (the asyncio
        front-end, the shard router) can run the same deadline settle
        race :meth:`query` runs internally.
        """
        request = self._admit(side, vertex, tau_u, tau_l, deadline, explain)
        budget = self.config.default_deadline if deadline is None else deadline

        def _expire() -> bool:
            return self._settle(
                request,
                "deadline_exceeded",
                error=DeadlineExceededError(f"no answer within {budget}s"),
            )

        return Submission(
            future=request.future, budget=budget, _expire=_expire
        )

    def admit_batch(
        self,
        requests,
        deadline: float | None = None,
        explain: bool = False,
    ) -> Submission:
        """Admit a batch and return a :class:`Submission` handle."""
        batch = self._admit_batch(requests, deadline, explain)
        budget = self.config.default_deadline if deadline is None else deadline

        def _expire() -> bool:
            return self._settle(
                batch,
                "deadline_exceeded",
                error=DeadlineExceededError(
                    f"no batch answer within {budget}s"
                ),
            )

        return Submission(future=batch.future, budget=budget, _expire=_expire)

    def _admit(
        self,
        side: Side | QueryRequest,
        vertex: int | None,
        tau_u: int,
        tau_l: int,
        deadline: float | None,
        explain: bool = False,
    ) -> _Request:
        if self._closed:
            self._requests.inc(status="closed")
            raise ServiceClosedError("service is closed")
        if not self._workers:
            raise ServiceClosedError("service not started (call start())")
        try:
            query_request = self._coerce(side, vertex, tau_u, tau_l)
        except InvalidRequestError:
            self._requests.inc(status="invalid")
            raise
        budget = self.config.default_deadline if deadline is None else deadline
        if budget is not None and budget <= 0:
            self._requests.inc(status="invalid")
            raise InvalidRequestError(
                f"deadline must be positive, got {budget}"
            )
        now = time.monotonic()
        request = _Request(
            request=query_request,
            deadline=None if budget is None else now + budget,
            enqueued_at=now,
            explain=explain,
        )
        self._inflight.inc()
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._finish("queue_full")
            raise QueueFullError(
                f"request queue full ({self.config.max_queue} waiting)"
            ) from None
        self._requests_by_objective.inc(objective=query_request.objective)
        if self.hot_set is not None and get_objective(
            query_request.objective
        ).index_compatible:
            # Record at admission (after the queue accepted the
            # request) so single-flight followers still count toward
            # the traffic signal.  Objectives the partial tier cannot
            # answer never feed it, so they cannot evict useful trees.
            self.hot_set.record(query_request.side, query_request.vertex)
        return request

    def query(
        self,
        side: Side | QueryRequest,
        vertex: int | None = None,
        tau_u: int = 1,
        tau_l: int = 1,
        deadline: float | None = None,
        explain: bool = False,
    ) -> QueryResult:
        """Admit a request and block for its answer.

        Accepts raw arguments or a single
        :class:`~repro.core.query.QueryRequest`.  The call returns (or
        raises :class:`DeadlineExceededError`) within the request's
        deadline budget even when a worker is still computing — the
        abandoned computation finishes in the background and only warms
        the cache.  With ``explain=True`` the result carries the
        computation's trace summary (a single-flight follower gets the
        leader's trace).
        """
        request = self._admit(side, vertex, tau_u, tau_l, deadline, explain)
        budget = self.config.default_deadline if deadline is None else deadline
        try:
            return request.future.result(timeout=budget)
        except FutureTimeoutError:
            error = DeadlineExceededError(f"no answer within {budget}s")
            if self._settle(request, "deadline_exceeded", error=error):
                raise error from None
            # The worker settled in the same instant; take its outcome.
            return request.future.result()

    def query_batch(
        self,
        requests,
        deadline: float | None = None,
        explain: bool = False,
    ) -> BatchResult:
        """Admit many requests as one unit and block for all answers.

        ``requests`` is a sequence of
        :class:`~repro.core.query.QueryRequest` (or anything
        ``QueryRequest.of`` accepts: dicts, tuples).  The batch
        occupies a **single** queue slot and is answered by a single
        backend walk; within the batch, requests are grouped by query
        vertex so each distinct vertex's two-hop subgraph is extracted
        at most once (see
        :meth:`~repro.core.engine.PMBCQueryEngine.query_batch`).  The
        deadline covers the whole batch.  Single-flight dedup does not
        apply — vertex grouping already collapses duplicates inside
        the batch.
        """
        batch = self._admit_batch(requests, deadline, explain)
        budget = self.config.default_deadline if deadline is None else deadline
        try:
            return batch.future.result(timeout=budget)
        except FutureTimeoutError:
            error = DeadlineExceededError(f"no batch answer within {budget}s")
            if self._settle(batch, "deadline_exceeded", error=error):
                raise error from None
            return batch.future.result()

    def _admit_batch(
        self, requests, deadline: float | None, explain: bool = False
    ) -> _BatchRequest:
        if self._closed:
            self._requests.inc(status="closed")
            raise ServiceClosedError("service is closed")
        if not self._workers:
            raise ServiceClosedError("service not started (call start())")
        try:
            coerced = []
            for raw in requests:
                try:
                    request = QueryRequest.of(raw)
                except (TypeError, ValueError) as exc:
                    raise InvalidRequestError(str(exc)) from None
                self._validate(
                    request.side, request.vertex, request.tau_u, request.tau_l
                )
                coerced.append(request)
            if not coerced:
                raise InvalidRequestError("batch must contain >= 1 request")
        except InvalidRequestError:
            self._requests.inc(status="invalid")
            raise
        budget = self.config.default_deadline if deadline is None else deadline
        if budget is not None and budget <= 0:
            self._requests.inc(status="invalid")
            raise InvalidRequestError(
                f"deadline must be positive, got {budget}"
            )
        now = time.monotonic()
        batch = _BatchRequest(
            requests=tuple(coerced),
            deadline=None if budget is None else now + budget,
            enqueued_at=now,
            explain=explain,
        )
        self._batch_size.observe(len(coerced))
        self._inflight.inc()
        try:
            self._queue.put_nowait(batch)
        except queue.Full:
            self._finish("queue_full")
            raise QueueFullError(
                f"request queue full ({self.config.max_queue} waiting)"
            ) from None
        for request in coerced:
            self._requests_by_objective.inc(objective=request.objective)
        if self.hot_set is not None:
            for request in coerced:
                if get_objective(request.objective).index_compatible:
                    self.hot_set.record(request.side, request.vertex)
        return batch

    # ------------------------------------------------------------------
    # worker side

    def _worker_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:  # poison pill
                return
            if isinstance(request, _BatchRequest):
                self._serve_batch(request)
            else:
                self._serve_one(request)

    def _serve_one(self, request: _Request) -> None:
        if request.future.done():
            # The caller's deadline fired while the request was queued;
            # terminal accounting already happened on that side.
            return
        now = time.monotonic()
        queue_seconds = now - request.enqueued_at
        self._queue_wait.observe(queue_seconds)
        remaining = request.remaining(now)
        if remaining is not None and remaining <= 0:
            self._settle(
                request,
                "deadline_exceeded",
                error=DeadlineExceededError("deadline expired in queue"),
            )
            return
        try:
            flight = self._flight.do(
                request.key,
                lambda: self._query_backends(request),
                timeout=remaining,
            )
        except SingleFlightTimeout:
            self._settle(
                request,
                "deadline_exceeded",
                error=DeadlineExceededError("deadline expired awaiting flight"),
            )
            return
        except ServeError as exc:
            self._settle(request, "error", error=exc)
            return
        except Exception as exc:  # defensive: never kill a worker
            self._settle(request, "error", error=BackendError(str(exc)))
            return
        if flight.leader:
            self._sf_leaders.inc()
        if flight.shared:
            self._sf_shared.inc()
        biclique, backend_name, summary = flight.value
        total = time.monotonic() - request.enqueued_at
        result = QueryResult(
            biclique=biclique,
            backend=backend_name,
            shared=flight.shared and not flight.leader,
            queue_seconds=queue_seconds,
            total_seconds=total,
            trace=summary if request.explain else None,
        )
        if self._settle(
            request, "ok" if biclique is not None else "empty", result=result
        ):
            self._latency.observe(total)
            hist = self._latency_by_objective.get(request.request.objective)
            if hist is not None:
                hist.observe(total)

    def _serve_batch(self, batch: _BatchRequest) -> None:
        if batch.future.done():
            return
        now = time.monotonic()
        queue_seconds = now - batch.enqueued_at
        self._queue_wait.observe(queue_seconds)
        remaining = batch.remaining(now)
        if remaining is not None and remaining <= 0:
            self._settle(
                batch,
                "deadline_exceeded",
                error=DeadlineExceededError("deadline expired in queue"),
            )
            return
        try:
            answers, backend_name, summary = self._query_backends_batch(
                batch.requests
            )
        except ServeError as exc:
            self._settle(batch, "error", error=exc)
            return
        except Exception as exc:  # defensive: never kill a worker
            self._settle(batch, "error", error=BackendError(str(exc)))
            return
        total = time.monotonic() - batch.enqueued_at
        result = BatchResult(
            bicliques=tuple(answers),
            backend=backend_name,
            queue_seconds=queue_seconds,
            total_seconds=total,
            trace=summary if batch.explain else None,
        )
        status = "ok" if any(a is not None for a in answers) else "empty"
        if self._settle(batch, status, result=result):
            self._latency.observe(total)
            for name in {r.objective for r in batch.requests}:
                hist = self._latency_by_objective.get(name)
                if hist is not None:
                    hist.observe(total)

    def _query_backends(
        self, request: _Request
    ) -> tuple[Biclique | None, str, dict]:
        """Walk the degradation chain under a fresh trace.

        Every computation (not only explain requests) is traced: the
        summary feeds the trace ring and the aggregated search metrics,
        and single-flight followers reuse it.  Returns ``(answer,
        backend name, trace summary)``.
        """
        query_request = request.request
        trace = SearchTrace(trace_id=query_request.trace_id)
        trace.annotate(
            kind="query",
            query={
                "side": query_request.side.value,
                "vertex": query_request.vertex,
                "tau_u": query_request.tau_u,
                "tau_l": query_request.tau_l,
                "objective": query_request.objective,
            },
        )
        last_error: Exception | None = None
        for position, backend in enumerate(self._backends):
            self._backend_queries.inc(backend=backend.name)
            try:
                with use_trace(trace):
                    answer = backend.query(query_request)
            except Exception as exc:
                last_error = exc
                nxt = self._backends[position + 1].name \
                    if position + 1 < len(self._backends) else "none"
                self._fallbacks.inc(**{"from": backend.name, "to": nxt})
                continue
            if answer is MISS:
                # No resident tree (or an objective the tier cannot
                # answer): a clean fall-through, not a degradation —
                # the fallback counter stays untouched.  Only the
                # partial tier's misses feed the adaptive counters.
                if (
                    backend.name == "partial"
                    and self._adaptive_misses is not None
                ):
                    self._adaptive_misses.inc()
                continue
            if backend.name == "partial" and self._adaptive_hits is not None:
                self._adaptive_hits.inc()
            summary = self._finish_trace(trace, backend.name, answer)
            return answer, backend.name, summary
        raise BackendError(
            f"all {len(self._backends)} backends failed "
            f"(last: {last_error!r})"
        )

    def _query_backends_batch(
        self, requests: tuple[QueryRequest, ...]
    ) -> tuple[list[Biclique | None], str, dict]:
        """Batch variant of the degradation walk.

        Backends without a ``query_batch`` method (e.g. test doubles)
        are driven with a per-request loop.  One trace covers the
        whole batch; its counters are batch totals.
        """
        trace = SearchTrace(
            trace_id=next(
                (r.trace_id for r in requests if r.trace_id), None
            )
        )
        objectives = {r.objective for r in requests}
        trace.annotate(
            kind="batch",
            batch_size=len(requests),
            objective=objectives.pop() if len(objectives) == 1 else "mixed",
        )
        last_error: Exception | None = None
        for position, backend in enumerate(self._backends):
            self._backend_queries.inc(backend=backend.name)
            try:
                with use_trace(trace):
                    batch_fn = getattr(backend, "query_batch", None)
                    if batch_fn is not None:
                        answers = batch_fn(requests)
                        if answers is not MISS:
                            answers = list(answers)
                    else:
                        answers = [backend.query(r) for r in requests]
            except Exception as exc:
                last_error = exc
                nxt = self._backends[position + 1].name \
                    if position + 1 < len(self._backends) else "none"
                self._fallbacks.inc(**{"from": backend.name, "to": nxt})
                continue
            if answers is MISS or any(a is MISS for a in answers):
                # The partial/index tiers answer a batch all-or-nothing.
                if (
                    backend.name == "partial"
                    and self._adaptive_misses is not None
                ):
                    self._adaptive_misses.inc(len(requests))
                continue
            if backend.name == "partial" and self._adaptive_hits is not None:
                self._adaptive_hits.inc(len(requests))
            trace.annotate(
                answered=sum(1 for a in answers if a is not None)
            )
            summary = self._finish_trace(trace, backend.name, None)
            return answers, backend.name, summary
        raise BackendError(
            f"all {len(self._backends)} backends failed "
            f"(last: {last_error!r})"
        )

    def _finish_trace(
        self, trace: SearchTrace, backend_name: str, answer: Biclique | None
    ) -> dict:
        """Seal a computation's trace: annotate, ring-buffer, publish."""
        trace.annotate(backend=backend_name)
        if trace.meta.get("kind") == "query":
            trace.annotate(
                result=None
                if answer is None
                else {
                    "shape": list(answer.shape),
                    "edges": answer.num_edges,
                }
            )
        summary = trace.to_dict()
        self.traces.append(summary)
        publish_trace(summary, self.metrics)
        return summary

    # ------------------------------------------------------------------
    # streaming updates

    def _ensure_updater(self) -> None:
        """Build the lazy update state (caller holds ``_update_lock``).

        Three mirrors, each created only when its consumer exists: the
        incremental bounds maintainer (when core bounds are on), the
        patched packed adjacency (when the kernel is packed — it doubles
        as the adjacency source of truth), and a plain set mirror
        otherwise (so presence checks and snapshots never rescan an
        immutable graph).
        """
        if self._updater is None and self.config.use_core_bounds:
            self._updater = IncrementalCoreBounds(
                self.graph, bounds=self.engine.bounds
            )
        if self._dynadj is None and is_packed_kernel(self.engine.kernel):
            self._dynadj = DynamicPackedAdjacency(self.graph)
        if self._dynadj is None and self._mirror is None:
            self._mirror = {
                side: [
                    set(self.graph.neighbors(side, x))
                    for x in range(self.graph.num_vertices_on(side))
                ]
                for side in Side
            }

    # Live-adjacency helpers: the packed adjacency is the source of
    # truth when present, the plain set mirror otherwise.

    def _adj_has_edge(self, u: int, v: int) -> bool:
        if self._dynadj is not None:
            return self._dynadj.has_edge(u, v)
        rows = self._mirror[Side.UPPER]
        return u < len(rows) and v in rows[u]

    def _adj_neighbors(self, side: Side, x: int) -> set[int]:
        if self._dynadj is not None:
            return self._dynadj.neighbors(side, x)
        return self._mirror[side][x]

    def _adj_grow(self, side: Side, x: int) -> None:
        if self._dynadj is not None:
            self._dynadj.ensure_vertex(side, x)
        else:
            rows = self._mirror[side]
            while x >= len(rows):
                rows.append(set())
        if self._updater is not None:
            self._updater.ensure_vertex(side, x)

    def _adj_apply(self, action: str, u: int, v: int) -> None:
        if self._dynadj is not None:
            if action == "insert":
                self._dynadj.insert_edge(u, v)
            else:
                self._dynadj.delete_edge(u, v)
            return
        if action == "insert":
            self._mirror[Side.UPPER][u].add(v)
            self._mirror[Side.LOWER][v].add(u)
        else:
            self._mirror[Side.UPPER][u].discard(v)
            self._mirror[Side.LOWER][v].discard(u)

    def _adj_snapshot(self) -> BipartiteGraph:
        if self._dynadj is not None:
            return self._dynadj.snapshot()
        return BipartiteGraph(
            [sorted(ns) for ns in self._mirror[Side.UPPER]],
            num_lower=len(self._mirror[Side.LOWER]),
        )

    def _coerce_updates(self, updates) -> list[tuple[str, int, int]]:
        ops: list[tuple[str, int, int]] = []
        for raw in updates:
            if isinstance(raw, dict):
                try:
                    action, u, v = raw["action"], raw["u"], raw["v"]
                except KeyError as exc:
                    raise InvalidRequestError(
                        f"update missing field {exc.args[0]!r}"
                    ) from None
            else:
                try:
                    action, u, v = raw
                except (TypeError, ValueError):
                    raise InvalidRequestError(
                        f"update must be (action, u, v), got {raw!r}"
                    ) from None
            if action not in ("insert", "delete"):
                raise InvalidRequestError(
                    f"update action must be 'insert' or 'delete', "
                    f"got {action!r}"
                )
            if (
                not isinstance(u, int)
                or not isinstance(v, int)
                or isinstance(u, bool)
                or isinstance(v, bool)
                or u < 0
                or v < 0
            ):
                raise InvalidRequestError(
                    f"vertex ids must be non-negative ints: ({u!r}, {v!r})"
                )
            ops.append((action, u, v))
        if not ops:
            raise InvalidRequestError("update batch must contain >= 1 edge")
        return ops

    def update_batch(self, updates) -> UpdateResult:
        """Apply edge updates to the live service, incrementally.

        ``updates`` is a sequence of ``("insert"|"delete", u, v)``
        triples (or ``{"action", "u", "v"}`` dicts).  Repeated updates
        to the same edge collapse to their net effect; net no-ops
        (inserting a present edge, deleting an absent one) are free and
        only counted.  Everything is scoped by
        :func:`~repro.core.dynamic.edge_affected_sets` — bounds are
        repaired by a bounded peeling cascade, only affected engine
        cache entries / partial trees / mounted index trees are
        invalidated — so steady-state cost is proportional to the
        touched two-hop neighborhoods, not the graph.

        Concurrent queries stay sound throughout: insertions repair the
        shared bounds *before* the graph swap (post-insert bounds are
        ≥ the old graph's exact bounds, hence still valid upper
        bounds), deletions repair *after* it (pre-delete bounds are ≥
        the shrunk graph's exact bounds).  New vertex ids extend the
        layers.  Under ``execution="process"`` the pool — whose workers
        inherited the pre-update graph at spawn — is degraded out of
        the chain on the first update and serving falls back to the
        in-process engine.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        start = time.monotonic()
        ops = self._coerce_updates(updates)
        with self._update_lock:
            self._ensure_updater()
            final: dict[tuple[int, int], str] = {}
            for action, u, v in ops:
                final[(u, v)] = action
            inserts: list[tuple[int, int]] = []
            deletes: list[tuple[int, int]] = []
            for (u, v), action in final.items():
                present = self._adj_has_edge(u, v)
                if action == "insert" and not present:
                    inserts.append((u, v))
                elif action == "delete" and present:
                    deletes.append((u, v))
            applied = len(inserts) + len(deletes)
            noops = len(ops) - applied
            if not applied:
                seconds = time.monotonic() - start
                self._updates.inc(noops, kind="noop")
                self._update_batches.inc()
                self._update_latency.observe(seconds)
                return UpdateResult(
                    applied=0,
                    noops=noops,
                    inserts=0,
                    deletes=0,
                    trees_repaired=0,
                    evicted=0,
                    cascade=0,
                    seconds=seconds,
                )
            cascade = 0
            affected: set[tuple[Side, int]] = set()
            repacks_before = (
                self._dynadj.repack_count if self._dynadj is not None else 0
            )
            # Phase 1 — insertions: repair bounds, then patch adjacency.
            # Affected sets read the *post-insert* neighborhoods.  The
            # stairs/bounds refresh is deferred across the whole insert
            # phase (overlapping neighborhoods refresh once) and flushed
            # by the `with` exit — before the snapshot swap publishes
            # the new graph, keeping the two-phase ordering sound.
            with (
                self._updater.defer_refresh()
                if self._updater is not None
                else nullcontext()
            ):
                for u, v in inserts:
                    self._adj_grow(Side.UPPER, u)
                    self._adj_grow(Side.LOWER, v)
                    if self._updater is not None:
                        self._updater.insert_edge(u, v)
                        cascade += self._updater.last_repair.cascade
                    self._adj_apply("insert", u, v)
                    up, low = edge_affected_sets(
                        self._adj_neighbors(Side.UPPER, u),
                        self._adj_neighbors(Side.LOWER, v),
                        u,
                        v,
                    )
                    affected.update((Side.UPPER, x) for x in up)
                    affected.update((Side.LOWER, x) for x in low)
            # Deletions: affected sets read the *pre-delete*
            # neighborhoods, then the adjacency is patched (the swap
            # snapshot must already exclude these edges).
            for u, v in deletes:
                up, low = edge_affected_sets(
                    self._adj_neighbors(Side.UPPER, u),
                    self._adj_neighbors(Side.LOWER, v),
                    u,
                    v,
                )
                affected.update((Side.UPPER, x) for x in up)
                affected.update((Side.LOWER, x) for x in low)
                self._adj_apply("delete", u, v)
            new_graph = self._adj_snapshot()
            self._swap_graph(new_graph, affected)
            # Phase 2 — deletions repair bounds after the swap (the
            # refresh defers across the phase; mid-phase bounds stay
            # valid upper bounds for the already-shrunk graph).
            if self._updater is not None:
                with self._updater.defer_refresh():
                    for u, v in deletes:
                        self._updater.delete_edge(u, v)
                        cascade += self._updater.last_repair.cascade
            trees = self._repair_index(affected)
            evicted = self._evict_partial(affected)
            self.last_update_affected = frozenset(affected)
            repacks = (
                self._dynadj.repack_count - repacks_before
                if self._dynadj is not None
                else 0
            )
        seconds = time.monotonic() - start
        if inserts:
            self._updates.inc(len(inserts), kind="insert")
        if deletes:
            self._updates.inc(len(deletes), kind="delete")
        if noops:
            self._updates.inc(noops, kind="noop")
        self._update_batches.inc()
        self._update_cascade.inc(cascade)
        self._update_trees.inc(trees)
        if repacks:
            self._update_repacks.inc(repacks)
        if evicted:
            self._update_evictions.inc(evicted)
        self._update_latency.observe(seconds)
        return UpdateResult(
            applied=applied,
            noops=noops,
            inserts=len(inserts),
            deletes=len(deletes),
            trees_repaired=trees,
            evicted=evicted,
            cascade=cascade,
            seconds=seconds,
        )

    def adopt_update(
        self, graph: BipartiteGraph, affected
    ) -> int:
        """Adopt an update another shard already applied.

        Sharded deployments share one bounds object, one mounted index
        and one update state across shards
        (:meth:`repro.shard.ShardedService.update_batch`), so the
        applying shard has already repaired them; every *other* shard
        only swaps its serving graph and drops its own warm state for
        the affected keys.  Returns the number of partial-index trees
        evicted here.
        """
        with self._update_lock:
            keys = set(affected)
            self._swap_graph(graph, keys)
            evicted = self._evict_partial(keys)
        if evicted:
            self._update_evictions.inc(evicted)
        return evicted

    def _swap_graph(
        self, graph: BipartiteGraph, affected: set[tuple[Side, int]]
    ) -> None:
        """Point every serving component at the post-update snapshot."""
        self.graph = graph
        self.engine.update_graph(graph, affected)
        self._online_backend.update_graph(graph)
        if isinstance(self._executor, ThreadBackend):
            # Worker tasks (queries, adaptive builds) read state.graph;
            # the bounds object is repaired in place, never swapped.
            self._executor.state.graph = graph
        elif not self._exec_degraded:
            # Process-pool workers inherited the pre-update graph when
            # they were spawned; drop the pool from the chain for good
            # and serve from the in-process engine (already a fallback
            # backend in process mode).
            if self._exec_backend in self._backends:
                self._backends.remove(self._exec_backend)
            self._exec_degraded = True
            if self.builder is not None:
                self._fallback_executor = ThreadBackend(
                    graph,
                    num_workers=1,
                    state=WorkerState(
                        graph=graph,
                        bounds=self.engine.bounds,
                        cache_size=self.config.cache_size,
                        kernel=self.engine.kernel,
                        _engine=self.engine,
                    ),
                )
        if self._fallback_executor is not None:
            self._fallback_executor.state.graph = graph
        if self.builder is not None:
            self.builder.update_graph(graph, executor=self._fallback_executor)

    def _repair_index(self, affected: set[tuple[Side, int]]) -> int:
        """Rebuild the mounted index's affected trees in place."""
        if self._index_backend is None:
            return 0
        index = self._index_backend._index
        for side, count in (
            (Side.UPPER, self.graph.num_upper),
            (Side.LOWER, self.graph.num_lower),
        ):
            trees = index.trees.setdefault(side, [])
            while len(trees) < count:
                trees.append(SearchTree())
        index.num_upper = self.graph.num_upper
        index.num_lower = self.graph.num_lower
        if self._dynadj is not None:
            source, extractor = self._dynadj, self._dynadj.extract
        else:
            source, extractor = self.graph, None
        bounds = self.engine.bounds
        count = 0
        for side, x in affected:
            trees = index.trees[side]
            if x >= len(trees):
                continue
            trees[x] = build_search_tree(
                source,
                side,
                x,
                index.array,
                bounds,
                None,
                kernel=self.engine.kernel,
                extractor=extractor,
            )
            count += 1
        return count

    def _evict_partial(self, affected) -> int:
        """Drop affected adaptive trees; the builder re-warms hot ones."""
        if self.partial_index is None:
            return 0
        evicted = 0
        for side, x in affected:
            if self.partial_index.evict(side, x):
                evicted += 1
        if evicted and self.builder is not None:
            self.builder.kick()
        return evicted

    # ------------------------------------------------------------------
    # introspection

    @property
    def backend_names(self) -> tuple[str, ...]:
        """Answer-backend names in the order they are tried."""
        return tuple(b.name for b in self._backends)

    def healthy(self) -> bool:
        """True while workers are alive and the service is open."""
        return bool(self._workers) and not self._closed

    def invalidate_edge(self, u: int, v: int) -> list[tuple[Side, int]]:
        """Drop adaptive trees an update to edge ``(u, v)`` affects.

        Applies :func:`repro.core.dynamic.edge_affected_sets` to the
        partial index — the same rule
        :class:`~repro.core.dynamic.DynamicPMBCIndex` rebuilds by.
        Returns the dropped keys; a no-op (``[]``) when the adaptive
        tier is disabled.  Vertices that stay hot are rebuilt by the
        background builder on its next sweep.
        """
        if self.partial_index is None:
            return []
        dropped = self.partial_index.invalidate_edge(self.graph, u, v)
        if dropped and self.builder is not None:
            self.builder.kick()
        return dropped

    def index_coverage(self) -> dict:
        """Which fraction of vertices have a prebuilt/adaptive tree."""
        total = self.graph.num_upper + self.graph.num_lower
        adaptive = None
        if self.partial_index is not None:
            adaptive = {
                "vertices": len(self.partial_index),
                "fraction": self.partial_index.coverage(
                    self.graph.num_upper, self.graph.num_lower
                ),
                "bytes": self.partial_index.total_bytes,
                "budget_bytes": self.partial_index.budget_bytes,
            }
        return {
            "total_vertices": total,
            "prebuilt": self._prebuilt_coverage,
            "adaptive": adaptive,
        }

    def _objective_stats(self) -> dict:
        """Per-objective request/latency/prune breakdown for ``/stats``.

        Rows come from the :mod:`repro.objectives` registry, so a
        freshly registered query family shows up (zeroed) without any
        serving-layer change.  Search-node and prune counts read the
        objective-labelled series :mod:`repro.obs.metrics_bridge`
        publishes from each computation's trace summary.
        """
        nodes = self.metrics.get("pmbc_search_nodes_total")
        prunes = self.metrics.get("pmbc_prune_total")
        breakdown: dict[str, dict] = {}
        for name in objective_kinds():
            hist = self._latency_by_objective[name]
            pruned = {}
            if prunes is not None:
                for rule in PRUNE_RULES:
                    count = prunes.value(rule=rule, objective=name)
                    if count:
                        pruned[rule] = int(count)
            breakdown[name] = {
                "requests": int(
                    self._requests_by_objective.value(objective=name)
                ),
                "latency_seconds": {
                    "count": hist.count,
                    "mean": hist.mean(),
                    **hist.percentiles(),
                },
                "search_nodes": int(nodes.value(objective=name))
                if nodes is not None
                else 0,
                "prunes": pruned,
            }
        return breakdown

    def stats(self) -> dict:
        """A JSON-friendly snapshot for ``/stats`` and dashboards."""
        cache = self.engine.cache_stats()
        adaptive = None
        if self.partial_index is not None:
            adaptive = {
                "partial_index": self.partial_index.stats(),
                "builder": self.builder.stats()
                if self.builder is not None
                else None,
                "hot_set": {
                    "tracked": len(self.hot_set),
                    "threshold": self.config.hot_threshold,
                    "half_life": self.config.hot_half_life,
                    "top": self.hot_set.snapshot(limit=10),
                },
                "hits": self._adaptive_hits.total(),
                "misses": self._adaptive_misses.total(),
                "warm_restored": self._warm_restored,
            }
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "healthy": self.healthy(),
            "workers": len(self._workers),
            "queue": {
                "depth": self._queue.qsize(),
                "capacity": self.config.max_queue,
            },
            "backends": list(self.backend_names),
            "kernel": self.engine.kernel,
            "execution": {
                "kind": self._executor.kind,
                "workers": self._executor.num_workers,
                "start_method": getattr(
                    self._executor, "start_method", None
                ),
            },
            "batch": {
                "count": self._batch_size.count,
                "mean_size": self._batch_size.mean(),
            },
            "requests": {
                "ok": self._requests.value(status="ok"),
                "empty": self._requests.value(status="empty"),
                "invalid": self._requests.value(status="invalid"),
                "queue_full": self._requests.value(status="queue_full"),
                "deadline_exceeded": self._requests.value(
                    status="deadline_exceeded"
                ),
                "error": self._requests.value(status="error"),
                "closed": self._requests.value(status="closed"),
            },
            "latency_seconds": {
                "count": self._latency.count,
                "mean": self._latency.mean(),
                **self._latency.percentiles(),
            },
            "objectives": self._objective_stats(),
            "queue_wait_seconds": {
                "count": self._queue_wait.count,
                "mean": self._queue_wait.mean(),
                **self._queue_wait.percentiles(),
            },
            "singleflight": {
                "leaders": self._sf_leaders.total(),
                "shared": self._sf_shared.total(),
                "in_flight": self._flight.in_flight(),
            },
            "traces": {
                "buffered": len(self.traces),
                "capacity": self.traces.capacity,
                "recorded": self.traces.total_recorded,
            },
            "engine_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "size": cache.size,
                "capacity": cache.capacity,
                "hit_rate": cache.hit_rate,
            },
            "index_coverage": self.index_coverage(),
            "adaptive": adaptive,
            "updates": {
                "batches": int(self._update_batches.total()),
                "inserts": int(self._updates.value(kind="insert")),
                "deletes": int(self._updates.value(kind="delete")),
                "noops": int(self._updates.value(kind="noop")),
                "cascade_vertices": int(self._update_cascade.total()),
                "trees_repaired": int(self._update_trees.total()),
                "repacks": int(self._update_repacks.total()),
                "partial_evictions": int(self._update_evictions.total()),
                "exec_degraded": self._exec_degraded,
                "bounds": self._updater.stats()
                if self._updater is not None
                else None,
                "adjacency": self._dynadj.stats()
                if self._dynadj is not None
                else None,
            },
        }
