"""The query-serving service: queueing, workers, deadlines, fallback.

:class:`PMBCService` turns the in-process query stack
(:func:`~repro.core.query.pmbc_index_query`,
:class:`~repro.core.engine.PMBCQueryEngine`,
:func:`~repro.core.online.pmbc_online_star`) into a shared service
suitable for heavy concurrent traffic:

- a **bounded request queue** with admission control — when the queue
  is full new requests are rejected immediately
  (:class:`QueueFullError`, the HTTP front-end maps it to 429) instead
  of building an unbounded backlog;
- a **worker pool** draining the queue, so one shared engine (and its
  two-hop LRU) serves every caller;
- **per-request deadlines** with cooperative timeout: expired requests
  are dropped at dequeue time without touching the backend, and
  waiting callers get :class:`DeadlineExceededError` as soon as their
  budget runs out even if a worker is still computing;
- **single-flight deduplication** of identical concurrent
  ``(side, vertex, tau_u, tau_l)`` requests (see
  :mod:`repro.serve.singleflight`);
- **graceful degradation** across backends: index → caching engine →
  plain online search, falling through on unexpected backend failure;
- **metrics** for all of the above (see :mod:`repro.serve.metrics`).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

from repro.core.engine import PMBCQueryEngine
from repro.core.index import PMBCIndex
from repro.core.online import pmbc_online_star
from repro.core.query import pmbc_index_query
from repro.core.result import Biclique
from repro.graph.bipartite import BipartiteGraph, Side
from repro.serve.metrics import MetricsRegistry
from repro.serve.singleflight import SingleFlight, SingleFlightTimeout

__all__ = [
    "PMBCService",
    "ServiceConfig",
    "QueryResult",
    "ServeError",
    "InvalidRequestError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServiceClosedError",
    "BackendError",
]


class ServeError(Exception):
    """Base class for service-level failures."""

    #: HTTP status the front-end reports for this error class.
    http_status = 500


class InvalidRequestError(ServeError):
    """Malformed request: unknown side, vertex out of range, bad taus."""

    http_status = 400


class QueueFullError(ServeError):
    """Admission control rejected the request (queue at capacity)."""

    http_status = 429


class DeadlineExceededError(ServeError):
    """The request's deadline expired before an answer was produced."""

    http_status = 504


class ServiceClosedError(ServeError):
    """The service is shut down (or shutting down)."""

    http_status = 503


class BackendError(ServeError):
    """Every backend in the degradation chain failed."""

    http_status = 500


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for :class:`PMBCService`.

    Attributes
    ----------
    num_workers:
        Size of the worker thread pool.
    max_queue:
        Bound on queued (admitted, not yet running) requests; beyond
        it new requests fail with :class:`QueueFullError`.
    default_deadline:
        Per-request budget in seconds applied when the caller gives
        none; ``None`` disables the default (requests wait forever).
    cache_size:
        LRU capacity of the shared :class:`PMBCQueryEngine`.
    use_core_bounds:
        Precompute (α,β)-core bounds for the engine/online fallbacks
        (PMBC-OL* mode).  Disable for faster startup on huge graphs.
    """

    num_workers: int = 8
    max_queue: int = 64
    default_deadline: float | None = 30.0
    cache_size: int = 256
    use_core_bounds: bool = True

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got {self.default_deadline}"
            )


@dataclass(frozen=True)
class QueryResult:
    """A served answer plus serving metadata."""

    biclique: Biclique | None
    backend: str
    shared: bool            # single-flight collapsed this request
    queue_seconds: float    # admission -> worker pickup
    total_seconds: float    # admission -> answer


@dataclass
class _Request:
    side: Side
    vertex: int
    tau_u: int
    tau_l: int
    deadline: float | None          # absolute, time.monotonic() clock
    enqueued_at: float
    future: Future = field(default_factory=Future)

    @property
    def key(self) -> tuple[Side, int, int, int]:
        return (self.side, self.vertex, self.tau_u, self.tau_l)

    def remaining(self, now: float) -> float | None:
        return None if self.deadline is None else self.deadline - now


class _IndexBackend:
    """PMBC-IQ over a prebuilt index: the O(deg(q)+|C|) fast path."""

    name = "index"

    def __init__(self, index: PMBCIndex) -> None:
        self._index = index

    def query(
        self, side: Side, vertex: int, tau_u: int, tau_l: int
    ) -> Biclique | None:
        return pmbc_index_query(self._index, side, vertex, tau_u, tau_l)


class _EngineBackend:
    """The shared caching engine (PMBC-OL* + two-hop LRU)."""

    name = "engine"

    def __init__(self, engine: PMBCQueryEngine) -> None:
        self.engine = engine

    def query(
        self, side: Side, vertex: int, tau_u: int, tau_l: int
    ) -> Biclique | None:
        return self.engine.query(side, vertex, tau_u, tau_l)


class _OnlineBackend:
    """Stateless PMBC-OL*: the last-resort fallback."""

    name = "online"

    def __init__(self, graph: BipartiteGraph) -> None:
        self._graph = graph

    def query(
        self, side: Side, vertex: int, tau_u: int, tau_l: int
    ) -> Biclique | None:
        return pmbc_online_star(self._graph, side, vertex, tau_u, tau_l)


class PMBCService:
    """A shared, instrumented personalized-biclique query service.

    Parameters
    ----------
    graph:
        The bipartite graph to serve.
    index:
        Optional prebuilt :class:`PMBCIndex`; when given it is the
        primary backend, with the engine and online search as
        fallbacks.  Without it the caching engine is primary.
    config:
        Service tunables (see :class:`ServiceConfig`).
    metrics:
        Optional shared registry; a fresh one is created by default.

    Use as a context manager, or call :meth:`start` / :meth:`close`::

        with PMBCService(graph, index=index) as service:
            result = service.query(Side.UPPER, 3, tau_u=2, tau_l=2)
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        index: PMBCIndex | None = None,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.graph = graph
        self.metrics = metrics or MetricsRegistry()
        self.engine = PMBCQueryEngine(
            graph,
            use_core_bounds=self.config.use_core_bounds,
            cache_size=self.config.cache_size,
        )
        self._backends: list[object] = []
        if index is not None:
            self._backends.append(_IndexBackend(index))
        self._backends.append(_EngineBackend(self.engine))
        self._backends.append(_OnlineBackend(graph))

        self._queue: queue.Queue[_Request | None] = queue.Queue(
            maxsize=self.config.max_queue
        )
        self._flight = SingleFlight()
        self._workers: list[threading.Thread] = []
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._started_at = time.monotonic()
        self._init_metrics()

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> PMBCService:
        """Spin up the worker pool (idempotent)."""
        with self._lifecycle_lock:
            if self._closed:
                raise ServiceClosedError("service already closed")
            if self._workers:
                return self
            for i in range(self.config.num_workers):
                worker = threading.Thread(
                    target=self._worker_loop,
                    name=f"pmbc-serve-worker-{i}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        return self

    def close(self, wait: bool = True) -> None:
        """Stop admitting requests and shut the worker pool down.

        Queued requests are drained and failed with
        :class:`ServiceClosedError`; in-flight computations finish.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        # Fail whatever is still queued, then poison the workers.
        self._drain_queue()
        for __ in workers:
            self._queue.put(None)
        if wait:
            for worker in workers:
                worker.join()
            # A request admitted in the race window between the closed
            # check and the drain would otherwise hang its caller.
            self._drain_queue()

    def _drain_queue(self) -> None:
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                return
            if request is not None:
                self._settle(
                    request,
                    "closed",
                    error=ServiceClosedError("service shut down"),
                )

    def __enter__(self) -> PMBCService:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # metrics plumbing

    def _init_metrics(self) -> None:
        m = self.metrics
        self._requests = m.counter(
            "pmbc_requests_total", "Requests by terminal status."
        )
        self._latency = m.histogram(
            "pmbc_request_latency_seconds",
            "End-to-end latency of successful requests.",
        )
        self._queue_wait = m.histogram(
            "pmbc_queue_wait_seconds",
            "Time between admission and worker pickup.",
        )
        self._backend_queries = m.counter(
            "pmbc_backend_queries_total", "Backend invocations by backend."
        )
        self._fallbacks = m.counter(
            "pmbc_backend_fallbacks_total",
            "Degradations from a failing backend to the next one.",
        )
        self._sf_leaders = m.counter(
            "pmbc_singleflight_leaders_total",
            "Requests that actually ran a computation.",
        )
        self._sf_shared = m.counter(
            "pmbc_singleflight_shared_total",
            "Requests whose computation was shared via single-flight.",
        )
        depth = m.gauge("pmbc_queue_depth", "Requests waiting in the queue.")
        depth.set_function(self._queue.qsize)
        self._inflight = m.gauge(
            "pmbc_inflight_requests", "Requests admitted but not finished."
        )
        workers_gauge = m.gauge("pmbc_workers", "Worker pool size.")
        workers_gauge.set_function(lambda: len(self._workers))
        for name, reader in (
            ("pmbc_engine_cache_hits", lambda: self.engine.cache_stats().hits),
            (
                "pmbc_engine_cache_misses",
                lambda: self.engine.cache_stats().misses,
            ),
            (
                "pmbc_engine_cache_evictions",
                lambda: self.engine.cache_stats().evictions,
            ),
            (
                "pmbc_engine_cache_size",
                lambda: self.engine.cache_stats().size,
            ),
        ):
            m.gauge(name, "Shared engine two-hop LRU.").set_function(reader)

    def _finish(self, status: str) -> None:
        self._requests.inc(status=status)
        self._inflight.dec()

    def _settle(
        self,
        request: _Request,
        status: str,
        result: QueryResult | None = None,
        error: Exception | None = None,
    ) -> bool:
        """Resolve a request's future exactly once.

        The future is the arbiter between the worker and a caller whose
        deadline fired: whichever side settles first does the terminal
        accounting, the loser backs off.  Returns True for the winner.
        """
        try:
            if error is not None:
                request.future.set_exception(error)
            else:
                request.future.set_result(result)
        except InvalidStateError:
            return False
        self._finish(status)
        return True

    # ------------------------------------------------------------------
    # request path

    def _validate(
        self, side: Side, vertex: int, tau_u: int, tau_l: int
    ) -> None:
        if not isinstance(side, Side):
            raise InvalidRequestError(f"side must be a Side, got {side!r}")
        if tau_u < 1 or tau_l < 1:
            raise InvalidRequestError(
                f"size constraints must be >= 1, got ({tau_u}, {tau_l})"
            )
        if not 0 <= vertex < self.graph.num_vertices_on(side):
            raise InvalidRequestError(
                f"vertex {vertex} out of range for the {side.value} layer"
            )

    def submit(
        self,
        side: Side,
        vertex: int,
        tau_u: int = 1,
        tau_l: int = 1,
        deadline: float | None = None,
    ) -> Future:
        """Admit a request; the Future resolves to a :class:`QueryResult`.

        Raises immediately on invalid input, a full queue, or a closed
        service — admission failures never consume a queue slot.
        """
        return self._admit(side, vertex, tau_u, tau_l, deadline).future

    def _admit(
        self,
        side: Side,
        vertex: int,
        tau_u: int,
        tau_l: int,
        deadline: float | None,
    ) -> _Request:
        if self._closed:
            self._requests.inc(status="closed")
            raise ServiceClosedError("service is closed")
        if not self._workers:
            raise ServiceClosedError("service not started (call start())")
        try:
            self._validate(side, vertex, tau_u, tau_l)
        except InvalidRequestError:
            self._requests.inc(status="invalid")
            raise
        budget = self.config.default_deadline if deadline is None else deadline
        if budget is not None and budget <= 0:
            self._requests.inc(status="invalid")
            raise InvalidRequestError(
                f"deadline must be positive, got {budget}"
            )
        now = time.monotonic()
        request = _Request(
            side=side,
            vertex=vertex,
            tau_u=tau_u,
            tau_l=tau_l,
            deadline=None if budget is None else now + budget,
            enqueued_at=now,
        )
        self._inflight.inc()
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._finish("queue_full")
            raise QueueFullError(
                f"request queue full ({self.config.max_queue} waiting)"
            ) from None
        return request

    def query(
        self,
        side: Side,
        vertex: int,
        tau_u: int = 1,
        tau_l: int = 1,
        deadline: float | None = None,
    ) -> QueryResult:
        """Admit a request and block for its answer.

        The call returns (or raises :class:`DeadlineExceededError`)
        within the request's deadline budget even when a worker is
        still computing — the abandoned computation finishes in the
        background and only warms the cache.
        """
        request = self._admit(side, vertex, tau_u, tau_l, deadline)
        budget = self.config.default_deadline if deadline is None else deadline
        try:
            return request.future.result(timeout=budget)
        except FutureTimeoutError:
            error = DeadlineExceededError(f"no answer within {budget}s")
            if self._settle(request, "deadline_exceeded", error=error):
                raise error from None
            # The worker settled in the same instant; take its outcome.
            return request.future.result()

    # ------------------------------------------------------------------
    # worker side

    def _worker_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:  # poison pill
                return
            self._serve_one(request)

    def _serve_one(self, request: _Request) -> None:
        if request.future.done():
            # The caller's deadline fired while the request was queued;
            # terminal accounting already happened on that side.
            return
        now = time.monotonic()
        queue_seconds = now - request.enqueued_at
        self._queue_wait.observe(queue_seconds)
        remaining = request.remaining(now)
        if remaining is not None and remaining <= 0:
            self._settle(
                request,
                "deadline_exceeded",
                error=DeadlineExceededError("deadline expired in queue"),
            )
            return
        try:
            flight = self._flight.do(
                request.key,
                lambda: self._query_backends(request),
                timeout=remaining,
            )
        except SingleFlightTimeout:
            self._settle(
                request,
                "deadline_exceeded",
                error=DeadlineExceededError("deadline expired awaiting flight"),
            )
            return
        except ServeError as exc:
            self._settle(request, "error", error=exc)
            return
        except Exception as exc:  # defensive: never kill a worker
            self._settle(request, "error", error=BackendError(str(exc)))
            return
        if flight.leader:
            self._sf_leaders.inc()
        if flight.shared:
            self._sf_shared.inc()
        biclique, backend_name = flight.value
        total = time.monotonic() - request.enqueued_at
        result = QueryResult(
            biclique=biclique,
            backend=backend_name,
            shared=flight.shared and not flight.leader,
            queue_seconds=queue_seconds,
            total_seconds=total,
        )
        if self._settle(
            request, "ok" if biclique is not None else "empty", result=result
        ):
            self._latency.observe(total)

    def _query_backends(
        self, request: _Request
    ) -> tuple[Biclique | None, str]:
        """Walk the degradation chain; return (answer, backend name)."""
        last_error: Exception | None = None
        for position, backend in enumerate(self._backends):
            self._backend_queries.inc(backend=backend.name)
            try:
                answer = backend.query(
                    request.side, request.vertex, request.tau_u, request.tau_l
                )
                return answer, backend.name
            except Exception as exc:
                last_error = exc
                nxt = self._backends[position + 1].name \
                    if position + 1 < len(self._backends) else "none"
                self._fallbacks.inc(**{"from": backend.name, "to": nxt})
        raise BackendError(
            f"all {len(self._backends)} backends failed "
            f"(last: {last_error!r})"
        )

    # ------------------------------------------------------------------
    # introspection

    @property
    def backend_names(self) -> tuple[str, ...]:
        return tuple(b.name for b in self._backends)

    def healthy(self) -> bool:
        return bool(self._workers) and not self._closed

    def stats(self) -> dict:
        """A JSON-friendly snapshot for ``/stats`` and dashboards."""
        cache = self.engine.cache_stats()
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "healthy": self.healthy(),
            "workers": len(self._workers),
            "queue": {
                "depth": self._queue.qsize(),
                "capacity": self.config.max_queue,
            },
            "backends": list(self.backend_names),
            "requests": {
                "ok": self._requests.value(status="ok"),
                "empty": self._requests.value(status="empty"),
                "invalid": self._requests.value(status="invalid"),
                "queue_full": self._requests.value(status="queue_full"),
                "deadline_exceeded": self._requests.value(
                    status="deadline_exceeded"
                ),
                "error": self._requests.value(status="error"),
                "closed": self._requests.value(status="closed"),
            },
            "latency_seconds": {
                "count": self._latency.count,
                "mean": self._latency.mean(),
                **self._latency.percentiles(),
            },
            "queue_wait_seconds": {
                "count": self._queue_wait.count,
                "mean": self._queue_wait.mean(),
                **self._queue_wait.percentiles(),
            },
            "singleflight": {
                "leaders": self._sf_leaders.total(),
                "shared": self._sf_shared.total(),
                "in_flight": self._flight.in_flight(),
            },
            "engine_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "size": cache.size,
                "capacity": cache.capacity,
                "hit_rate": cache.hit_rate,
            },
        }
