"""Dependency-free service metrics: counters, gauges, histograms.

The serving stack needs visibility (request rates, latency
percentiles, cache behaviour) without pulling in a metrics client.
This module provides the minimal instrument set the service uses,
with a Prometheus-style text exposition so ``GET /metrics`` output can
be scraped or read by a human.

All instruments are thread-safe: the service updates them from many
worker threads while the HTTP front-end renders them concurrently.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Fixed latency buckets (seconds).  Spans sub-millisecond index hits
#: through multi-second online searches on hub vertices.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_labels(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing counter, optionally labelled.

    One ``Counter`` instance owns every labelled series of a metric
    name; ``inc(amount, **labels)`` selects the series.
    """

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._series: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to the series keyed by ``labels``."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        key = tuple(sorted(labels.items()))
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the series keyed by ``labels`` (0 if unseen)."""
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._series.get(key, 0.0)

    def total(self) -> float:
        """Sum over every labelled series."""
        with self._lock:
            return sum(self._series.values())

    def collect(self) -> list[str]:
        """Exposition lines for this counter in Prometheus text format."""
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} counter")
        with self._lock:
            series = sorted(self._series.items())
        if not series:
            lines.append(f"{self.name} 0")
        for key, value in series:
            lines.append(f"{self.name}{_format_labels(dict(key))} {value:g}")
        return lines


class Gauge:
    """A value that can go up and down (queue depth, in-flight count)."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = None

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount

    def set_function(self, fn) -> None:
        """Make the gauge read from a callable at collection time."""
        self._fn = fn

    def value(self) -> float:
        """Current gauge value (calls the function for live gauges)."""
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def collect(self) -> list[str]:
        """Exposition lines for this gauge in Prometheus text format."""
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} gauge")
        lines.append(f"{self.name} {self.value():g}")
        return lines


class Histogram:
    """A fixed-bucket histogram with quantile estimates.

    Observations are counted into cumulative-style buckets; quantiles
    are estimated by linear interpolation inside the containing bucket
    (the classic fixed-bucket estimator), which is accurate enough for
    p50/p95/p99 dashboards without storing samples.
    """

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty sorted sequence")
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +1 = overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def mean(self) -> float:
        """Arithmetic mean of observations (0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``) in observed units."""
        if not 0 < q <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for idx, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if idx >= len(self.buckets):
                    # Overflow bucket: no upper edge; report the last edge.
                    return self.buckets[-1]
                lower = self.buckets[idx - 1] if idx > 0 else 0.0
                upper = self.buckets[idx]
                if bucket_count == 0:
                    return upper
                fraction = (rank - previous) / bucket_count
                return lower + fraction * (upper - lower)
        return self.buckets[-1]

    def percentiles(self) -> dict[str, float]:
        """The standard dashboard trio, in observed units."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def collect(self) -> list[str]:
        """Exposition lines for this histogram in Prometheus text format."""
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} histogram")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
        cumulative = 0
        for edge, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            lines.append(f'{self.name}_bucket{{le="{edge:g}"}} {cumulative}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{self.name}_sum {total_sum:g}")
        lines.append(f"{self.name}_count {total}")
        return lines


class MetricsRegistry:
    """A named collection of instruments with text exposition.

    Instruments are created through the registry so ``render()`` can
    walk them; asking for an existing name returns the same instrument
    (so modules can share counters without passing references around).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _register(self, name: str, factory, kind):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._register(name, lambda: Counter(name, help_text), Counter)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._register(name, lambda: Gauge(name, help_text), Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        return self._register(
            name, lambda: Histogram(name, help_text, buckets), Histogram
        )

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """Look up a metric by name without creating it."""
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """Prometheus-style text exposition of every instrument."""
        with self._lock:
            metrics = [self._metrics[k] for k in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.collect())
        return "\n".join(lines) + "\n"
