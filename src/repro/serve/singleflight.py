"""In-flight request deduplication (single-flight).

Personalized-biclique traffic is heavily skewed: hub vertices are
queried orders of magnitude more often than the tail (the paper's own
workload samples queries from the top-degree pool).  When several
identical ``(side, vertex, tau_u, tau_l)`` requests are in flight at
once, computing the answer once and handing it to every waiter both
cuts latency and protects the backend from redundant hub-subgraph
extractions.

The pattern follows Go's ``golang.org/x/sync/singleflight``: the first
caller for a key becomes the *leader* and runs the function; callers
arriving before the leader finishes become *followers* and block on
the shared call.  Exceptions propagate to every waiter.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

__all__ = ["SingleFlight", "FlightResult", "SingleFlightTimeout"]


class _Call:
    """One in-flight computation shared by a leader and its followers."""

    __slots__ = ("event", "value", "error", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None
        self.waiters = 1  # the leader


class FlightResult:
    """Outcome of :meth:`SingleFlight.do`.

    Attributes
    ----------
    value:
        The function's return value.
    shared:
        True when this caller received a result computed by (or also
        handed to) another caller — i.e. deduplication happened.
    leader:
        True when this caller actually ran the function.
    """

    __slots__ = ("value", "shared", "leader")

    def __init__(self, value: Any, shared: bool, leader: bool) -> None:
        self.value = value
        self.shared = shared
        self.leader = leader


class SingleFlightTimeout(Exception):
    """A follower's wait exceeded its timeout (the flight continues)."""


class SingleFlight:
    """Deduplicate concurrent calls with identical keys.

    Thread-safe.  Completed flights are forgotten immediately, so a key
    re-requested after its flight lands recomputes fresh (this is
    request-collapsing, not a cache — pair it with the engine's LRU for
    cross-request reuse).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: dict[Hashable, _Call] = {}

    def in_flight(self) -> int:
        """Number of distinct keys currently being computed."""
        with self._lock:
            return len(self._calls)

    def do(
        self,
        key: Hashable,
        fn: Callable[[], Any],
        timeout: float | None = None,
    ) -> FlightResult:
        """Run ``fn`` once per concurrent set of callers with ``key``.

        The leader executes ``fn``; followers block until it finishes
        (up to ``timeout`` seconds, raising :class:`SingleFlightTimeout`
        on expiry — the leader keeps running).  If ``fn`` raises, the
        exception is re-raised in the leader and every follower.
        """
        with self._lock:
            call = self._calls.get(key)
            if call is not None:
                call.waiters += 1
                is_leader = False
            else:
                call = _Call()
                self._calls[key] = call
                is_leader = True

        if is_leader:
            shared_with_followers = False
            try:
                call.value = fn()
            except BaseException as exc:  # propagate to every waiter
                call.error = exc
                raise
            finally:
                with self._lock:
                    self._calls.pop(key, None)
                    shared_with_followers = call.waiters > 1
                call.event.set()
            return FlightResult(
                call.value, shared=shared_with_followers, leader=True
            )

        if not call.event.wait(timeout):
            raise SingleFlightTimeout(
                f"timed out after {timeout}s waiting on flight {key!r}"
            )
        if call.error is not None:
            raise call.error
        return FlightResult(call.value, shared=True, leader=False)
