"""Render a trace summary as a human-readable search report.

Used by ``pmbc explain`` and handy in a REPL::

    print(render_trace(trace.to_dict()))

The input is the JSON shape produced by
:meth:`repro.obs.trace.SearchTrace.to_dict` (also what ``?explain=1``
and ``/debug/traces`` return), so reports can be rendered server-side
or from a saved trace alike.
"""

from __future__ import annotations

from repro.obs.trace import PRUNE_RULES

__all__ = ["render_trace"]

#: Counters surfaced in the "search" section, in display order.
_SEARCH_COUNTERS = (
    ("progressive_rounds", "progressive-bounding rounds"),
    ("bb_calls", "Branch&Bound invocations"),
    ("bb_nodes", "Branch&Bound nodes expanded"),
    ("index_lookups", "index lookups (PMBC-IQ)"),
    ("index_nodes_visited", "index tree nodes visited"),
    ("cache_hits", "engine two-hop cache hits"),
    ("cache_misses", "engine two-hop cache misses"),
)


def _fmt_count(value: int) -> str:
    return f"{value:,}"


def render_trace(summary: dict) -> str:
    """Format one trace summary as a multi-line report.

    Parameters
    ----------
    summary:
        A ``SearchTrace.to_dict()`` mapping.  Missing sections render
        as absent rather than failing, so partial traces (e.g. an
        index-only lookup with no search) still produce a report.

    Returns
    -------
    str
        The report text, ending without a trailing newline.
    """
    lines: list[str] = []
    meta = summary.get("meta") or {}
    counters = summary.get("counters") or {}
    prunes = summary.get("prunes") or {}

    header = f"trace {summary.get('trace_id', '?')}"
    if "backend" in meta:
        header += f"  backend={meta['backend']}"
    if "elapsed_ms" in summary:
        header += f"  elapsed={summary['elapsed_ms']:.3f} ms"
    lines.append(header)

    query = meta.get("query")
    if query:
        line = (
            "query: side={side} vertex={vertex} "
            "tau_u={tau_u} tau_l={tau_l}".format(**query)
        )
        # Summaries recorded before the objective dimension lack the key.
        objective = query.get("objective")
        if objective is not None:
            line += f" objective={objective}"
        lines.append(line)
    if "result" in meta:
        result = meta["result"]
        if result is None:
            lines.append("result: none (no biclique meets the constraints)")
        else:
            lines.append(
                f"result: {result['shape'][0]}x{result['shape'][1]} "
                f"biclique, {result['edges']} edges"
            )

    if counters.get("twohop_extractions"):
        lines.append("")
        lines.append("two-hop subgraph H_q (Lemma 1):")
        lines.append(
            f"  |upper|={_fmt_count(counters.get('twohop_upper', 0))}"
            f"  |lower|={_fmt_count(counters.get('twohop_lower', 0))}"
            f"  |vertices|={_fmt_count(counters.get('twohop_vertices', 0))}"
            f"  |edges|={_fmt_count(counters.get('twohop_edges', 0))}"
            f"  extractions={_fmt_count(counters['twohop_extractions'])}"
        )

    search_lines = [
        f"  {label}: {_fmt_count(counters[name])}"
        for name, label in _SEARCH_COUNTERS
        if name in counters
    ]
    if search_lines:
        lines.append("")
        lines.append("search:")
        lines.extend(search_lines)

    rounds = summary.get("rounds") or []
    if rounds:
        lines.append("")
        lines.append(
            "progressive bounding rounds "
            "(floors are local: tau_p upper / tau_w lower):"
        )
        lines.append(
            "  round  tau_p  tau_w   working(UxL)      nodes   best"
        )
        for i, rnd in enumerate(rounds, 1):
            working = "-"
            if "working_upper" in rnd:
                working = (
                    f"{rnd['working_upper']}x{rnd.get('working_lower', '?')}"
                )
            lines.append(
                f"  {i:>5}  {rnd.get('tau_p', '?'):>5}  "
                f"{rnd.get('tau_w', '?'):>5}   {working:<14}  "
                f"{rnd.get('nodes', 0):>7}   {rnd.get('best_size', 0)}"
            )

    if prunes:
        lines.append("")
        lines.append("pruning (what cut the search):")
        width = max(len(rule) for rule in prunes)
        for rule, count in sorted(
            prunes.items(), key=lambda kv: -kv[1]
        ):
            anchor, description = PRUNE_RULES.get(rule, ("", rule))
            tag = f" [{anchor}]" if anchor else ""
            lines.append(
                f"  {rule:<{width}}  {_fmt_count(count):>9}{tag}"
                f"  {description}"
            )

    spans = summary.get("spans") or []
    if spans:
        lines.append("")
        lines.append("timings:")
        for span in spans:
            lines.append(
                f"  {span.get('name', '?'):<22} "
                f"{span.get('ms', 0.0):>10.3f} ms"
            )

    return "\n".join(lines)
