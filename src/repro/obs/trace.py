"""Search traces: what a PMBC query actually did, and why it was slow.

A :class:`SearchTrace` collects, for one personalized query (or one
batch), the numbers the paper's analysis is written in terms of:

- the two-hop subgraph size ``|H_q|`` (Lemma 1 — the whole answer
  lives inside it, so its size bounds everything downstream);
- progressive-bounding rounds with their ``(τ_U^k, τ_L^k)`` floors and
  the working-subgraph size each round searched;
- Branch&Bound nodes expanded, and prune counts broken down by rule —
  the (α,β)-core bounds of Lemma 9 (vertex ``z`` pruning plus the
  prefix/suffix bounds inside Branch&Bound), the Lemma 6 shape caps,
  the one-/two-hop reductions, the incumbent size bound, and the
  classic non-maximality rule;
- index tree-node visits (PMBC-IQ) and engine cache hits/misses;
- wall-clock spans (two-hop extraction, the search itself).

The default trace is :data:`NULL_TRACE`, whose every operation is a
no-op; instrumented code pays one ``ContextVar.get`` plus an attribute
check per *query-level* event (never per search node — Branch&Bound
accumulates plain integers in its recursion state and flushes once).
Install a real trace with :func:`use_trace`::

    trace = SearchTrace()
    with use_trace(trace):
        pmbc_online_star(graph, Side.UPPER, q, 2, 2)
    trace.to_dict()          # JSON-friendly summary

Traces are **advisory**: they never change answers, and every consumer
treats a missing counter as zero.
"""

from __future__ import annotations

import contextvars
import time
import uuid
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "PRUNE_RULES",
    "SearchTrace",
    "NullTrace",
    "NULL_TRACE",
    "current_trace",
    "use_trace",
    "new_trace_id",
    "stitch_summaries",
]

#: Prune rule -> (paper anchor, one-line description).  The keys are
#: the ``rule`` label values of ``pmbc_prune_total`` and the keys of a
#: trace's ``prunes`` mapping; the glossary is rendered by
#: ``pmbc explain`` and documented in docs/observability.md.
PRUNE_RULES: dict[str, tuple[str, str]] = {
    "core_z_bound": (
        "Lemma 9",
        "vertices dropped before a round because their (α,β)-core z "
        "bound cannot beat the incumbent",
    ),
    "core_suffix_bound": (
        "Lemma 9",
        "candidate lower vertices skipped in Branch&Bound by the "
        "suffix bound (best biclique with ≥ k lower vertices)",
    ),
    "core_prefix_bound": (
        "Lemma 9",
        "upper vertices dropped from P in Branch&Bound by the prefix "
        "bound (best biclique with ≤ i upper vertices)",
    ),
    "shape_cap": (
        "Lemma 6",
        "branches cut because W exceeded the result-shape cap used "
        "during index construction",
    ),
    "size_bound": (
        "incumbent",
        "branches cut because max|P'|·max|W'| cannot exceed the best "
        "answer found so far",
    ),
    "tau_filter": (
        "Definition 3",
        "branches cut because P' fell below the τ floor of the round",
    ),
    "non_maximal": (
        "MBEA",
        "branches cut because an excluded vertex dominated P' "
        "(standard non-maximality rule; off under PMBC-OL*)",
    ),
    "reduction": (
        "Lyu et al.",
        "vertices removed by the one-/two-hop reductions before "
        "Branch&Bound",
    ),
}


def new_trace_id() -> str:
    """A fresh 12-hex-digit trace identifier."""
    return uuid.uuid4().hex[:12]


class _NullSpan:
    """A reusable no-op context manager (the null trace's ``span``)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTrace:
    """The disabled trace: every operation is a no-op.

    Instrumented code guards real work behind ``trace.enabled``, so the
    cost of the default path is one attribute read per query-level
    event.  A single shared instance (:data:`NULL_TRACE`) is installed
    as the context default.
    """

    __slots__ = ()

    enabled = False
    trace_id = None

    def add(self, name: str, amount: int = 1) -> None:
        """Ignore a counter increment."""

    def prune(self, rule: str, amount: int = 1) -> None:
        """Ignore a prune-counter increment."""

    def record_twohop(
        self, num_upper: int, num_lower: int, num_edges: int
    ) -> None:
        """Ignore a two-hop subgraph measurement."""

    def add_round(self, **info) -> None:
        """Ignore a progressive-bounding round record."""

    def span(self, name: str) -> _NullSpan:
        """Return a no-op context manager."""
        return _NULL_SPAN

    def annotate(self, **meta) -> None:
        """Ignore metadata."""

    def merge_summary(self, summary: dict) -> None:
        """Ignore a remote trace summary."""


#: The process-wide disabled trace (the context default).
NULL_TRACE = NullTrace()


class _Span:
    """One timed section of a trace (created via :meth:`SearchTrace.span`)."""

    __slots__ = ("_trace", "_name", "_start")

    def __init__(self, trace: "SearchTrace", name: str) -> None:
        self._trace = trace
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        self._trace._record_span(self._name, self._start, elapsed)


class SearchTrace:
    """A live trace for one query (or batch).

    Parameters
    ----------
    trace_id:
        Identifier threaded from the request; a fresh one is generated
        when omitted.

    Counters are plain ints keyed by name (``bb_nodes``,
    ``progressive_rounds``, ``index_nodes_visited``, ``cache_hits``,
    ...); prune counts live in a separate ``rule -> count`` mapping
    whose keys come from :data:`PRUNE_RULES`.  ``to_dict()`` produces
    the JSON summary used by ``?explain=1``, ``/debug/traces`` and
    ``pmbc explain``.

    A trace is **not** thread-safe: it belongs to one computation
    (the serving layer creates one per single-flight leader).
    """

    __slots__ = (
        "trace_id",
        "counters",
        "prunes",
        "spans",
        "rounds",
        "meta",
        "_started",
    )

    enabled = True

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.counters: dict[str, int] = {}
        self.prunes: dict[str, int] = {}
        self.spans: list[dict] = []
        self.rounds: list[dict] = []
        self.meta: dict = {}
        self._started = time.perf_counter()

    # -- recording -----------------------------------------------------

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (no-op when 0)."""
        if amount:
            self.counters[name] = self.counters.get(name, 0) + amount

    def prune(self, rule: str, amount: int = 1) -> None:
        """Attribute ``amount`` pruned vertices/branches to ``rule``."""
        if amount:
            self.prunes[rule] = self.prunes.get(rule, 0) + amount

    def record_twohop(
        self, num_upper: int, num_lower: int, num_edges: int
    ) -> None:
        """Record the extracted two-hop subgraph's size (``|H_q|``).

        Repeated calls (batches, engine cache hits) accumulate into
        ``twohop_vertices``/``twohop_edges`` and count extractions, so
        per-query traces carry the exact size and batch traces carry
        totals.
        """
        self.add("twohop_extractions")
        self.add("twohop_upper", num_upper)
        self.add("twohop_lower", num_lower)
        self.add("twohop_vertices", num_upper + num_lower)
        self.add("twohop_edges", num_edges)

    def add_round(self, **info) -> None:
        """Append one progressive-bounding round record."""
        self.rounds.append(info)

    def span(self, name: str) -> _Span:
        """A context manager timing one named section."""
        return _Span(self, name)

    def _record_span(self, name: str, start: float, elapsed: float) -> None:
        self.spans.append(
            {
                "name": name,
                "start_ms": (start - self._started) * 1e3,
                "ms": elapsed * 1e3,
            }
        )

    def annotate(self, **meta) -> None:
        """Attach free-form metadata (query, backend, outcome...)."""
        self.meta.update(meta)

    def merge_summary(self, summary: dict) -> None:
        """Fold a remote worker's ``to_dict()`` summary into this trace.

        The process execution backend runs the search in another
        address space; its worker traces locally and ships the summary
        back with the answer.  Counters and prune counts add; rounds
        and spans append in arrival order.
        """
        for name, value in (summary.get("counters") or {}).items():
            self.add(name, int(value))
        for rule, value in (summary.get("prunes") or {}).items():
            self.prune(rule, int(value))
        self.rounds.extend(summary.get("rounds") or [])
        self.spans.extend(summary.get("spans") or [])
        remote_meta = summary.get("meta") or {}
        for key, value in remote_meta.items():
            self.meta.setdefault(key, value)

    # -- export --------------------------------------------------------

    def elapsed_ms(self) -> float:
        """Milliseconds since the trace was created."""
        return (time.perf_counter() - self._started) * 1e3

    def to_dict(self) -> dict:
        """A JSON-friendly summary of everything recorded so far."""
        return {
            "trace_id": self.trace_id,
            "elapsed_ms": self.elapsed_ms(),
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "prunes": dict(self.prunes),
            "rounds": list(self.rounds),
            "spans": list(self.spans),
        }


#: The active trace of the current execution context.
_ACTIVE: contextvars.ContextVar[SearchTrace | NullTrace] = (
    contextvars.ContextVar("pmbc_search_trace", default=NULL_TRACE)
)


def current_trace() -> SearchTrace | NullTrace:
    """The trace installed for the current context (null by default)."""
    return _ACTIVE.get()


@contextmanager
def use_trace(trace: SearchTrace | NullTrace) -> Iterator[SearchTrace | NullTrace]:
    """Install ``trace`` as the active trace for the ``with`` body.

    Uses a :class:`contextvars.ContextVar`, so concurrent threads (and
    asyncio tasks) each see their own active trace and nested
    installations restore the previous one on exit.
    """
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)


def stitch_summaries(
    summaries, trace_id: str | None = None, **meta
) -> dict:
    """Stitch several trace summaries into one cross-cutting summary.

    The shard router scatters a batch across shards and gathers one
    ``to_dict()``-shaped summary per sub-batch; this folds them into a
    single parent summary (counters and prune counts add, rounds and
    spans append) with per-child provenance under
    ``meta["stitched_from"]``.  ``None`` entries are skipped, extra
    keyword arguments become authoritative parent metadata, and the
    parent's ``elapsed_ms`` is the maximum child elapsed time — the
    children ran concurrently, so their wall clocks overlap rather
    than add.
    """
    parent = SearchTrace(trace_id=trace_id)
    stitched_from = []
    elapsed = 0.0
    for summary in summaries:
        if not summary:
            continue
        parent.merge_summary(summary)
        child_meta = summary.get("meta") or {}
        stitched_from.append(
            {
                "trace_id": summary.get("trace_id"),
                "shard": child_meta.get("shard"),
                "backend": child_meta.get("backend"),
                "elapsed_ms": summary.get("elapsed_ms"),
            }
        )
        elapsed = max(elapsed, float(summary.get("elapsed_ms") or 0.0))
    parent.annotate(**meta)
    stitched = parent.to_dict()
    stitched["meta"]["stitched_from"] = stitched_from
    stitched["elapsed_ms"] = elapsed
    return stitched
