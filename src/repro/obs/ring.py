"""A bounded, thread-safe ring buffer of completed trace summaries.

The serving layer appends one summary per computation (single-flight
leader or batch); ``GET /debug/traces`` reads them back most-recent
first.  The buffer holds plain dicts (the ``SearchTrace.to_dict()``
shape), so snapshots are JSON-ready and never retain live trace
objects.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["TraceRing"]


class TraceRing:
    """Keep the last ``capacity`` trace summaries.

    Parameters
    ----------
    capacity:
        Maximum summaries retained; appending beyond it evicts the
        oldest.  Must be >= 1.

    Raises
    ------
    ValueError
        If ``capacity`` is < 1.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._total = 0

    def append(self, summary: dict) -> None:
        """Store one trace summary (oldest entry evicted when full)."""
        with self._lock:
            self._entries.append(summary)
            self._total += 1

    def snapshot(self, limit: int | None = None) -> list[dict]:
        """The stored summaries, most recent first.

        Parameters
        ----------
        limit:
            Return at most this many entries (all when omitted).
        """
        with self._lock:
            entries = list(self._entries)
        entries.reverse()
        if limit is not None and limit >= 0:
            entries = entries[:limit]
        return entries

    def find(self, trace_id: str) -> dict | None:
        """The most recent summary with the given id, or None."""
        for entry in self.snapshot():
            if entry.get("trace_id") == trace_id:
                return entry
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_recorded(self) -> int:
        """How many summaries were ever appended (including evicted)."""
        with self._lock:
            return self._total
