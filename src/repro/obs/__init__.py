"""repro.obs — end-to-end query observability.

A dependency-free tracing subsystem threaded through the whole query
path (two-hop extraction, progressive bounding, Branch&Bound, the
index walk, the caching engine, the serving layer):

- :class:`~repro.obs.trace.SearchTrace` — spans + counters for one
  query: ``|H_q|``, progressive rounds, B&B nodes, prune counts by
  rule (:data:`~repro.obs.trace.PRUNE_RULES` maps rules to the
  paper's lemmas), index tree visits, cache hits/misses;
- :func:`~repro.obs.trace.use_trace` /
  :func:`~repro.obs.trace.current_trace` — context-local trace
  installation with a near-zero-cost :data:`~repro.obs.trace.NULL_TRACE`
  default;
- :class:`~repro.obs.ring.TraceRing` — the bounded buffer behind
  ``GET /debug/traces``;
- :func:`~repro.obs.render.render_trace` — the human-readable report
  ``pmbc explain`` prints;
- :func:`~repro.obs.metrics_bridge.publish_trace` — aggregation into
  a (duck-typed) metrics registry: ``pmbc_search_nodes_total``,
  ``pmbc_prune_total{rule=...}``, ``pmbc_twohop_size``.

See docs/observability.md for the trace anatomy and counter glossary.
"""

from repro.obs.metrics_bridge import (
    TWOHOP_SIZE_BUCKETS,
    publish_trace,
    register_search_metrics,
)
from repro.obs.render import render_trace
from repro.obs.ring import TraceRing
from repro.obs.trace import (
    NULL_TRACE,
    PRUNE_RULES,
    NullTrace,
    SearchTrace,
    current_trace,
    new_trace_id,
    stitch_summaries,
    use_trace,
)

__all__ = [
    "SearchTrace",
    "NullTrace",
    "NULL_TRACE",
    "PRUNE_RULES",
    "current_trace",
    "use_trace",
    "new_trace_id",
    "stitch_summaries",
    "TraceRing",
    "render_trace",
    "publish_trace",
    "register_search_metrics",
    "TWOHOP_SIZE_BUCKETS",
]
