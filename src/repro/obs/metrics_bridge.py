"""Feed aggregated trace counters into a metrics registry.

``repro.obs`` is dependency-free, so the registry is duck-typed: any
object with ``counter(name, help) -> .inc(amount, **labels)`` and
``histogram(name, help, buckets) -> .observe(value)`` works — in
practice :class:`repro.serve.metrics.MetricsRegistry`.  The serving
layer calls :func:`publish_trace` once per computation, turning
per-query traces into the fleet-level series scraped from
``/metrics``:

- ``pmbc_search_nodes_total{objective=...}`` — Branch&Bound nodes
  expanded, by query-family objective;
- ``pmbc_prune_total{objective=...,rule=...}`` — prune counts by rule
  (the glossary in :data:`repro.obs.trace.PRUNE_RULES`) and objective;
- ``pmbc_twohop_size`` — histogram of extracted ``|H_q|`` vertex
  counts;
- ``pmbc_progressive_rounds_total``, ``pmbc_index_tree_visits_total``,
  ``pmbc_traces_total`` — supporting series.
"""

from __future__ import annotations

__all__ = ["TWOHOP_SIZE_BUCKETS", "publish_trace", "register_search_metrics"]

#: Buckets for the ``pmbc_twohop_size`` histogram — vertex counts of
#: extracted two-hop subgraphs, spanning leaf vertices through hubs.
TWOHOP_SIZE_BUCKETS: tuple[float, ...] = (
    2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

_HELP = {
    "pmbc_search_nodes_total": "Branch&Bound nodes expanded.",
    "pmbc_prune_total": "Search prunes by rule (see docs/observability.md).",
    "pmbc_twohop_size": "Vertices in extracted two-hop subgraphs.",
    "pmbc_progressive_rounds_total": "Progressive-bounding rounds run.",
    "pmbc_index_tree_visits_total": "PMBC-IQ search-tree nodes visited.",
    "pmbc_traces_total": "Trace summaries published.",
}


def register_search_metrics(registry) -> None:
    """Pre-register the search metrics so ``/metrics`` always shows them.

    Parameters
    ----------
    registry:
        A duck-typed metrics registry (see module docstring).
        Registering up front also pins the ``pmbc_twohop_size``
        buckets before any publisher races to create the histogram.
    """
    registry.counter("pmbc_search_nodes_total", _HELP["pmbc_search_nodes_total"])
    registry.counter("pmbc_prune_total", _HELP["pmbc_prune_total"])
    registry.histogram(
        "pmbc_twohop_size",
        _HELP["pmbc_twohop_size"],
        buckets=TWOHOP_SIZE_BUCKETS,
    )
    registry.counter(
        "pmbc_progressive_rounds_total",
        _HELP["pmbc_progressive_rounds_total"],
    )
    registry.counter(
        "pmbc_index_tree_visits_total", _HELP["pmbc_index_tree_visits_total"]
    )
    registry.counter("pmbc_traces_total", _HELP["pmbc_traces_total"])


def _trace_objective(summary: dict) -> str:
    """The query-family objective a trace summary was computed under.

    Query traces carry it inside ``meta.query``; batch traces annotate
    ``meta.objective`` directly (``"mixed"`` for mixed batches).
    Summaries that predate the objective dimension default to
    ``"pmbc"``.
    """
    meta = summary.get("meta") or {}
    query = meta.get("query")
    if isinstance(query, dict) and "objective" in query:
        return query["objective"]
    return meta.get("objective", "pmbc")


def publish_trace(summary: dict, registry) -> None:
    """Aggregate one trace summary into ``registry``.

    Parameters
    ----------
    summary:
        A :meth:`repro.obs.trace.SearchTrace.to_dict` mapping (missing
        counters count as zero).
    registry:
        The duck-typed metrics registry to publish into.
    """
    counters = summary.get("counters") or {}
    objective = _trace_objective(summary)
    registry.counter("pmbc_traces_total", _HELP["pmbc_traces_total"]).inc()
    nodes = counters.get("bb_nodes", 0)
    if nodes:
        registry.counter(
            "pmbc_search_nodes_total", _HELP["pmbc_search_nodes_total"]
        ).inc(nodes, objective=objective)
    prune_counter = registry.counter(
        "pmbc_prune_total", _HELP["pmbc_prune_total"]
    )
    for rule, count in (summary.get("prunes") or {}).items():
        if count:
            prune_counter.inc(count, rule=rule, objective=objective)
    extractions = counters.get("twohop_extractions", 0)
    if extractions:
        # Batches accumulate sizes over several extractions; observe
        # the mean so the histogram stays a per-extraction measure.
        registry.histogram(
            "pmbc_twohop_size",
            _HELP["pmbc_twohop_size"],
            buckets=TWOHOP_SIZE_BUCKETS,
        ).observe(counters.get("twohop_vertices", 0) / extractions)
    rounds = counters.get("progressive_rounds", 0)
    if rounds:
        registry.counter(
            "pmbc_progressive_rounds_total",
            _HELP["pmbc_progressive_rounds_total"],
        ).inc(rounds)
    visits = counters.get("index_nodes_visited", 0)
    if visits:
        registry.counter(
            "pmbc_index_tree_visits_total",
            _HELP["pmbc_index_tree_visits_total"],
        ).inc(visits)
