"""The paper's objective: personalized maximum (edge-count) biclique.

This is the default :class:`~repro.objectives.base.Objective`; with it
installed, every layer behaves exactly as before the objective seam
existed — the score is ``|P|·|W|``, the Lemma 9 size bounds apply, the
PMBC-Index answers queries, and the progressive schedule is the
``τ_P^k = best/floor_w`` / ``τ_W^k = floor_w/2`` pair of Algorithm 5.
"""

from __future__ import annotations

from repro.objectives.base import Objective

__all__ = ["PMBCObjective", "PMBC_OBJECTIVE"]


class PMBCObjective(Objective):
    """Maximize the edge count ``|P|·|W|`` (Definition 3 of the paper)."""

    name = "pmbc"
    uses_size_bounds = True
    index_compatible = True

    def score(self, num_upper: int, num_lower: int) -> int:
        """Edge count of the biclique."""
        return num_upper * num_lower

    def bound(self, max_upper: int, max_lower: int) -> int:
        """Edge count is monotone: the product of the maxima bounds it."""
        return max_upper * max_lower

    def round_floors(
        self, best_score: int, floor_w: int, tau_p: int, tau_w: int
    ) -> tuple[int, int]:
        """Algorithm 5's schedule: beat the incumbent under ``floor_w``.

        Any biclique with more than ``best_score`` edges and at most
        ``floor_w`` lower vertices has more than ``best_score/floor_w``
        upper vertices, so the upper floor is exact for the round.
        """
        return max(best_score // floor_w, tau_p), max(floor_w // 2, tau_w)


#: The shared stateless instance (registered by :mod:`repro.objectives`).
PMBC_OBJECTIVE = PMBCObjective()
