"""The pluggable query-family objective interface and registry.

The paper's machinery — progressive bounding (Algorithm 5), the
Branch&Bound of Algorithm 1, the reductions, and the two compute
kernels — maximizes *one* function of a biclique: its edge count
``|P|·|W|``.  The neighboring problems (maximum *balanced* biclique,
k-biplex, BBK-style enumeration) need the same search tree with a
different scoring/bounding rule.  An :class:`Objective` packages that
rule:

- :meth:`Objective.score` — the value of a recorded biclique, from its
  two side sizes.  Branch&Bound keeps the highest-scoring biclique.
- :meth:`Objective.bound` — an (admissible) upper bound on the score of
  any biclique reachable below a node, from the maximum attainable side
  sizes.  Branches whose bound cannot beat the incumbent are cut.
- :meth:`Objective.effective_floors` — translate the caller's
  ``(tau_p, tau_w)`` minimums into the floors the family actually
  implies (balanced answers must satisfy *both* on each side).
- :meth:`Objective.round_floors` — the progressive-bounding threshold
  schedule: given the incumbent score and the current ``floor_w``,
  produce the ``(τ_P^k, τ_W^k)`` floors for the next round.
- :meth:`Objective.finalize` — trim/canonicalize the winning biclique
  (a balanced answer is cut down to ``k×k``, keeping the anchor).

Two capability flags gate machinery that is only *sound* for the
paper's edge-count objective:

- ``uses_size_bounds`` — whether the (α,β)-core size bounds of Lemma 9
  (the ``z`` bound, the prefix/suffix bounds) apply.  They bound the
  *edge count* of a biclique, so comparing them against a min-side
  score would prune winners.
- ``index_compatible`` — whether PMBC-Index / partial-index trees can
  answer the objective.  The storage model (Lemma 6 skyline of
  edge-count maxima) only answers the paper's objective; other
  families must fall through to online search.

Objectives must be stateless and hashable-by-identity: one shared
instance serves every thread and both kernels.  Both kernels call the
same two hot methods (:meth:`score` / :meth:`bound`), which keeps
cross-kernel answer parity by construction.

This module must not import :mod:`repro.core` / :mod:`repro.mbc` /
:mod:`repro.kernel` — they all import the registry.
"""

from __future__ import annotations

import threading

__all__ = [
    "Objective",
    "register_objective",
    "get_objective",
    "objective_kinds",
    "DEFAULT_OBJECTIVE",
]

#: The objective assumed when a query does not name one.
DEFAULT_OBJECTIVE = "pmbc"


class Objective:
    """One query family's scoring/bounding rule (see module docstring).

    Subclasses set :attr:`name` and the capability flags, and implement
    :meth:`score`; every other hook has a sound default.  Instances are
    stateless — register one singleton per family.
    """

    #: Registry key; also the ``QueryRequest.objective`` wire value.
    name: str = "abstract"

    #: Whether Lemma 9 (α,β)-core *size* bounds are admissible.
    uses_size_bounds: bool = False

    #: Whether PMBC-Index / partial-index trees answer this objective.
    index_compatible: bool = False

    # -- hot hooks (called per search node by both kernels) ------------

    def score(self, num_upper: int, num_lower: int) -> int:
        """Value of a biclique with the given side sizes."""
        raise NotImplementedError

    def bound(self, max_upper: int, max_lower: int) -> int:
        """Upper bound on :meth:`score` given maximum attainable sides.

        The default is admissible whenever :meth:`score` is monotone in
        both side sizes (true for every biclique family we know of).
        """
        return self.score(max_upper, max_lower)

    # -- query-level hooks ---------------------------------------------

    def effective_floors(self, tau_p: int, tau_w: int) -> tuple[int, int]:
        """The per-side minimums this family actually implies."""
        return tau_p, tau_w

    def round_floors(
        self, best_score: int, floor_w: int, tau_p: int, tau_w: int
    ) -> tuple[int, int]:
        """Progressive-bounding floors ``(τ_P^k, τ_W^k)`` for one round.

        ``best_score`` is the incumbent's score and ``floor_w`` the
        round's lower-side working floor (halved between rounds by the
        driver).  The returned floors must never exclude a biclique
        scoring above ``best_score`` once ``floor_w`` has decayed to
        ``tau_w`` — that is what makes the schedule exact.
        """
        return tau_p, max(floor_w, tau_w)

    def finalize(
        self,
        upper: frozenset[int],
        lower: frozenset[int],
        anchor_upper: int | None = None,
        anchor_lower: int | None = None,
    ) -> tuple[frozenset[int], frozenset[int]]:
        """Trim/canonicalize a winning biclique (identity by default).

        ``anchor_upper``/``anchor_lower`` name the personalized query
        vertex (global id) on its side, when the search was anchored;
        trims must keep it.
        """
        return upper, lower


_LOCK = threading.Lock()
_REGISTRY: dict[str, Objective] = {}


def register_objective(objective: Objective) -> Objective:
    """Register ``objective`` under its :attr:`~Objective.name`.

    Re-registering the same name with a different instance raises — the
    name is a wire-visible contract (requests, metrics labels, CLI
    choices), not a mutable binding.
    """
    name = objective.name
    if not name or not isinstance(name, str):
        raise ValueError(f"objective name must be a non-empty str, got {name!r}")
    with _LOCK:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not objective:
            raise ValueError(f"objective {name!r} is already registered")
        _REGISTRY[name] = objective
    return objective


def objective_kinds() -> tuple[str, ...]:
    """Registered objective names, default first (CLI/docs order)."""
    with _LOCK:
        names = list(_REGISTRY)
    names.sort(key=lambda n: (n != DEFAULT_OBJECTIVE, n))
    return tuple(names)


def get_objective(spec: "str | Objective | None" = None) -> Objective:
    """Resolve ``spec`` to a registered :class:`Objective` instance.

    ``None`` means the default (``"pmbc"``); an :class:`Objective`
    instance passes through; a string is looked up in the registry and
    an unknown name raises ``ValueError`` naming the valid choices.
    """
    if spec is None:
        spec = DEFAULT_OBJECTIVE
    if isinstance(spec, Objective):
        return spec
    with _LOCK:
        found = _REGISTRY.get(spec)
    if found is None:
        raise ValueError(
            f"unknown objective {spec!r}: expected one of {objective_kinds()}"
        )
    return found
