"""Personalized maximum *balanced* biclique (Chen et al., 2020 family).

The score of a biclique is its smaller side, ``min(|P|, |W|)``: a
biclique scoring ``k`` can be trimmed to a complete ``k×k`` bipartite
subgraph, so maximizing the min side is exactly the maximum balanced
biclique problem, anchored at the query vertex.

Soundness notes, relative to the shared search machinery:

- The left-closed Branch&Bound enumerates, for every lower set ``W``,
  the *maximal* upper set ``P = Γ(W)``; any balanced optimum trimmed
  from some ``(P*, W*)`` is dominated by the node with ``W ⊇ W*`` and
  ``P = Γ(W) ⊇ P*`` visited by the enumeration, whose min side is no
  smaller.  Scoring nodes by min side therefore finds the optimum.
- The Lemma 9 (α,β)-core bounds compare an *edge count* against the
  incumbent, which is not admissible against a min-side score —
  ``uses_size_bounds = False`` switches them off.
- The PMBC-Index stores the Lemma 6 skyline of edge-count maxima; a
  min-side optimum need not be on it, so ``index_compatible = False``
  and the index/partial tiers decline with a MISS.
- An improving biclique has *both* sides larger than the incumbent
  score, which yields the ``τ_P^k = best+1`` progressive schedule.
"""

from __future__ import annotations

from repro.objectives.base import Objective

__all__ = ["BalancedObjective", "BALANCED_OBJECTIVE"]


class BalancedObjective(Objective):
    """Maximize ``min(|P|, |W|)`` — the balanced biclique objective."""

    name = "balanced"
    uses_size_bounds = False
    index_compatible = False

    def score(self, num_upper: int, num_lower: int) -> int:
        """The smaller side: the ``k`` of the trimmed ``k×k`` answer."""
        return num_upper if num_upper < num_lower else num_lower

    def bound(self, max_upper: int, max_lower: int) -> int:
        """min is monotone in both sides, so min of the maxima bounds it."""
        return max_upper if max_upper < max_lower else max_lower

    def effective_floors(self, tau_p: int, tau_w: int) -> tuple[int, int]:
        """A ``k×k`` answer meets both minimums only when ``k >= max``."""
        floor = max(tau_p, tau_w)
        return floor, floor

    def round_floors(
        self, best_score: int, floor_w: int, tau_p: int, tau_w: int
    ) -> tuple[int, int]:
        """Improving ``min(|P|,|W|) > best`` forces ``|P| > best``.

        Only the upper floor is raised by the incumbent: the driver's
        round loop terminates when the *lower* floor decays to
        ``tau_w``, so that floor must keep its ``floor_w // 2``
        schedule.  The final round (``τ_W^k = tau_w``) is then complete
        for any biclique beating the incumbent, which needs both sides
        ``>= best + 1 >= τ_P^k``.
        """
        return max(best_score + 1, tau_p), max(floor_w // 2, tau_w)

    def finalize(
        self,
        upper: frozenset[int],
        lower: frozenset[int],
        anchor_upper: int | None = None,
        anchor_lower: int | None = None,
    ) -> tuple[frozenset[int], frozenset[int]]:
        """Trim to ``k×k``, keeping the anchor and the smallest ids.

        Any sub-rectangle of a biclique is a biclique, so dropping the
        excess vertices of the larger side (never the anchor) preserves
        validity while making the answer literally balanced.
        """
        k = min(len(upper), len(lower))
        return (
            _trim(upper, k, anchor_upper),
            _trim(lower, k, anchor_lower),
        )


def _trim(vertices: frozenset[int], k: int, anchor: int | None) -> frozenset[int]:
    if len(vertices) <= k:
        return vertices
    keep: list[int] = [anchor] if anchor in vertices else []
    for v in sorted(vertices):
        if len(keep) >= k:
            break
        if keep and v == keep[0]:
            continue
        keep.append(v)
    return frozenset(keep)


#: The shared stateless instance (registered by :mod:`repro.objectives`).
BALANCED_OBJECTIVE = BalancedObjective()
