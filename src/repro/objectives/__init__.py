"""Pluggable query-family objectives over the shared search kernel.

One serving stack, many biclique-like products: an
:class:`~repro.objectives.base.Objective` plugs a family's scoring,
bounding, progressive-threshold, and finalization rules into the
shared progressive-bounding + Branch&Bound machinery, which both
compute kernels (``"set"``, ``"bitset"`` and ``"words"``) execute
identically.

Built-in families:

- ``"pmbc"`` — the paper's personalized maximum biclique (edge count);
  the default everywhere, bit-for-bit compatible with the pre-seam
  behavior.
- ``"balanced"`` — personalized maximum *balanced* biclique
  (``min(|P|, |W|)``), served end to end: engine, HTTP, client, CLI
  (``--objective balanced``), and per-objective observability.

Adding a family: subclass ``Objective``, call
:func:`register_objective`, and every query surface (``QueryRequest``,
``/query``, ``pmbc query --objective``) accepts its name — see
docs/architecture.md for the how-to.
"""

from repro.objectives.balanced import BALANCED_OBJECTIVE, BalancedObjective
from repro.objectives.base import (
    DEFAULT_OBJECTIVE,
    Objective,
    get_objective,
    objective_kinds,
    register_objective,
)
from repro.objectives.pmbc import PMBC_OBJECTIVE, PMBCObjective

__all__ = [
    "DEFAULT_OBJECTIVE",
    "Objective",
    "PMBCObjective",
    "PMBC_OBJECTIVE",
    "BalancedObjective",
    "BALANCED_OBJECTIVE",
    "get_objective",
    "objective_kinds",
    "register_objective",
]

register_objective(PMBC_OBJECTIVE)
register_objective(BALANCED_OBJECTIVE)
