"""Hopcroft–Karp maximum bipartite matching and König vertex covers.

Self-contained substrate: operates on a plain adjacency structure
``adj[u] -> iterable of lower ids`` so it can run on complement graphs
without materializing a :class:`BipartiteGraph`.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

_INF = float("inf")


def hopcroft_karp(
    adj: Sequence[Sequence[int]], num_lower: int
) -> tuple[int, list[int | None], list[int | None]]:
    """Maximum matching of a bipartite graph in ``O(E·√V)``.

    ``adj[u]`` lists the lower-layer neighbors of upper vertex ``u``.
    Returns ``(size, match_upper, match_lower)`` where
    ``match_upper[u]`` is the lower vertex matched to ``u`` (or None)
    and vice versa.
    """
    num_upper = len(adj)
    match_upper: list[int | None] = [None] * num_upper
    match_lower: list[int | None] = [None] * num_lower
    dist: list[float] = [0.0] * num_upper

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(num_upper):
            if match_upper[u] is None:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                nxt = match_lower[v]
                if nxt is None:
                    found_free = True
                elif dist[nxt] == _INF:
                    dist[nxt] = dist[u] + 1
                    queue.append(nxt)
        return found_free

    def dfs(u: int) -> bool:
        for v in adj[u]:
            nxt = match_lower[v]
            if nxt is None or (dist[nxt] == dist[u] + 1 and dfs(nxt)):
                match_upper[u] = v
                match_lower[v] = u
                return True
        dist[u] = _INF
        return False

    size = 0
    while bfs():
        for u in range(num_upper):
            if match_upper[u] is None and dfs(u):
                size += 1
    return size, match_upper, match_lower


def konig_vertex_cover(
    adj: Sequence[Sequence[int]],
    num_lower: int,
    match_upper: Sequence[int | None],
    match_lower: Sequence[int | None],
) -> tuple[set[int], set[int]]:
    """A minimum vertex cover from a maximum matching (König's theorem).

    Returns ``(cover_upper, cover_lower)``.  The complement of the
    cover is a maximum independent set.
    """
    num_upper = len(adj)
    # Alternating BFS from unmatched upper vertices.
    visited_upper = [False] * num_upper
    visited_lower = [False] * num_lower
    queue: deque[int] = deque(
        u for u in range(num_upper) if match_upper[u] is None
    )
    for u in queue:
        visited_upper[u] = True
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if visited_lower[v]:
                continue
            visited_lower[v] = True
            nxt = match_lower[v]
            if nxt is not None and not visited_upper[nxt]:
                visited_upper[nxt] = True
                queue.append(nxt)
    cover_upper = {u for u in range(num_upper) if not visited_upper[u]}
    cover_lower = {v for v in range(num_lower) if visited_lower[v]}
    return cover_upper, cover_lower
