"""Maximum vertex biclique (MVB) substrate.

The related-work variant the paper contrasts against (Section II): MVB
maximizes the number of *vertices* of a biclique rather than edges and
is polynomial-time solvable — a biclique of ``G`` is an independent
set of the bipartite complement, so König's theorem applied to a
maximum matching of the complement solves it exactly.  Ships its own
Hopcroft–Karp implementation.
"""

from repro.mvb.matching import hopcroft_karp, konig_vertex_cover
from repro.mvb.mvb import maximum_vertex_biclique

__all__ = [
    "hopcroft_karp",
    "konig_vertex_cover",
    "maximum_vertex_biclique",
]
