"""Exact maximum vertex biclique via König's theorem.

``(A, B)`` is a biclique of ``G`` exactly when ``A ∪ B`` is an
independent set of the bipartite *complement* of ``G``; a maximum
independent set of a bipartite graph is the complement of a König
minimum vertex cover.  Complementing is Θ(|U|·|L|), so inputs are
guarded by ``max_cells``.
"""

from __future__ import annotations

from repro.core.result import Biclique
from repro.graph.bipartite import BipartiteGraph, Side
from repro.mvb.matching import hopcroft_karp, konig_vertex_cover

#: Refuse to densify complements beyond this many cells.
DEFAULT_MAX_CELLS = 4_000_000


def maximum_vertex_biclique(
    graph: BipartiteGraph,
    require_both_sides: bool = True,
    max_cells: int = DEFAULT_MAX_CELLS,
) -> Biclique | None:
    """A biclique maximizing ``|U(C)| + |L(C)|``.

    With ``require_both_sides`` (the biclique convention used by the
    paper), degenerate one-sided independent sets are rejected and the
    best single-vertex-anchored biclique ``({x}, N(x))`` is considered
    instead.  Returns None only for edgeless graphs under that
    convention.
    """
    num_upper, num_lower = graph.num_upper, graph.num_lower
    if num_upper * num_lower > max_cells:
        raise ValueError(
            f"complement would have {num_upper * num_lower} cells "
            f"(> {max_cells}); MVB is quadratic in the layer sizes"
        )
    if num_upper == 0 or num_lower == 0:
        return None

    all_lower = frozenset(range(num_lower))
    complement_adj = [
        sorted(all_lower - graph.neighbor_set(Side.UPPER, u))
        for u in range(num_upper)
    ]
    __, match_upper, match_lower = hopcroft_karp(complement_adj, num_lower)
    cover_upper, cover_lower = konig_vertex_cover(
        complement_adj, num_lower, match_upper, match_lower
    )
    best = Biclique(
        upper=frozenset(range(num_upper)) - cover_upper,
        lower=frozenset(range(num_lower)) - cover_lower,
    )
    if not require_both_sides:
        return best
    if best.upper and best.lower:
        # The unconstrained optimum is itself two-sided, so it is also
        # the two-sided optimum.
        return best
    return _edge_anchored_best(graph)


def _edge_anchored_best(graph: BipartiteGraph) -> Biclique | None:
    """Exact two-sided MVB when the unconstrained optimum is one-sided.

    Every two-sided biclique contains some edge ``(u, v)``; forcing
    that edge into the independent set removes the complement-neighbors
    of ``u`` and ``v``, and König on the remainder is exact.  Costs one
    matching per edge — acceptable because this path only triggers on
    degenerate inputs (e.g. empty or near-empty graphs).
    """
    best: Biclique | None = None
    best_total = 0
    for u0, v0 in graph.edges():
        # Candidate uppers: adjacent to v0 (others conflict with v0 in
        # the complement).  Candidate lowers: adjacent to u0.
        uppers = sorted(graph.neighbor_set(Side.LOWER, v0))
        lowers = sorted(graph.neighbor_set(Side.UPPER, u0))
        lower_pos = {v: i for i, v in enumerate(lowers)}
        all_pos = frozenset(range(len(lowers)))
        complement_adj = [
            sorted(
                all_pos
                - {
                    lower_pos[v]
                    for v in graph.neighbor_set(Side.UPPER, u)
                    if v in lower_pos
                }
            )
            for u in uppers
        ]
        __, match_upper, match_lower = hopcroft_karp(
            complement_adj, len(lowers)
        )
        cover_upper, cover_lower = konig_vertex_cover(
            complement_adj, len(lowers), match_upper, match_lower
        )
        upper_set = frozenset(
            uppers[i] for i in range(len(uppers)) if i not in cover_upper
        )
        lower_set = frozenset(
            lowers[i] for i in range(len(lowers)) if i not in cover_lower
        )
        if not upper_set or not lower_set:
            # u0 / v0 can always stand alone: they conflict with nothing
            # in the restricted universe.
            upper_set = upper_set or frozenset({u0})
            lower_set = lower_set or frozenset({v0})
        total = len(upper_set) + len(lower_set)
        if total > best_total:
            best = Biclique(upper=upper_set, lower=lower_set)
            best_total = total
    return best
