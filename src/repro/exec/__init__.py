"""repro.exec — the process-parallel execution substrate.

One pool abstraction shared by the serving layer and the parallel
index build:

- :class:`~repro.exec.executor.Executor` — dispatch named tasks over
  ``(side, q, τU, τL)`` work items with uniform metrics;
- :class:`~repro.exec.executor.ThreadBackend` — in-process execution
  (PR 1 behaviour): shared engine, shared LRU, GIL bound;
- :class:`~repro.exec.executor.ProcessBackend` — worker processes that
  inherit the immutable graph + core bounds once and then answer work
  items without re-pickling the graph, for real-core parallelism;
- :func:`~repro.exec.executor.create_executor` — backend selection by
  name with graceful thread fallback on platforms without usable
  process pools.

See ``docs/execution.md`` for the backend-selection guide.
"""

from repro.exec.executor import (
    EXECUTION_KINDS,
    Executor,
    ExecutorClosedError,
    ProcessBackend,
    ThreadBackend,
    create_executor,
    process_start_method,
)
from repro.exec.tasks import WorkerState

__all__ = [
    "Executor",
    "ThreadBackend",
    "ProcessBackend",
    "ExecutorClosedError",
    "create_executor",
    "process_start_method",
    "EXECUTION_KINDS",
    "WorkerState",
]
