"""Task functions executed by :mod:`repro.exec` workers.

Every task is a module-level function taking ``(state, item)`` where
``state`` is the worker's :class:`WorkerState` — the immutable
:class:`~repro.graph.bipartite.BipartiteGraph`, the precomputed
:class:`~repro.corenum.bounds.CoreBounds`, and a lazily constructed
per-worker :class:`~repro.core.engine.PMBCQueryEngine`.

For the process backend the state is installed **once per worker
process** (inherited through ``fork``, or pickled a single time by the
pool initializer under ``spawn``); work items are then tiny tuples, so
no graph bytes cross the process boundary per query.  For the thread
backend the state is simply shared in-process.

Tasks must stay picklable-by-name (plain module-level functions) and
must return picklable values; they are addressed by string name so the
parent never ships code, only data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.construction import build_search_tree
from repro.core.engine import PMBCQueryEngine
from repro.core.index import BicliqueArray, SearchTree
from repro.core.query import QueryRequest
from repro.core.result import Biclique
from repro.corenum.bounds import CoreBounds
from repro.graph.bipartite import BipartiteGraph
from repro.kernel import resolve_kernel
from repro.obs.trace import SearchTrace, use_trace

__all__ = [
    "WorkerState",
    "initialize_worker",
    "worker_state",
    "run_task",
    "TASKS",
]


@dataclass
class WorkerState:
    """Per-worker shared context: graph, bounds, engine, scratch.

    ``scratch`` is a free-form dict the *thread* backend uses to hand
    shared mutable structures (the locked biclique array and skyline of
    a parallel index build) to tasks; it never crosses a process
    boundary.

    ``kernel`` is the compute kernel every task on this worker searches
    with — resolved **once** (in ``__post_init__``, i.e. once per
    worker process/pool), so tasks never consult the environment, and
    the packed adjacency each search builds is memoized per two-hop
    extraction in the worker's caches rather than re-packed per task
    (see :mod:`repro.kernel.packed`).
    """

    graph: BipartiteGraph
    bounds: CoreBounds | None = None
    cache_size: int = 256
    kernel: str | None = None
    scratch: dict = field(default_factory=dict)
    _engine: PMBCQueryEngine | None = None

    def __post_init__(self) -> None:
        self.kernel = resolve_kernel(self.kernel)

    @property
    def engine(self) -> PMBCQueryEngine:
        """The worker's caching engine (built on first use)."""
        if self._engine is None:
            self._engine = PMBCQueryEngine(
                self.graph,
                use_core_bounds=False,
                cache_size=self.cache_size,
                bounds=self.bounds,
                kernel=self.kernel,
            )
        return self._engine


#: Module-global state of the *current worker process*.  In the parent
#: process this stays None; thread backends carry their state directly.
_STATE: WorkerState | None = None


def initialize_worker(
    graph: BipartiteGraph,
    bounds: CoreBounds | None,
    cache_size: int,
    kernel: str | None = None,
) -> None:
    """Process-pool initializer: install the worker-global state.

    Runs once in each worker process.  Under the ``fork`` start method
    the arguments are inherited copy-on-write; under ``spawn`` they are
    pickled exactly once per worker — never per task.  The compute
    kernel is resolved here, once per worker, alongside the graph and
    CoreBounds.
    """
    global _STATE
    _STATE = WorkerState(
        graph=graph, bounds=bounds, cache_size=cache_size, kernel=kernel
    )
    # Construct the engine (and with it the two-hop LRU that memoizes
    # packed adjacency per extraction) here rather than lazily inside
    # the first task: every per-worker setup step happens in the
    # initializer, and tasks only ever *reuse* the caches.  Re-packing
    # per task would show up as a growing per-worker pack_count() — the
    # regression test in tests/exec guards exactly that.
    _STATE.engine


def worker_state() -> WorkerState:
    """The installed state (raises if the worker was not initialized)."""
    if _STATE is None:
        raise RuntimeError(
            "worker state not initialized — initialize_worker() did not run"
        )
    return _STATE


# ----------------------------------------------------------------------
# tasks


def task_query(state: WorkerState, item) -> Biclique | None:
    """Answer one ``(side, vertex, tau_u, tau_l)`` work item."""
    request = QueryRequest.of(item)
    return state.engine.query(request)


def task_query_batch(state: WorkerState, items) -> list[Biclique | None]:
    """Answer a batch of work items with grouped two-hop reuse."""
    return state.engine.query_batch([QueryRequest.of(i) for i in items])


def task_query_traced(state: WorkerState, item):
    """Answer one work item under a fresh trace.

    Returns ``(answer, trace_summary)`` — the process backend runs in
    another address space, so the trace cannot flow through the
    parent's context variable; instead the worker traces locally and
    ships the picklable summary back for the parent to fold into its
    own trace (:meth:`repro.obs.trace.SearchTrace.merge_summary`).
    """
    request = QueryRequest.of(item)
    trace = SearchTrace(trace_id=request.trace_id)
    with use_trace(trace):
        answer = state.engine.query(request)
    return answer, trace.to_dict()


def task_query_batch_traced(state: WorkerState, items):
    """Answer a batch under a fresh trace; ``(answers, trace_summary)``."""
    requests = [QueryRequest.of(i) for i in items]
    trace = SearchTrace(
        trace_id=requests[0].trace_id if requests else None
    )
    with use_trace(trace):
        answers = state.engine.query_batch(requests)
    return answers, trace.to_dict()


def task_build_tree(state: WorkerState, item):
    """Build one vertex's search tree, returning a portable result.

    The tree is built against a private biclique array and returned
    together with that array's contents, so the parent can merge many
    workers' results into one deduplicated global array.  Used by the
    process backend, where the shared-array/skyline cost-sharing of the
    thread build cannot span address spaces.
    """
    side, q = item
    array = BicliqueArray()
    tree = build_search_tree(
        state.graph, side, q, array, state.bounds, None, kernel=state.kernel
    )
    return side, q, tree, list(array)


def task_build_tree_shared(state: WorkerState, item):
    """Build one vertex's search tree into the shared build structures.

    Thread-backend variant: ``state.scratch['build']`` holds the
    locked global array and (optional) skyline, exactly like the
    pre-executor Algorithm 6 workers.
    """
    side, q = item
    array, bounds, skyline = state.scratch["build"]
    tree = build_search_tree(
        state.graph, side, q, array, bounds, skyline, kernel=state.kernel
    )
    return side, q, tree


def task_pack_count(state: WorkerState, item) -> int:
    """Diagnostic: this worker's cumulative non-memoized pack count.

    Lets tests observe, across the process boundary, how many times the
    bitset kernel actually packed adjacency in this worker — repeated
    queries on the same vertex must reuse the memoized packed view, so
    the count grows with distinct extractions, not with tasks.
    """
    from repro.kernel.packed import pack_count

    return pack_count()


def merge_portable_tree(
    array: BicliqueArray, tree: SearchTree, bicliques: list[Biclique]
) -> SearchTree:
    """Remap a portable tree's biclique ids into the global array."""
    id_map = [array.add(biclique)[0] for biclique in bicliques]
    for node in tree.nodes:
        if node.biclique_id is not None:
            node.biclique_id = id_map[node.biclique_id]
    return tree


#: Name -> task function.  Workers resolve tasks by name so only data
#: crosses the pool boundary.
TASKS = {
    "query": task_query,
    "query_batch": task_query_batch,
    "query_traced": task_query_traced,
    "query_batch_traced": task_query_batch_traced,
    "build_tree": task_build_tree,
    "build_tree_shared": task_build_tree_shared,
    "pack_count": task_pack_count,
}


def run_task(task: str, item):
    """Process-pool entry point: run a named task on this worker."""
    return TASKS[task](worker_state(), item)
