"""The execution substrate: one pool abstraction for serving and builds.

The branch-and-bound at the heart of every personalized query is pure
Python, so a *thread* pool — PR 1's worker model — saturates a single
core under the GIL no matter how wide it is.  This module factors the
"run many ``(side, q, τU, τL)`` work items" concern out of the serving
and index-construction layers into an :class:`Executor` with two
interchangeable backends:

- :class:`ThreadBackend` — the current behaviour: tasks run in the
  calling thread (``run``) or a small thread pool (``map``), against
  one shared in-process engine.  Zero startup cost, shared LRU, GIL
  bound.
- :class:`ProcessBackend` — a ``ProcessPoolExecutor`` whose workers
  inherit the immutable graph + core bounds **once** (copy-on-write
  under ``fork``, a single pickle per worker under ``spawn``) and then
  answer work items without re-shipping the graph.  Real-core
  parallelism for CPU-bound search.

Use :func:`create_executor` to pick a backend by name with graceful
degradation: a platform where process pools are unavailable falls back
to threads with a :class:`RuntimeWarning` instead of failing.

Both backends expose the same metrics through an optional
:class:`~repro.serve.metrics.MetricsRegistry`:
``pmbc_exec_tasks_total`` (by backend and task), an
``pmbc_exec_queue_depth`` gauge of in-flight work items, and a
per-backend latency histogram ``pmbc_exec_task_seconds_<backend>``.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.corenum.bounds import CoreBounds, compute_bounds
from repro.exec.tasks import TASKS, WorkerState, initialize_worker, run_task
from repro.graph.bipartite import BipartiteGraph
from repro.kernel import resolve_kernel

__all__ = [
    "Executor",
    "ThreadBackend",
    "ProcessBackend",
    "ExecutorClosedError",
    "create_executor",
    "process_start_method",
    "EXECUTION_KINDS",
]

#: Valid ``execution=`` selector values, CLI and config use these.
EXECUTION_KINDS = ("thread", "process")


class ExecutorClosedError(RuntimeError):
    """A task was submitted to an executor after :meth:`close`."""


def process_start_method() -> str | None:
    """The start method a :class:`ProcessBackend` would use, or None.

    Prefers ``fork`` (workers inherit the graph copy-on-write, no
    pickling at all), falls back to ``spawn``/``forkserver`` (one
    pickle of the graph per worker).  Returns None when the platform
    offers no usable start method — :func:`create_executor` then falls
    back to threads.
    """
    available = _available_start_methods()
    for preferred in ("fork", "spawn", "forkserver"):
        if preferred in available:
            return preferred
    return None


def _available_start_methods() -> list[str]:
    # Isolated for tests: monkeypatching this simulates platforms
    # without fork/spawn support.
    try:
        return multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return []


def _init_worker_process(graph, bounds, cache_size, kernel) -> None:
    # Terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group; pool workers blocked on the call queue would die with a
    # KeyboardInterrupt traceback each.  Shutdown is coordinated by the
    # parent (pool.shutdown sends sentinels), so workers ignore SIGINT.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    initialize_worker(graph, bounds, cache_size, kernel)


class Executor:
    """Common machinery: task dispatch, lifecycle, metrics.

    Subclasses implement :meth:`_execute` (one item) and may override
    :meth:`map` (many items).  ``run``/``map`` raise whatever the task
    raises; pool-level failures surface as-is for the caller's
    degradation logic.
    """

    kind: str = "abstract"

    def __init__(self, num_workers: int, metrics=None) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self._closed = False
        self._depth = 0
        self._depth_lock = threading.Lock()
        self._tasks_total = None
        self._latency = None
        if metrics is not None:
            self._tasks_total = metrics.counter(
                "pmbc_exec_tasks_total",
                "Executor work items by backend and task.",
            )
            metrics.gauge(
                "pmbc_exec_queue_depth",
                "Work items submitted to the executor and not yet done.",
            ).set_function(lambda: self._depth)
            self._latency = metrics.histogram(
                f"pmbc_exec_task_seconds_{self.kind}",
                f"Work-item latency on the {self.kind} backend.",
            )

    # -- dispatch ------------------------------------------------------

    def run(self, task: str, item):
        """Execute one work item and return its result (blocking)."""
        if task not in TASKS:
            raise KeyError(f"unknown task {task!r}")
        if self._closed:
            raise ExecutorClosedError(f"{self.kind} executor is closed")
        with self._depth_lock:
            self._depth += 1
        start = time.perf_counter()
        try:
            return self._execute(task, item)
        finally:
            with self._depth_lock:
                self._depth -= 1
            if self._tasks_total is not None:
                self._tasks_total.inc(backend=self.kind, task=task)
            if self._latency is not None:
                self._latency.observe(time.perf_counter() - start)

    def map(self, task: str, items) -> list:
        """Execute many work items; results in item order."""
        return [self.run(task, item) for item in items]

    def _execute(self, task: str, item):
        raise NotImplementedError

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadBackend(Executor):
    """In-process execution against one shared engine (GIL bound).

    ``run`` executes in the calling thread — when the serving layer's
    worker threads call it, behaviour is byte-identical to PR 1's
    direct engine calls.  ``map`` fans out over a thread pool, which
    preserves the pre-executor semantics of the parallel index build
    (shared array + skyline, lock-serialized appends).
    """

    kind = "thread"

    def __init__(
        self,
        graph: BipartiteGraph,
        bounds: CoreBounds | None = None,
        num_workers: int = 4,
        cache_size: int = 256,
        metrics=None,
        state: WorkerState | None = None,
        kernel: str | None = None,
    ) -> None:
        super().__init__(num_workers, metrics)
        self.state = state or WorkerState(
            graph=graph, bounds=bounds, cache_size=cache_size, kernel=kernel
        )
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _execute(self, task: str, item):
        return TASKS[task](self.state, item)

    def map(self, task: str, items) -> list:
        items = list(items)
        if len(items) <= 1 or self.num_workers == 1:
            return [self.run(task, item) for item in items]
        with self._pool_lock:
            if self._pool is None:
                if self._closed:
                    raise ExecutorClosedError("thread executor is closed")
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="pmbc-exec",
                )
            pool = self._pool
        futures = [pool.submit(self.run, task, item) for item in items]
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._pool_lock:
            super().close()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


class ProcessBackend(Executor):
    """Fork/spawn-safe process-pool execution for CPU-bound search.

    Workers are initialized once with the graph and bounds (see
    :func:`repro.exec.tasks.initialize_worker`); afterwards only tiny
    work-item tuples and answers cross the boundary.  Each worker owns
    a private two-hop LRU, so skewed traffic still reuses extractions
    within a worker.
    """

    kind = "process"

    def __init__(
        self,
        graph: BipartiteGraph,
        bounds: CoreBounds | None = None,
        num_workers: int = 4,
        cache_size: int = 256,
        metrics=None,
        start_method: str | None = None,
        kernel: str | None = None,
    ) -> None:
        super().__init__(num_workers, metrics)
        method = start_method or process_start_method()
        if method is None:
            raise RuntimeError(
                "no multiprocessing start method available on this platform"
            )
        self.start_method = method
        # Resolve the kernel in the parent so every worker — and any
        # differential comparison against the parent — agrees on it
        # even if the workers see a different environment.
        kernel = resolve_kernel(kernel)
        context = multiprocessing.get_context(method)
        self._pool = ProcessPoolExecutor(
            max_workers=num_workers,
            mp_context=context,
            initializer=_init_worker_process,
            initargs=(graph, bounds, cache_size, kernel),
        )

    def _execute(self, task: str, item):
        return self._pool.submit(run_task, task, item).result()

    def map(self, task: str, items) -> list:
        items = list(items)
        if not items:
            return []
        if self._closed:
            raise ExecutorClosedError("process executor is closed")
        with self._depth_lock:
            self._depth += len(items)
        start = time.perf_counter()
        try:
            futures = [
                self._pool.submit(run_task, task, item) for item in items
            ]
            return [future.result() for future in futures]
        finally:
            with self._depth_lock:
                self._depth -= len(items)
            if self._tasks_total is not None:
                self._tasks_total.inc(
                    len(items), backend=self.kind, task=task
                )
            if self._latency is not None:
                elapsed = time.perf_counter() - start
                self._latency.observe(elapsed / len(items))

    def close(self) -> None:
        super().close()
        self._pool.shutdown(wait=True)


def create_executor(
    kind: str,
    graph: BipartiteGraph,
    bounds: CoreBounds | None = None,
    use_core_bounds: bool = True,
    num_workers: int = 4,
    cache_size: int = 256,
    metrics=None,
    start_method: str | None = None,
    kernel: str | None = None,
) -> Executor:
    """Build an executor by backend name, with graceful degradation.

    ``kind`` is ``"thread"`` or ``"process"``.  When ``"process"`` is
    requested but no start method is usable (or the pool cannot be
    created — restricted containers lack ``/dev/shm`` semaphores), a
    :class:`RuntimeWarning` is emitted and a :class:`ThreadBackend` is
    returned instead, so callers never have to branch per platform.

    ``bounds`` may be precomputed; otherwise they are computed here
    **once** (when ``use_core_bounds``) and shared with every worker.
    ``kernel`` picks the compute kernel; it is resolved here, once, and
    installed in every worker's state by the pool initializer — workers
    never re-resolve (or re-pack adjacency) per task.
    """
    if kind not in EXECUTION_KINDS:
        raise ValueError(
            f"execution must be one of {EXECUTION_KINDS}, got {kind!r}"
        )
    kernel = resolve_kernel(kernel)
    if bounds is None and use_core_bounds:
        bounds = compute_bounds(graph)
    if kind == "process":
        try:
            return ProcessBackend(
                graph,
                bounds=bounds,
                num_workers=num_workers,
                cache_size=cache_size,
                metrics=metrics,
                start_method=start_method,
                kernel=kernel,
            )
        except (RuntimeError, OSError, ValueError, BrokenProcessPool) as exc:
            method = start_method or process_start_method()
            warnings.warn(
                f"requested {kind!r} execution is unavailable on this "
                f"platform (start method: {method or 'none'}): {exc}; "
                "falling back to the thread backend",
                RuntimeWarning,
                stacklevel=2,
            )
    return ThreadBackend(
        graph,
        bounds=bounds,
        num_workers=num_workers,
        cache_size=cache_size,
        metrics=metrics,
        kernel=kernel,
    )
