"""Shared fixtures for the benchmark harness.

Heavy artifacts (datasets, core bounds, indexes, per-vertex task costs)
are generated once per session and cached, so each pytest-benchmark
case only times the operation the paper's experiment times.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import top_degree_queries
from repro.core import build_index, build_index_star
from repro.corenum.bounds import compute_bounds
from repro.datasets.zoo import load_dataset

#: Scaled workload: the paper samples 200 queries from the top-500
#: degree vertices; our graphs are ~500x smaller.
NUM_QUERIES = 20
QUERY_POOL = 50
#: The paper's default and largest setting for Fig 6.
TAU_DEFAULT = 5


@pytest.fixture(scope="session")
def graphs():
    """Dataset-name -> graph cache (generated on first use)."""
    cache: dict[str, object] = {}

    def get(name: str):
        if name not in cache:
            cache[name] = load_dataset(name)
        return cache[name]

    return get


@pytest.fixture(scope="session")
def all_bounds(graphs):
    """Dataset-name -> CoreBounds cache (PMBC-OL*'s offline part)."""
    cache: dict[str, object] = {}

    def get(name: str):
        if name not in cache:
            cache[name] = compute_bounds(graphs(name))
        return cache[name]

    return get


@pytest.fixture(scope="session")
def star_indexes(graphs, all_bounds):
    """Dataset-name -> PMBC-Index built with PMBC-IC*."""
    cache: dict[str, object] = {}

    def get(name: str):
        if name not in cache:
            cache[name] = build_index_star(
                graphs(name), bounds=all_bounds(name)
            )
        return cache[name]

    return get


@pytest.fixture(scope="session")
def plain_indexes(graphs, all_bounds):
    """Dataset-name -> PMBC-Index built with PMBC-IC."""
    cache: dict[str, object] = {}

    def get(name: str):
        if name not in cache:
            cache[name] = build_index(graphs(name), bounds=all_bounds(name))
        return cache[name]

    return get


@pytest.fixture(scope="session")
def workloads(graphs):
    """Dataset-name -> the Fig 6/7 query workload."""
    cache: dict[str, list] = {}

    def get(name: str):
        if name not in cache:
            cache[name] = top_degree_queries(
                graphs(name),
                num_queries=NUM_QUERIES,
                pool_size=QUERY_POOL,
                seed=2022,
            )
        return cache[name]

    return get
