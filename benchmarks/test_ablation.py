"""Ablation study (ours) — isolating each design choice of the paper.

Not a paper table, but DESIGN.md calls out four load-bearing design
choices; each gets an on/off comparison on one mid-size dataset:

1. (α,β)-core bounds (PMBC-OL vs PMBC-OL*, Section VI-C);
2. Lemma 6 shape caps during index construction;
3. skyline cost-sharing (PMBC-IC vs PMBC-IC*, Section VI-B);
4. the two-hop (wedge) reduction inside the online search.

Every variant must return identical answer sizes — the knobs are pure
accelerators — which each case asserts.
"""

from __future__ import annotations

import pytest

from repro.core import build_index, build_index_star, pmbc_online
from repro.datasets.zoo import load_dataset

pytestmark = pytest.mark.benchmark(group="ablation")

DATASET = "Github"


@pytest.fixture(scope="module")
def graph():
    return load_dataset(DATASET)


@pytest.fixture(scope="module")
def reference_answers(graph, request):
    """Answer sizes from the default configuration, for equivalence."""
    from repro.bench.workloads import top_degree_queries

    queries = top_degree_queries(graph, num_queries=10, seed=5)
    answers = {}
    for side, q in queries:
        result = pmbc_online(graph, side, q, 2, 2)
        answers[(side, q)] = result.num_edges if result else 0
    return queries, answers


def _run_queries(graph, queries, answers, **kwargs):
    for side, q in queries:
        result = pmbc_online(graph, side, q, 2, 2, **kwargs)
        assert (result.num_edges if result else 0) == answers[(side, q)]
    return True


@pytest.mark.parametrize("with_bounds", [True, False],
                         ids=["OL*-bounds", "OL-plain"])
def test_ablate_core_bounds(benchmark, graph, reference_answers, with_bounds, all_bounds):
    queries, answers = reference_answers
    bounds = all_bounds(DATASET) if with_bounds else None
    benchmark.pedantic(
        lambda: _run_queries(graph, queries, answers, bounds=bounds),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("with_wedge", [True, False],
                         ids=["wedge-on", "wedge-off"])
def test_ablate_two_hop_reduction(benchmark, graph, reference_answers, with_wedge):
    queries, answers = reference_answers
    benchmark.pedantic(
        lambda: _run_queries(
            graph, queries, answers, use_two_hop_reduction=with_wedge
        ),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("with_caps", [True, False],
                         ids=["lemma6-on", "lemma6-off"])
def test_ablate_lemma6_caps(benchmark, graph, with_caps, all_bounds):
    bounds = all_bounds(DATASET)
    index = benchmark.pedantic(
        lambda: build_index(
            graph, bounds=bounds, use_lemma6_caps=with_caps
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["num_bicliques"] = index.num_bicliques


@pytest.mark.parametrize("with_skyline", [True, False],
                         ids=["cost-sharing-on", "cost-sharing-off"])
def test_ablate_cost_sharing(benchmark, graph, with_skyline, all_bounds):
    bounds = all_bounds(DATASET)
    builder = build_index_star if with_skyline else build_index
    index = benchmark.pedantic(
        lambda: builder(graph, bounds=bounds), rounds=1, iterations=1
    )
    benchmark.extra_info["num_bicliques"] = index.num_bicliques
