"""Dynamic maintenance benchmark (ours — the paper's future work).

Measures the cost of maintaining the PMBC-Index under single-edge
updates versus rebuilding from scratch.  Expected shape: an update
rebuilds only the O(deg(u) + deg(v)) affected trees and is much
cheaper than a full PMBC-IC* rebuild.
"""

from __future__ import annotations

import random

import pytest

from repro.core import build_index_star
from repro.core.dynamic import DynamicPMBCIndex
from repro.datasets.zoo import load_dataset

pytestmark = pytest.mark.benchmark(group="dynamic")

DATASET = "Writers"


@pytest.fixture(scope="module")
def graph():
    return load_dataset(DATASET)


@pytest.fixture(scope="module")
def update_stream(graph):
    """A deterministic mixed insert/delete stream of absent/present edges."""
    rng = random.Random(99)
    present = sorted(graph.edges())
    deletions = rng.sample(present, 5)
    absent = []
    while len(absent) < 5:
        u = rng.randrange(graph.num_upper)
        v = rng.randrange(graph.num_lower)
        if not graph.has_edge(u, v) and (u, v) not in absent:
            absent.append((u, v))
    return deletions, absent


def test_full_rebuild_baseline(benchmark, graph):
    index = benchmark.pedantic(
        lambda: build_index_star(graph), rounds=2, iterations=1
    )
    benchmark.extra_info["num_tree_nodes"] = index.num_tree_nodes


def test_incremental_updates(benchmark, graph, update_stream):
    deletions, insertions = update_stream

    def setup():
        return (DynamicPMBCIndex(graph),), {}

    def run(dynamic):
        rebuilt = 0
        for u, v in deletions:
            rebuilt += dynamic.delete_edge(u, v)
        for u, v in insertions:
            rebuilt += dynamic.insert_edge(u, v)
        return rebuilt

    rebuilt = benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    benchmark.extra_info["trees_rebuilt_for_10_updates"] = rebuilt
    total_vertices = graph.num_vertices
    benchmark.extra_info["total_vertices"] = total_vertices
    # An update must touch far fewer trees than a full rebuild.
    assert rebuilt < total_vertices


def test_batched_updates(benchmark, graph, update_stream):
    """Batching rebuilds the union of affected trees once."""
    deletions, insertions = update_stream
    updates = [("delete", u, v) for u, v in deletions] + [
        ("insert", u, v) for u, v in insertions
    ]

    def setup():
        return (DynamicPMBCIndex(graph),), {}

    def run(dynamic):
        return dynamic.apply_updates(updates)

    rebuilt = benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    benchmark.extra_info["trees_rebuilt_for_batch"] = rebuilt
    assert rebuilt < graph.num_vertices
