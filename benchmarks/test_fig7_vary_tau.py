"""Figure 7 — query time varying the parameters τ_U and τ_L.

Paper setup: datasets ActorMovies, Wikipedia, Amazon, DBLP; τ varied
with the other parameter fixed.  Expected shape: query time varies only
mildly with τ, and PMBC-IQ ≪ PMBC-OL* ≤ PMBC-OL at every setting.

We vary τ = τ_U = τ_L over {2, 4, 6, 8, 10} (the union of the paper's
per-axis sweeps) for the three algorithms.
"""

from __future__ import annotations

import pytest

from repro.core import pmbc_index_query, pmbc_online
from repro.datasets.zoo import scalability_dataset_names

from conftest import NUM_QUERIES

pytestmark = pytest.mark.benchmark(group="fig7")

DATASETS = scalability_dataset_names()
TAUS = [2, 4, 6, 8, 10]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("tau", TAUS)
def test_vary_tau_online(benchmark, dataset, tau, graphs, workloads, all_bounds):
    graph = graphs(dataset)
    queries = workloads(dataset)
    bounds = all_bounds(dataset)

    def run():
        return [
            pmbc_online(graph, side, q, tau, tau, bounds=bounds)
            for side, q in queries
        ]

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["per_query_ms"] = (
        benchmark.stats["mean"] * 1e3 / NUM_QUERIES
    )
    benchmark.extra_info["algorithm"] = "PMBC-OL*"


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("tau", TAUS)
def test_vary_tau_index(benchmark, dataset, tau, workloads, star_indexes):
    index = star_indexes(dataset)
    queries = workloads(dataset)

    def run():
        return [
            pmbc_index_query(index, side, q, tau, tau)
            for side, q in queries
        ]

    benchmark.pedantic(run, rounds=5, iterations=3)
    benchmark.extra_info["per_query_ms"] = (
        benchmark.stats["mean"] * 1e3 / NUM_QUERIES
    )
    benchmark.extra_info["algorithm"] = "PMBC-IQ"
