"""Trace overhead guard (ours): observability must be ~free by default.

The ISSUE's acceptance bar: the null-trace default adds <5% latency on
a zoo-graph workload.  The null path's entire cost is its guards — a
``current_trace()`` contextvar lookup plus an ``.enabled`` check at
each instrumentation point, and a no-op span around the two extraction
/search phases.  We measure that guard cost directly with min-of-N
timing, scale it by a deliberately generous per-query guard budget,
and assert it stays under 5% of the measured per-query latency.  A
second test sanity-bounds *fully enabled* tracing, which does strictly
more work than the null path.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.workloads import top_degree_queries
from repro.core import pmbc_online_star
from repro.obs import NULL_TRACE, SearchTrace, current_trace, use_trace

pytestmark = pytest.mark.benchmark(group="trace-overhead")

DATASET = "Writers"
ROUNDS = 7  # min-of-N; the minimum is the least noisy estimator

#: Generous upper bounds on null-trace work per query.  Actual usage
#: (counted from an enabled trace on this workload): one guard per
#: pmbc_online/branch_and_bound/progressive-round entry, ~12-15 total,
#: and two no-op spans (extraction, search).  The budget keeps a >2x
#: margin over that; the bitset kernel shrank per-query latency, so the
#: old 4-5x margin would charge the null path for work it never does.
GUARDS_PER_QUERY = 32
SPANS_PER_QUERY = 4


@pytest.fixture(scope="module")
def workload(graphs):
    return top_degree_queries(graphs(DATASET), num_queries=12, seed=5)


def _run(graph, bounds, queries):
    return [
        pmbc_online_star(graph, side, q, 2, 2, bounds=bounds)
        for side, q in queries
    ]


def _min_of(rounds, fn):
    best = float("inf")
    for __ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_null_trace_overhead_under_five_percent(graphs, all_bounds, workload):
    graph = graphs(DATASET)
    bounds = all_bounds(DATASET)
    assert current_trace() is NULL_TRACE

    _run(graph, bounds, workload)  # warm caches before timing
    query_s = _min_of(ROUNDS, lambda: _run(graph, bounds, workload)) / len(
        workload
    )

    reps = 10_000

    def guards():
        for __ in range(reps):
            if current_trace().enabled:  # pragma: no cover - never taken
                raise AssertionError
    guard_s = _min_of(ROUNDS, guards) / reps

    def spans():
        for __ in range(reps):
            with NULL_TRACE.span("x"):
                pass
    span_s = _min_of(ROUNDS, spans) / reps

    null_cost = GUARDS_PER_QUERY * guard_s + SPANS_PER_QUERY * span_s
    overhead = null_cost / query_s
    assert overhead < 0.05, (
        f"null-trace guards cost {overhead:.2%} of per-query latency "
        f"({null_cost * 1e6:.2f} us of {query_s * 1e6:.1f} us); must be <5%"
    )


def test_enabled_tracing_stays_cheap(graphs, all_bounds, workload):
    """Full tracing (a superset of the null path) stays within 25%."""
    graph = graphs(DATASET)
    bounds = all_bounds(DATASET)
    _run(graph, bounds, workload)  # warm

    def traced():
        with use_trace(SearchTrace()):
            _run(graph, bounds, workload)

    # Interleave the arms so clock drift hits both equally.
    best_null = best_traced = float("inf")
    for __ in range(ROUNDS):
        start = time.perf_counter()
        _run(graph, bounds, workload)
        best_null = min(best_null, time.perf_counter() - start)
        start = time.perf_counter()
        traced()
        best_traced = min(best_traced, time.perf_counter() - start)

    overhead = best_traced / best_null - 1.0
    assert overhead < 0.25, (
        f"enabled tracing costs {overhead:.1%} over the null default "
        f"({best_traced * 1e3:.2f} ms vs {best_null * 1e3:.2f} ms)"
    )


def test_traced_answers_match_untraced(graphs, all_bounds, workload):
    graph = graphs(DATASET)
    bounds = all_bounds(DATASET)
    untraced = _run(graph, bounds, workload)
    with use_trace(SearchTrace()):
        traced = _run(graph, bounds, workload)
    assert [
        None if a is None else (a.shape, a.num_edges) for a in untraced
    ] == [None if a is None else (a.shape, a.num_edges) for a in traced]
