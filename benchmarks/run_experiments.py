#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Runs the full experiment matrix (Fig 6, Fig 7, Table III, Fig 8,
Fig 9) against the dataset zoo, prints each as a paper-style text
table/series, and writes machine-readable copies under
``benchmarks/results/``.

Run:  python benchmarks/run_experiments.py [--quick]

``--quick`` restricts to the three smallest datasets and a reduced
workload — useful for smoke-testing the harness (~1 minute).
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.bench.harness import save_results
from repro.bench.tables import format_series, format_table
from repro.bench.workloads import top_degree_queries
from repro.core import (
    build_index,
    build_index_star,
    build_naive_index,
    measure_task_costs,
    pmbc_index_query,
    pmbc_online,
    simulate_parallel_schedule,
)
from repro.core.naive_index import NaiveIndexTimeout
from repro.corenum.bounds import compute_bounds
from repro.datasets.zoo import (
    dataset_names,
    load_dataset,
    scalability_dataset_names,
)
from repro.graph.sampling import sample_edges

TAU_DEFAULT = 5
FIG7_TAUS = [2, 4, 6, 8, 10]
FIG8_THREADS = [1, 8, 16, 24, 32, 40, 48]
FIG9_FRACTIONS = [0.2, 0.4, 0.6, 0.8, 1.0]
NAIVE_BUDGET = 20.0


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _workload(graph, num_queries):
    return top_degree_queries(
        graph, num_queries=num_queries, pool_size=50, seed=2022
    )


def _mean_query_seconds(fn, queries):
    times = []
    for side, q in queries:
        start = time.perf_counter()
        fn(side, q)
        times.append(time.perf_counter() - start)
    return statistics.mean(times)


def fig6(datasets, num_queries):
    print("\n" + "=" * 72)
    rows = []
    payload = {}
    for name in datasets:
        graph = load_dataset(name)
        bounds = compute_bounds(graph)
        index = build_index_star(graph, bounds=bounds)
        queries = _workload(graph, num_queries)
        t_ol = _mean_query_seconds(
            lambda s, q: pmbc_online(graph, s, q, TAU_DEFAULT, TAU_DEFAULT),
            queries,
        )
        t_ol_star = _mean_query_seconds(
            lambda s, q: pmbc_online(
                graph, s, q, TAU_DEFAULT, TAU_DEFAULT, bounds=bounds
            ),
            queries,
        )
        t_iq = _mean_query_seconds(
            lambda s, q: pmbc_index_query(
                index, s, q, TAU_DEFAULT, TAU_DEFAULT
            ),
            queries,
        )
        rows.append(
            [name, t_ol * 1e3, t_ol_star * 1e3, t_iq * 1e3, t_ol / t_iq]
        )
        payload[name] = {
            "PMBC-OL_ms": t_ol * 1e3,
            "PMBC-OL*_ms": t_ol_star * 1e3,
            "PMBC-IQ_ms": t_iq * 1e3,
        }
    print(
        format_table(
            ["Dataset", "PMBC-OL (ms)", "PMBC-OL* (ms)", "PMBC-IQ (ms)",
             "IQ speedup vs OL"],
            rows,
            title=f"Fig 6 — mean query time, tau_U = tau_L = {TAU_DEFAULT}",
        )
    )
    save_results("fig6_query_time", payload)


def fig7(datasets, num_queries):
    print("\n" + "=" * 72)
    payload = {}
    for name in datasets:
        graph = load_dataset(name)
        bounds = compute_bounds(graph)
        index = build_index_star(graph, bounds=bounds)
        queries = _workload(graph, num_queries)
        series = {"PMBC-OL": [], "PMBC-OL*": [], "PMBC-IQ": []}
        for tau in FIG7_TAUS:
            series["PMBC-OL"].append(
                _mean_query_seconds(
                    lambda s, q: pmbc_online(graph, s, q, tau, tau), queries
                )
                * 1e3
            )
            series["PMBC-OL*"].append(
                _mean_query_seconds(
                    lambda s, q: pmbc_online(
                        graph, s, q, tau, tau, bounds=bounds
                    ),
                    queries,
                )
                * 1e3
            )
            series["PMBC-IQ"].append(
                _mean_query_seconds(
                    lambda s, q: pmbc_index_query(index, s, q, tau, tau),
                    queries,
                )
                * 1e3
            )
        print(
            format_series(
                "tau",
                FIG7_TAUS,
                series,
                title=f"Fig 7 ({name}) — mean query time (ms), varying tau",
            )
        )
        print()
        payload[name] = series
    save_results("fig7_vary_tau", payload)


def table3(datasets):
    print("\n" + "=" * 72)
    rows = []
    payload = {}
    for name in datasets:
        graph = load_dataset(name)
        bounds = compute_bounds(graph)
        t_ic, __ = _time(lambda: build_index(graph, bounds=bounds))
        t_ic_star, index = _time(
            lambda: build_index_star(graph, bounds=bounds)
        )
        stats = index.stats()
        graph_kb = (2 * graph.num_edges + graph.num_vertices) * 8 / 1024
        tree_kb = stats["tree_size_bytes"] / 1024
        array_kb = stats["array_size_bytes"] / 1024
        rows.append(
            [name, t_ic, t_ic_star, graph_kb, tree_kb, array_kb,
             (tree_kb + array_kb) / graph_kb]
        )
        payload[name] = {
            "IC_seconds": t_ic,
            "IC_star_seconds": t_ic_star,
            "graph_kb": graph_kb,
            "tree_kb": tree_kb,
            "array_kb": array_kb,
        }
    print(
        format_table(
            ["Dataset", "IC (s)", "IC* (s)", "|G| (KB)", "|T| (KB)",
             "|A| (KB)", "(|T|+|A|)/|G|"],
            rows,
            title="Table III — indexing time and index size",
        )
    )
    # The basic index baseline: feasible only on the smallest dataset.
    smallest = datasets[0]
    graph = load_dataset(smallest)
    try:
        t_naive, naive = _time(
            lambda: build_naive_index(graph, time_budget=NAIVE_BUDGET)
        )
        print(
            f"\nbasic index on {smallest}: {t_naive:.2f}s, "
            f"{naive.size_bytes() / 1024:.1f} KB "
            f"(paper: 1.5s / 15.8MB on Writers; times out elsewhere)"
        )
        payload["basic_index"] = {
            "dataset": smallest,
            "seconds": t_naive,
            "kb": naive.size_bytes() / 1024,
        }
    except NaiveIndexTimeout:
        print(f"\nbasic index on {smallest}: exceeded {NAIVE_BUDGET}s budget")
    for name in datasets[-2:]:
        graph = load_dataset(name)
        try:
            build_naive_index(graph, time_budget=2.0)
            print(f"basic index on {name}: unexpectedly finished")
        except NaiveIndexTimeout:
            print(
                f"basic index on {name}: timed out (budget 2s) — matches "
                f"the paper's >10^4 s"
            )
    save_results("table3_index_build", payload)


def fig8(datasets):
    print("\n" + "=" * 72)
    payload = {}
    for name in datasets:
        graph = load_dataset(name)
        bounds = compute_bounds(graph)
        series = {}
        for variant, use_skyline in (("IC", False), ("IC*", True)):
            __, costs = measure_task_costs(
                graph, use_skyline=use_skyline, bounds=bounds
            )
            speedups = [
                simulate_parallel_schedule(costs, t).speedup
                for t in FIG8_THREADS
            ]
            series[f"{variant} speedup"] = [round(s, 2) for s in speedups]
        print(
            format_series(
                "threads",
                FIG8_THREADS,
                series,
                title=(
                    f"Fig 8 ({name}) — dynamic-scheduling speedup from "
                    f"measured per-vertex costs"
                ),
            )
        )
        print()
        payload[name] = series
    save_results("fig8_parallel", payload)


def fig9(datasets):
    print("\n" + "=" * 72)
    payload = {}
    for name in datasets:
        graph = load_dataset(name)
        series = {"IC (s)": [], "IC* (s)": []}
        for fraction in FIG9_FRACTIONS:
            sample = (
                graph
                if fraction == 1.0
                else sample_edges(graph, fraction, seed=2022)
            )
            t_ic, __ = _time(lambda: build_index(sample))
            t_star, __ = _time(lambda: build_index_star(sample))
            series["IC (s)"].append(round(t_ic, 3))
            series["IC* (s)"].append(round(t_star, 3))
        print(
            format_series(
                "fraction of |E|",
                FIG9_FRACTIONS,
                series,
                title=f"Fig 9 ({name}) — construction time vs graph size",
            )
        )
        print()
        payload[name] = series
    save_results("fig9_scalability", payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="3 smallest datasets, reduced workload")
    parser.add_argument("--skip", nargs="*", default=[],
                        choices=["fig6", "fig7", "table3", "fig8", "fig9"])
    args = parser.parse_args()

    if args.quick:
        all_sets = dataset_names()[:3]
        scal_sets = all_sets[-2:]
        num_queries = 8
    else:
        all_sets = dataset_names()
        scal_sets = scalability_dataset_names()
        num_queries = 20

    start = time.perf_counter()
    if "fig6" not in args.skip:
        fig6(all_sets, num_queries)
    if "fig7" not in args.skip:
        fig7(scal_sets, num_queries)
    if "table3" not in args.skip:
        table3(all_sets)
    if "fig8" not in args.skip:
        fig8(scal_sets)
    if "fig9" not in args.skip:
        fig9(scal_sets)
    print(f"\nall experiments done in {time.perf_counter() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
