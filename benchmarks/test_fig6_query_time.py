"""Figure 6 — query time of PMBC-OL, PMBC-OL* and PMBC-IQ.

Paper setup: all 10 datasets, τ_U = τ_L = 5, 200 random queries from
the top-500 degree vertices, mean reported.  Expected shape: PMBC-IQ
is orders of magnitude faster than both online algorithms (paper: up
to 5 orders); PMBC-OL* is at least as fast as PMBC-OL.

Each benchmark case times one full workload sweep; per-query time is
the reported value divided by the workload size.
"""

from __future__ import annotations

import pytest

from repro.core import pmbc_index_query, pmbc_online
from repro.datasets.zoo import dataset_names

from conftest import NUM_QUERIES, TAU_DEFAULT

pytestmark = pytest.mark.benchmark(group="fig6")

ALL_DATASETS = dataset_names()


def _run_online(graph, queries, bounds=None):
    results = []
    for side, q in queries:
        results.append(
            pmbc_online(
                graph, side, q, TAU_DEFAULT, TAU_DEFAULT, bounds=bounds
            )
        )
    return results


@pytest.mark.parametrize("dataset", ALL_DATASETS)
def test_pmbc_ol(benchmark, dataset, graphs, workloads):
    graph = graphs(dataset)
    queries = workloads(dataset)
    results = benchmark.pedantic(
        lambda: _run_online(graph, queries), rounds=1, iterations=1
    )
    benchmark.extra_info["per_query_ms"] = (
        benchmark.stats["mean"] * 1e3 / NUM_QUERIES
    )
    assert len(results) == len(queries)


@pytest.mark.parametrize("dataset", ALL_DATASETS)
def test_pmbc_ol_star(benchmark, dataset, graphs, workloads, all_bounds):
    graph = graphs(dataset)
    queries = workloads(dataset)
    bounds = all_bounds(dataset)  # offline per the paper
    results = benchmark.pedantic(
        lambda: _run_online(graph, queries, bounds), rounds=1, iterations=1
    )
    benchmark.extra_info["per_query_ms"] = (
        benchmark.stats["mean"] * 1e3 / NUM_QUERIES
    )
    assert len(results) == len(queries)


@pytest.mark.parametrize("dataset", ALL_DATASETS)
def test_pmbc_iq(benchmark, dataset, graphs, workloads, star_indexes):
    graph = graphs(dataset)
    queries = workloads(dataset)
    index = star_indexes(dataset)

    def run():
        return [
            pmbc_index_query(index, side, q, TAU_DEFAULT, TAU_DEFAULT)
            for side, q in queries
        ]

    results = benchmark.pedantic(run, rounds=5, iterations=3)
    benchmark.extra_info["per_query_ms"] = (
        benchmark.stats["mean"] * 1e3 / NUM_QUERIES
    )

    # Index answers must match the online algorithm's sizes — and be
    # dramatically faster; the speed shape is checked in
    # run_experiments.py where both timings sit side by side.
    online = _run_online(graph, queries)
    for got, expected in zip(results, online):
        assert (got.num_edges if got else 0) == (
            expected.num_edges if expected else 0
        )
