"""Figure 8 — parallel index construction speedup, varying threads t.

Paper setup: IC and IC* on ActorMovies, Wikipedia, Amazon, DBLP with
t ∈ {1, 8, 16, 24, 32, 40, 48} OpenMP threads; dynamic scheduling; up
to 23.3× speedup at 48 threads.  Expected shape: near-linear speedup
tapering as t grows (bounded by workload skew); IC* below IC at every t.

Substitution (see DESIGN.md): CPython cannot show CPU-bound thread
speedup, so the *measured* quantity is the makespan of dynamic
scheduling over real per-vertex task costs from an instrumented build —
exactly the balance-limited quantity Fig 8 plots.  A real thread-pool
build also runs (correctness exercised in tests/core/test_parallel.py).
"""

from __future__ import annotations

import pytest

from repro.core import measure_task_costs, simulate_parallel_schedule
from repro.datasets.zoo import scalability_dataset_names

pytestmark = pytest.mark.benchmark(group="fig8")

DATASETS = scalability_dataset_names()
THREADS = [1, 8, 16, 24, 32, 40, 48]


@pytest.fixture(scope="module")
def task_costs(graphs, all_bounds):
    """Dataset -> measured per-vertex build costs (one build each)."""
    cache: dict[str, list[float]] = {}

    def get(name: str, use_skyline: bool):
        key = (name, use_skyline)
        if key not in cache:
            __, costs = measure_task_costs(
                graphs(name),
                use_skyline=use_skyline,
                bounds=all_bounds(name),
            )
            cache[key] = costs
        return cache[key]

    return get


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("variant", ["IC", "IC*"])
def test_parallel_speedup_curve(benchmark, dataset, variant, task_costs):
    costs = task_costs(dataset, variant == "IC*")

    def run():
        return {
            t: simulate_parallel_schedule(costs, t) for t in THREADS
        }

    schedules = benchmark.pedantic(run, rounds=3, iterations=1)

    speedups = {t: schedules[t].speedup for t in THREADS}
    benchmark.extra_info["speedups"] = {
        str(t): round(s, 2) for t, s in speedups.items()
    }
    benchmark.extra_info["sequential_seconds"] = schedules[1].makespan

    # Shape assertions matching the paper's findings.
    assert speedups[1] == pytest.approx(1.0)
    for lo, hi in zip(THREADS, THREADS[1:]):
        assert speedups[hi] >= speedups[lo] - 1e-9
    # Meaningful parallelism at 48 threads (paper: up to 23.3x).
    assert speedups[48] > 4
