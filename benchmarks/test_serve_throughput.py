"""Closed-loop throughput/latency benchmark of the serving stack (ours).

N client threads issue a Zipf-skewed query stream (hubs dominate, the
tail recurs — the traffic shape the serving layer is built for)
against a shared :class:`repro.serve.PMBCService`, closed-loop: each
client sends its next request as soon as the previous one answers.

Reported per case (``benchmark.extra_info``): requests/s, service-side
p50/p99 latency, engine cache hit-rate, and single-flight shares.
Index-backed serving should dominate engine-only serving, and the
cache hit-rate should be high under Zipf skew.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.workloads import zipf_queries
from repro.core import build_index_star
from repro.serve import PMBCService, ServiceConfig

pytestmark = pytest.mark.benchmark(group="serve")

DATASET = "Github"
NUM_CLIENTS = 8
REQUESTS_PER_CLIENT = 30
TAU = 2


@pytest.fixture(scope="module")
def workload(graphs):
    """One Zipf stream per client (different seeds, same skew)."""
    graph = graphs(DATASET)
    return [
        zipf_queries(
            graph, num_queries=REQUESTS_PER_CLIENT, exponent=1.2, seed=client
        )
        for client in range(NUM_CLIENTS)
    ]


def _run_closed_loop(service: PMBCService, workload) -> int:
    errors: list[BaseException] = []

    def client(stream) -> None:
        try:
            for side, vertex in stream:
                service.query(side, vertex, TAU, TAU)
        except BaseException as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(stream,)) for stream in workload
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[:1]
    return NUM_CLIENTS * REQUESTS_PER_CLIENT


def _attach_service_stats(benchmark, service: PMBCService) -> None:
    stats = service.stats()
    total = NUM_CLIENTS * REQUESTS_PER_CLIENT
    benchmark.extra_info["requests_per_s"] = (
        total / benchmark.stats["mean"]
    )
    benchmark.extra_info["latency_p50_ms"] = (
        stats["latency_seconds"]["p50"] * 1e3
    )
    benchmark.extra_info["latency_p99_ms"] = (
        stats["latency_seconds"]["p99"] * 1e3
    )
    benchmark.extra_info["cache_hit_rate"] = stats["engine_cache"]["hit_rate"]
    benchmark.extra_info["singleflight_shared"] = (
        stats["singleflight"]["shared"]
    )


def test_serve_engine_backend(benchmark, graphs, workload):
    graph = graphs(DATASET)
    state: dict = {}

    def setup():
        # Each round serves from a cold service (cache, metrics reset).
        previous = state.get("service")
        if previous is not None:
            previous.close()
        service = PMBCService(
            graph,
            config=ServiceConfig(num_workers=NUM_CLIENTS, max_queue=256),
        ).start()
        state["service"] = service
        return (service, workload), {}

    served = benchmark.pedantic(
        _run_closed_loop, setup=setup, rounds=2, iterations=1
    )
    assert served == NUM_CLIENTS * REQUESTS_PER_CLIENT
    service = state["service"]
    stats = service.stats()
    assert (
        stats["requests"]["ok"] + stats["requests"]["empty"] == served
    )
    # Zipf skew must produce cache reuse.
    assert stats["engine_cache"]["hit_rate"] > 0.5
    _attach_service_stats(benchmark, service)
    service.close()


def test_serve_index_backend(benchmark, graphs, workload):
    graph = graphs(DATASET)
    index = build_index_star(graph)
    state: dict = {}

    def setup():
        previous = state.get("service")
        if previous is not None:
            previous.close()
        service = PMBCService(
            graph,
            index=index,
            config=ServiceConfig(num_workers=NUM_CLIENTS, max_queue=256),
        ).start()
        state["service"] = service
        return (service, workload), {}

    served = benchmark.pedantic(
        _run_closed_loop, setup=setup, rounds=2, iterations=1
    )
    assert served == NUM_CLIENTS * REQUESTS_PER_CLIENT
    service = state["service"]
    stats = service.stats()
    assert stats["latency_seconds"]["p50"] <= stats["latency_seconds"]["p99"]
    _attach_service_stats(benchmark, service)
    service.close()
