#!/usr/bin/env python
"""An open-loop load harness for the serving stack.

Drives a Zipf query stream at a **fixed arrival rate** against a
service (a :class:`repro.serve.PMBCService`, a
:class:`repro.shard.ShardedService`, or a live HTTP endpoint) and
searches for the maximum sustainable rate under a p99 latency SLO.

Open loop means arrivals are scheduled by the clock, not by
completions: request *i* of a run at rate *r* is due at ``start +
i/r`` whether or not earlier requests have finished, and its latency
is measured **from the scheduled arrival**, so queue build-up under
overload shows up in the percentiles instead of silently throttling
the generator (the coordinated-omission trap closed-loop harnesses
fall into).  Overload therefore looks like exactly what production
would see: admission-control rejects (HTTP 429 / QueueFullError),
deadline misses, and a p99 through the roof.

A rate is *sustainable* when, over the measured window:

- completed-request p99 (from scheduled arrival) <= ``slo_ms``, and
- rejects + deadline misses + errors <= ``max_bad_fraction`` of sent.

The search ramps the rate geometrically until the first unsustainable
run, then bisects between the last good and first bad rate.  The whole
hunt runs under CPU / memory / wall-clock caps
(:class:`ResourceCaps`), so a misconfigured service degrades into a
truncated report, not a runaway benchmark.

Standalone usage (see also ``emit_bench.py --suite load``)::

    PYTHONPATH=src python benchmarks/loadgen.py --dataset Amazon \
        --shards 2 --duration 2 --slo-ms 250

With ``--url`` the harness drives a live server over HTTP (one
connection per in-flight request, stdlib-only asyncio sockets)
instead of the in-process service layer.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import os
import resource
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.workloads import zipf_queries  # noqa: E402
from repro.core.query import QueryRequest  # noqa: E402
from repro.serve.service import (  # noqa: E402
    DeadlineExceededError,
    QueueFullError,
    ServeError,
)

DEFAULT_SLO_MS = 250.0
DEFAULT_BAD_FRACTION = 0.01


def _rusage() -> tuple[float, float]:
    """(cpu seconds, max RSS MiB) for this process tree so far."""
    self_usage = resource.getrusage(resource.RUSAGE_SELF)
    child_usage = resource.getrusage(resource.RUSAGE_CHILDREN)
    cpu = (
        self_usage.ru_utime
        + self_usage.ru_stime
        + child_usage.ru_utime
        + child_usage.ru_stime
    )
    # ru_maxrss is KiB on Linux, bytes on macOS; normalise to MiB.
    scale = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    rss_mb = max(self_usage.ru_maxrss, child_usage.ru_maxrss) / scale
    return cpu, rss_mb


@dataclass
class ResourceCaps:
    """Hard stops for a rate search (the algobattle-style fences)."""

    wall_seconds: float = 120.0
    cpu_seconds: float = 600.0
    rss_mb: float = 4096.0

    def start(self) -> None:
        """Record the baseline the caps are measured against."""
        self._wall0 = time.monotonic()
        self._cpu0, __ = _rusage()

    def exceeded(self) -> str | None:
        """A human-readable reason when any cap is blown, else None."""
        if time.monotonic() - self._wall0 > self.wall_seconds:
            return f"wall clock cap ({self.wall_seconds:g}s) exceeded"
        cpu, rss = _rusage()
        if cpu - self._cpu0 > self.cpu_seconds:
            return f"CPU cap ({self.cpu_seconds:g}s) exceeded"
        if rss > self.rss_mb:
            return f"RSS cap ({self.rss_mb:g} MiB) exceeded"
        return None


@dataclass
class RateRun:
    """Everything observed while driving one fixed arrival rate."""

    offered_qps: float
    duration_seconds: float
    sent: int = 0
    ok: int = 0
    empty: int = 0
    rejected: int = 0
    deadline_exceeded: int = 0
    errors: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    achieved_qps: float = 0.0
    sustainable: bool = False
    reasons: list[str] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Requests that produced an answer (ok or empty)."""
        return self.ok + self.empty

    @property
    def bad(self) -> int:
        """Requests the caller would experience as failures."""
        return self.rejected + self.deadline_exceeded + self.errors

    def percentile(self, frac: float) -> float:
        """Nearest-rank percentile of completion latency (ms)."""
        if not self.latencies_ms:
            return float("inf")
        ordered = sorted(self.latencies_ms)
        rank = max(
            0, min(len(ordered) - 1, round(frac * (len(ordered) - 1)))
        )
        return ordered[rank]

    def to_json(self) -> dict:
        """A JSON row for the benchmark snapshot."""
        return {
            "offered_qps": round(self.offered_qps, 2),
            "achieved_qps": round(self.achieved_qps, 2),
            "duration_seconds": round(self.duration_seconds, 3),
            "sent": self.sent,
            "ok": self.ok,
            "empty": self.empty,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "errors": self.errors,
            "p50_ms": round(self.percentile(0.50), 3),
            "p95_ms": round(self.percentile(0.95), 3),
            "p99_ms": round(self.percentile(0.99), 3),
            "sustainable": self.sustainable,
            "reasons": list(self.reasons),
        }


class ServiceTarget:
    """Drive an in-process service through its non-blocking admit API.

    Works against anything exposing
    :meth:`~repro.serve.service.PMBCService.admit` — a plain service or
    the shard router — which is exactly the admission path the asyncio
    front-end uses, so in-process numbers reflect the async serving
    data path minus socket framing.
    """

    def __init__(self, service, deadline: float) -> None:
        self.service = service
        self.deadline = deadline

    async def fire(self, request: QueryRequest, run: RateRun, t0: float):
        loop = asyncio.get_running_loop()
        try:
            submission = self.service.admit(request, deadline=self.deadline)
        except QueueFullError:
            run.rejected += 1
            return
        except ServeError:
            run.errors += 1
            return
        wrapped = asyncio.wrap_future(submission.future)
        try:
            try:
                result = await asyncio.wait_for(
                    asyncio.shield(wrapped), timeout=self.deadline
                )
            except asyncio.TimeoutError:
                submission.expire()
                result = await wrapped
        except DeadlineExceededError:
            run.deadline_exceeded += 1
            return
        except ServeError:
            run.errors += 1
            return
        if result.biclique is not None:
            run.ok += 1
        else:
            run.empty += 1
        run.latencies_ms.append((loop.time() - t0) * 1e3)


class HTTPTarget:
    """Drive a live ``/query`` endpoint, one connection per request."""

    def __init__(self, url: str, deadline: float) -> None:
        from urllib.parse import urlparse

        parsed = urlparse(url)
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.deadline = deadline

    async def fire(self, request: QueryRequest, run: RateRun, t0: float):
        loop = asyncio.get_running_loop()
        body = json.dumps(
            {
                "side": request.side.value,
                "vertex": request.vertex,
                "tau_u": request.tau_u,
                "tau_l": request.tau_l,
                "deadline": self.deadline,
            }
        ).encode()
        head = (
            f"POST /query HTTP/1.1\r\nHost: {self.host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        ).encode()
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.deadline,
            )
        except (OSError, asyncio.TimeoutError):
            run.errors += 1
            return
        try:
            writer.write(head + body)
            await writer.drain()
            status_line = await asyncio.wait_for(
                reader.readline(), timeout=self.deadline + 1.0
            )
            status = int(status_line.split()[1])
            await asyncio.wait_for(reader.read(), timeout=self.deadline + 1.0)
        except (OSError, ValueError, IndexError, asyncio.TimeoutError):
            run.errors += 1
            return
        finally:
            writer.close()
        if status == 200:
            run.ok += 1
            run.latencies_ms.append((loop.time() - t0) * 1e3)
        elif status == 429:
            run.rejected += 1
        elif status == 504:
            run.deadline_exceeded += 1
        else:
            run.errors += 1


async def run_rate(
    target,
    requests: list[QueryRequest],
    rate: float,
    duration: float,
    slo_ms: float = DEFAULT_SLO_MS,
    max_bad_fraction: float = DEFAULT_BAD_FRACTION,
) -> RateRun:
    """Drive ``rate`` arrivals/s for ``duration`` seconds; judge the run.

    Latency is measured from each request's *scheduled* arrival time,
    so generator lag (falling behind the schedule) and queueing both
    count against the SLO.
    """
    run = RateRun(offered_qps=rate, duration_seconds=duration)
    loop = asyncio.get_running_loop()
    total = max(1, int(rate * duration))
    start = loop.time()
    tasks = []
    for i in range(total):
        due = start + i / rate
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        request = requests[i % len(requests)]
        run.sent += 1
        tasks.append(
            asyncio.ensure_future(target.fire(request, run, due))
        )
    if tasks:
        await asyncio.gather(*tasks)
    elapsed = loop.time() - start
    run.achieved_qps = run.completed / elapsed if elapsed > 0 else 0.0
    p99 = run.percentile(0.99)
    if p99 > slo_ms:
        run.reasons.append(f"p99 {p99:.1f}ms > SLO {slo_ms:g}ms")
    if run.bad > max_bad_fraction * run.sent:
        run.reasons.append(
            f"{run.bad}/{run.sent} failed "
            f"({run.rejected} rejected, {run.deadline_exceeded} deadline, "
            f"{run.errors} errors)"
        )
    run.sustainable = not run.reasons
    return run


def find_max_sustainable(
    target,
    requests: list[QueryRequest],
    start_qps: float = 16.0,
    duration: float = 2.0,
    slo_ms: float = DEFAULT_SLO_MS,
    max_bad_fraction: float = DEFAULT_BAD_FRACTION,
    ramp: float = 2.0,
    refine_steps: int = 2,
    caps: ResourceCaps | None = None,
    log=lambda msg: None,
) -> tuple[RateRun | None, list[RateRun], list[str]]:
    """Geometric ramp + bisection hunt for the max sustainable rate.

    Returns ``(best_run, all_runs, notes)`` — ``best_run`` is the
    highest sustainable :class:`RateRun` observed (None when even the
    starting rate failed), ``all_runs`` every rate tried in order, and
    ``notes`` records truncations (resource caps).
    """
    caps = caps or ResourceCaps()
    caps.start()
    runs: list[RateRun] = []
    notes: list[str] = []
    best: RateRun | None = None
    rate = start_qps
    first_bad: float | None = None

    def _measure(qps: float) -> RateRun:
        run = asyncio.run(
            run_rate(
                target,
                requests,
                qps,
                duration,
                slo_ms=slo_ms,
                max_bad_fraction=max_bad_fraction,
            )
        )
        runs.append(run)
        log(
            f"  rate {qps:8.1f} qps: p99={run.percentile(0.99):8.1f}ms "
            f"bad={run.bad}/{run.sent} "
            f"{'ok' if run.sustainable else 'UNSUSTAINABLE'}"
        )
        return run

    # Geometric ramp until the first unsustainable rate.
    while True:
        reason = caps.exceeded()
        if reason is not None:
            notes.append(f"ramp truncated: {reason}")
            return best, runs, notes
        run = _measure(rate)
        if run.sustainable:
            best = run
            rate *= ramp
        else:
            first_bad = rate
            break

    if best is None:
        notes.append(f"starting rate {start_qps:g} qps already unsustainable")
        return None, runs, notes

    # Bisect between the last good and first bad rate.
    low, high = best.offered_qps, first_bad
    for __ in range(refine_steps):
        reason = caps.exceeded()
        if reason is not None:
            notes.append(f"refine truncated: {reason}")
            break
        mid = math.sqrt(low * high)  # geometric midpoint
        run = _measure(mid)
        if run.sustainable:
            best, low = run, mid
        else:
            high = mid
    return best, runs, notes


def zipf_request_stream(
    graph, num_queries: int, tau: int, exponent: float, seed: int
) -> list[QueryRequest]:
    """The Zipf arrival stream as a reusable list of requests."""
    return [
        QueryRequest(side, vertex, tau, tau)
        for side, vertex in zipf_queries(
            graph,
            num_queries=num_queries,
            exponent=exponent,
            seed=seed,
        )
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="Amazon")
    parser.add_argument("--shards", type=int, default=1,
                        help="1 = plain service, N>=2 = sharded router")
    parser.add_argument("--workers", type=int, default=4,
                        help="service worker threads (per shard when sharded)")
    parser.add_argument("--cache-size", type=int, default=64,
                        help="engine LRU capacity (per shard when sharded)")
    parser.add_argument("--execution", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("--url", default=None,
                        help="drive a live server at this URL instead of an "
                             "in-process service")
    parser.add_argument("--tau", type=int, default=2)
    parser.add_argument("--exponent", type=float, default=1.05)
    parser.add_argument("--stream", type=int, default=512,
                        help="distinct scheduled arrivals before the stream "
                             "repeats")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--start-qps", type=float, default=16.0)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--slo-ms", type=float, default=DEFAULT_SLO_MS)
    parser.add_argument("--deadline", type=float, default=1.0)
    parser.add_argument("--refine", type=int, default=2)
    parser.add_argument("--wall-cap", type=float, default=120.0)
    parser.add_argument("--cpu-cap", type=float, default=600.0)
    parser.add_argument("--rss-cap-mb", type=float, default=4096.0)
    args = parser.parse_args(argv)

    from repro.datasets.zoo import load_dataset
    from repro.serve import PMBCService, ServiceConfig

    graph = load_dataset(args.dataset)
    requests = zipf_request_stream(
        graph, args.stream, args.tau, args.exponent, args.seed
    )
    caps = ResourceCaps(
        wall_seconds=args.wall_cap,
        cpu_seconds=args.cpu_cap,
        rss_mb=args.rss_cap_mb,
    )
    if args.url:
        target = HTTPTarget(args.url, deadline=args.deadline)
        service = None
    else:
        config = ServiceConfig(
            num_workers=args.workers,
            max_queue=max(256, args.stream),
            cache_size=args.cache_size,
            execution=args.execution,
            default_deadline=args.deadline,
        )
        if args.shards > 1:
            from repro.shard import ShardedService

            service = ShardedService(graph, args.shards, config=config)
        else:
            service = PMBCService(graph, config=config)
        service.start()
        target = ServiceTarget(service, deadline=args.deadline)
    print(
        f"loadgen: {args.dataset} |E|={graph.num_edges}, "
        f"{'url=' + args.url if args.url else f'shards={args.shards}'}, "
        f"SLO p99<={args.slo_ms:g}ms, stream={args.stream} zipf "
        f"s={args.exponent:g} tau={args.tau}",
        flush=True,
    )
    try:
        best, runs, notes = find_max_sustainable(
            target,
            requests,
            start_qps=args.start_qps,
            duration=args.duration,
            slo_ms=args.slo_ms,
            refine_steps=args.refine,
            caps=caps,
            log=lambda msg: print(msg, flush=True),
        )
    finally:
        if service is not None:
            service.close()
    for note in notes:
        print(f"note: {note}")
    if best is None:
        print("no sustainable rate found")
        return 1
    print(
        f"max sustainable: {best.offered_qps:.1f} qps "
        f"(achieved {best.achieved_qps:.1f}, p99 "
        f"{best.percentile(0.99):.1f}ms over {best.sent} requests)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
