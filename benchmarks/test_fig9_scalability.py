"""Figure 9 — index construction scalability, varying graph size m.

Paper setup: uniformly sample 20%–100% of each graph's edges
(ActorMovies, Wikipedia, Amazon, DBLP) and build PMBC-IC / PMBC-IC* on
each sample.  Expected shape: build time grows with m for both
constructors, IC* dominated by IC at every sample level.
"""

from __future__ import annotations

import pytest

from repro.core import build_index, build_index_star
from repro.datasets.zoo import scalability_dataset_names
from repro.graph.sampling import sample_edges

pytestmark = pytest.mark.benchmark(group="fig9")

DATASETS = scalability_dataset_names()
FRACTIONS = [0.2, 0.4, 0.6, 0.8, 1.0]


@pytest.fixture(scope="module")
def sampled_graphs(graphs):
    cache: dict[tuple[str, float], object] = {}

    def get(name: str, fraction: float):
        key = (name, fraction)
        if key not in cache:
            graph = graphs(name)
            cache[key] = (
                graph
                if fraction == 1.0
                else sample_edges(graph, fraction, seed=2022)
            )
        return cache[key]

    return get


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_scalability_ic(benchmark, dataset, fraction, sampled_graphs):
    graph = sampled_graphs(dataset, fraction)
    index = benchmark.pedantic(
        lambda: build_index(graph), rounds=1, iterations=1
    )
    benchmark.extra_info["num_edges"] = graph.num_edges
    benchmark.extra_info["num_bicliques"] = index.num_bicliques


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_scalability_ic_star(benchmark, dataset, fraction, sampled_graphs):
    graph = sampled_graphs(dataset, fraction)
    index = benchmark.pedantic(
        lambda: build_index_star(graph), rounds=1, iterations=1
    )
    benchmark.extra_info["num_edges"] = graph.num_edges
    benchmark.extra_info["num_bicliques"] = index.num_bicliques
