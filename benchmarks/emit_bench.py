#!/usr/bin/env python
"""Emit benchmark snapshots: kernel latency and adaptive serve throughput.

Four suites, selected with ``--suite {kernel,serve,load,update,all}``:

**kernel** (default) emits ``BENCH_kernel.json``, a kernel latency
snapshot covering all three compute kernels (``set``, ``bitset``,
``words``) plus a batched-vs-per-request comparison — see below.

**serve** emits ``BENCH_serve.json``: a Zipf-skewed serve workload
against a :class:`repro.serve.PMBCService` with the traffic-adaptive
partial index enabled (:mod:`repro.adaptive`).  The same stream is
replayed twice — cold (nothing resident, queries answered by the
engine/OL* path) and warm (after the background builder drained the
hot set) — and the snapshot records per-phase latency percentiles, the
answering backend mix, and the head-query speedup of the warmed
partial-index tier over the cold path.  ``--smoke`` gates on: the
builder drained, the adaptive tier answered (hits > 0), resident bytes
never exceeded the budget, and warm head p50 strictly below cold p50.

**load** merges a ``"load"`` section into ``BENCH_serve.json``: the
open-loop harness (:mod:`loadgen`) hunts the maximum sustainable
arrival rate under a p99 latency SLO for two HTTP stacks serving the
same Zipf stream — the single-process baseline (one
:class:`~repro.serve.PMBCService` behind the blocking threaded
front-end) and the sharded stack (a :class:`repro.shard.ShardedService`
behind the asyncio front-end) with the same total worker count.
``--smoke`` gates on the sharded async stack sustaining at least the
baseline's rate (the CI load-smoke gate).  The section is merged, not
overwritten: serve-suite results already in the file are preserved,
and vice versa.

**update** emits ``BENCH_update.json``: a temporal edge-update replay
(:func:`repro.bench.workloads.temporal_replay` — seeded churn with
interleaved Zipf queries) applied once through the streaming
maintenance path (:meth:`PMBCService.update_batch`: in-place
(α,β)-core bound repair, packed-adjacency patching, scoped
invalidation) and once as a per-batch full rebuild.  Interleaved
answers are asserted equal, the final bounds and packed adjacency are
asserted identical to a from-scratch build (differential failures are
hard in every mode), and the steady-state segment must trigger zero
re-packs.  The throughput gate: incremental strictly beats rebuild in
``--smoke`` (fig6-small), and is at least 10x on the full fig6-medium
replay.

Runs the Figure 6 / Figure 7 query workloads (same datasets, query
pools and τ settings as ``test_fig6_query_time.py`` and
``test_fig7_vary_tau.py``) once per compute kernel and writes a
machine-readable snapshot to the repository root: per (suite, dataset,
config) row, p50/p95/mean per-query latency for each kernel plus two
speedups of ``bitset`` over ``set`` — ``speedup_mean`` on the workload
mean (the Figure 6 protocol: the benchmark times the whole query sweep,
so heavy personalized queries dominate, which is exactly the regime the
bitset kernel targets) and ``speedup_p50`` on the median query (the
typical-query view; small two-hop subgraphs leave word-parallelism
little to chew on, so this is the kernel's worst case).  The ``words``
kernel rides the same rows head-to-head (``speedup_mean_words`` /
``speedup_p50_words``, also over ``set``).  The summary reports the
median of each per size class; the headline metric is the workload
one.  Latencies are per-query best-of-N to keep the snapshot stable on
noisy machines.

All kernels answer every query in the same process and the result
sizes are asserted equal — each snapshot doubles as a differential run.
The plan also carries a ``balanced`` suite: the same Figure 6 datasets
queried under the pluggable ``"balanced"`` objective
(:mod:`repro.objectives`), so the snapshot covers the objective ×
kernel matrix, not just the PMBC family.

A ``batch`` suite rounds out the kernel snapshot: a Zipf-skewed
request stream (τ floors alternating, duplicates expected — that is
serving traffic) is answered once via :func:`pmbc_online_batch` and
once as a per-request :func:`pmbc_online` loop, per packed kernel.
Rows record whole-stream latency stats for both execution modes and
the speedup of batched over per-request; answers are asserted equal,
so the batch rows double as a batch-vs-single differential run.

``--smoke`` runs a two-dataset subset with fewer repeats and exits
non-zero unless (a) the bitset kernel is at least as fast as the set
kernel on every smoke row of the **pmbc** suites and (b) the batched
path beats per-request execution on every batch row (the CI
benchmark-smoke gate).  Balanced rows are exempt from the speed gate —
the balanced family switches the Lemma 9 size bounds off, so the
bitset advantage is not contractual there — and the ``words`` columns
are head-to-head measurements, not gates: the word-array kernel trades
per-query scan latency for in-place mutation, so it is expected to
trail on narrow per-query extractions and win where reduction loops
dominate.  Cross-kernel answer equality is asserted on every row
regardless.
"""

from __future__ import annotations

import argparse
import itertools
import json
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.bench.workloads import top_degree_queries, zipf_queries  # noqa: E402
from repro.core.online import pmbc_online, pmbc_online_batch  # noqa: E402
from repro.core.query import QueryRequest  # noqa: E402
from repro.corenum.bounds import compute_bounds  # noqa: E402
from repro.kernel import KERNEL_KINDS, PACKED_KERNELS  # noqa: E402
from repro.datasets.zoo import (  # noqa: E402
    dataset_names,
    load_dataset,
    scalability_dataset_names,
)

#: Same workload scaling as benchmarks/conftest.py.
NUM_QUERIES = 20
QUERY_POOL = 50
WORKLOAD_SEED = 2022
TAU_FIG6 = 5
FIG7_TAUS = (2, 4, 6, 8, 10)
#: Dataset size classes by edge count (upper bound, class name).
SIZE_CLASSES = ((2000, "small"), (5000, "medium"), (float("inf"), "large"))

SMOKE_DATASETS = ("Writers", "StackOverflow")
BALANCED_TAU = 2

#: Batch-suite workload: a Zipf request stream (repeats are the point)
#: with alternating τ floors, answered batched vs per-request.
BATCH_NUM_QUERIES = 80
BATCH_SMOKE_QUERIES = 60
BATCH_EXPONENT = 1.2
BATCH_TAUS = (TAU_FIG6, 2)

#: Serve-suite workload: a Zipf stream against the Github dataset.
SERVE_DATASET = "Github"
SERVE_NUM_QUERIES = 400
SERVE_SMOKE_QUERIES = 150
SERVE_EXPONENT = 1.2
SERVE_TAU = 2
SERVE_BUDGET_MB = 16.0
SERVE_HOT_THRESHOLD = 2.0

#: Update-suite workload: a temporal edge-update replay with
#: interleaved queries on a fig6-medium dataset (fig6-small in smoke
#: mode), applied once through the incremental maintenance path
#: (:meth:`PMBCService.update_batch`) and once as a per-batch full
#: rebuild (fresh graph + (α,β)-core bounds from scratch).
UPDATE_DATASET = "Amazon"          # fig6-medium
UPDATE_SMOKE_DATASET = "Writers"   # fig6-small
UPDATE_NUM_EVENTS = 1500
UPDATE_SMOKE_EVENTS = 400
#: Batch size doubles as the freshness SLA: answers may lag the stream
#: by at most this many updates, and both paths must be query-ready at
#: every batch boundary (a rebuild-based system pays a full
#: graph+bounds rebuild per boundary no matter how few updates it
#: covers).
UPDATE_BATCH = 4
UPDATE_QUERY_EVERY = 40
UPDATE_TAU = 2
UPDATE_DELETE_FRACTION = 0.45
#: First fraction of the stream treated as warm-up; the remainder is
#: the steady-state segment whose re-pack counter must stay at zero.
UPDATE_WARMUP_FRACTION = 0.2

#: Load-suite workload: open-loop Zipf arrivals against two HTTP
#: stacks on a fig6-medium dataset.  Worker threads are split across
#: shards so both stacks field the same total compute.
LOAD_DATASET = "Amazon"
LOAD_STREAM = 512
LOAD_EXPONENT = 1.2
LOAD_TAU = 2
LOAD_SLO_MS = 250.0
LOAD_SHARDS = 2
LOAD_WORKERS = 4
LOAD_CACHE = 64
LOAD_DEADLINE = 1.0
LOAD_START_QPS = 32.0


def size_class(num_edges: int) -> str:
    """The size-class label for a dataset with ``num_edges`` edges."""
    for bound, label in SIZE_CLASSES:
        if num_edges < bound:
            return label
    raise AssertionError("unreachable")


def percentile(values: list[float], frac: float) -> float:
    """Nearest-rank percentile of an unsorted sample."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(frac * (len(ordered) - 1))))
    return ordered[rank]


def run_workload(graph, queries, tau, bounds, kernel, repeats, objective):
    """Per-query best-of-``repeats`` latencies (ms) and answer sizes."""
    best = [float("inf")] * len(queries)
    sizes = [0] * len(queries)
    perf_counter = time.perf_counter
    for rep in range(repeats):
        for i, (side, q) in enumerate(queries):
            t0 = perf_counter()
            result = pmbc_online(
                graph, side, q, tau, tau,
                bounds=bounds, kernel=kernel, objective=objective,
            )
            elapsed = (perf_counter() - t0) * 1e3
            if elapsed < best[i]:
                best[i] = elapsed
            if rep == 0:
                sizes[i] = result.num_edges if result is not None else 0
    return best, sizes


def latency_stats(latencies: list[float]) -> dict:
    return {
        "p50_ms": round(percentile(latencies, 0.50), 4),
        "p95_ms": round(percentile(latencies, 0.95), 4),
        "mean_ms": round(statistics.fmean(latencies), 4),
    }


def bench_case(graph, queries, tau, bounds, repeats, objective="pmbc"):
    """One (dataset, config) row: every kernel, checked and timed."""
    kernels = {}
    sizes_by_kernel = {}
    for kernel in KERNEL_KINDS:
        latencies, sizes = run_workload(
            graph, queries, tau, bounds, kernel, repeats, objective
        )
        kernels[kernel] = latency_stats(latencies)
        sizes_by_kernel[kernel] = sizes
    for kernel in PACKED_KERNELS:
        if sizes_by_kernel["set"] != sizes_by_kernel[kernel]:
            raise AssertionError(
                f"{kernel} answers diverged from set — differential "
                "failure on this config"
            )
    speedups = {
        "speedup_mean": round(
            kernels["set"]["mean_ms"] / kernels["bitset"]["mean_ms"], 3
        ),
        "speedup_p50": round(
            kernels["set"]["p50_ms"] / kernels["bitset"]["p50_ms"], 3
        ),
        "speedup_mean_words": round(
            kernels["set"]["mean_ms"] / kernels["words"]["mean_ms"], 3
        ),
        "speedup_p50_words": round(
            kernels["set"]["p50_ms"] / kernels["words"]["p50_ms"], 3
        ),
    }
    return kernels, speedups


def batch_requests(graph, num_queries):
    """The Zipf batch stream as :class:`QueryRequest`s with a τ mix.

    Alternating τ floors model clients asking different questions about
    the same hot vertices: exact duplicates (same vertex, same floors)
    exercise the duplicate collapse, near-duplicates (same vertex,
    different floors) exercise the shared extraction and the seed /
    reduction memos.
    """
    stream = zipf_queries(
        graph,
        num_queries=num_queries,
        exponent=BATCH_EXPONENT,
        seed=WORKLOAD_SEED,
    )
    return [
        QueryRequest(side, vertex, tau, tau)
        for (side, vertex), tau in zip(stream, itertools.cycle(BATCH_TAUS))
    ]


def bench_batch_case(graph, requests, bounds, kernel, repeats):
    """Batched vs per-request packed search over one request stream.

    Times ``repeats`` full passes of each execution mode over the same
    stream (whole-stream totals, not per-query) and asserts the batched
    answers match the per-request ones — a batch-vs-single differential
    check on top of the timing.
    """
    batch_totals: list[float] = []
    single_totals: list[float] = []
    perf_counter = time.perf_counter
    batched = singles = None
    for __ in range(repeats):
        t0 = perf_counter()
        batched = pmbc_online_batch(
            graph, requests, bounds=bounds, kernel=kernel
        )
        batch_totals.append((perf_counter() - t0) * 1e3)
        t0 = perf_counter()
        singles = [
            pmbc_online(
                graph,
                r.side,
                r.vertex,
                r.tau_u,
                r.tau_l,
                bounds=bounds,
                kernel=kernel,
                objective=r.objective,
            )
            for r in requests
        ]
        single_totals.append((perf_counter() - t0) * 1e3)
    batch_sizes = [b.num_edges if b else 0 for b in batched]
    single_sizes = [s.num_edges if s else 0 for s in singles]
    if batch_sizes != single_sizes:
        raise AssertionError(
            "batched answers diverged from per-request — differential "
            "failure on this config"
        )
    modes = {
        "batched": latency_stats(batch_totals),
        "per_request": latency_stats(single_totals),
    }
    speedups = {
        "speedup_mean": round(
            modes["per_request"]["mean_ms"] / modes["batched"]["mean_ms"], 3
        ),
        "speedup_p50": round(
            modes["per_request"]["p50_ms"] / modes["batched"]["p50_ms"], 3
        ),
    }
    return modes, speedups


def build_plan(smoke: bool, only: list[str] | None):
    """The (suite, dataset, config, tau, with_bounds, objective) rows."""
    plan = []
    fig6_datasets = SMOKE_DATASETS if smoke else tuple(dataset_names())
    if only:
        fig6_datasets = tuple(d for d in fig6_datasets if d in only) or tuple(
            only
        )
    for dataset in fig6_datasets:
        plan.append(
            ("fig6", dataset, f"OL tau={TAU_FIG6}", TAU_FIG6, False, "pmbc")
        )
        plan.append(
            ("fig6", dataset, f"OL* tau={TAU_FIG6}", TAU_FIG6, True, "pmbc")
        )
    for dataset in fig6_datasets:
        plan.append(
            (
                "balanced",
                dataset,
                f"OL* tau={BALANCED_TAU}",
                BALANCED_TAU,
                True,
                "balanced",
            )
        )
    if not smoke:
        for dataset in scalability_dataset_names():
            if only and dataset not in only:
                continue
            for tau in FIG7_TAUS:
                plan.append(
                    ("fig7", dataset, f"OL* tau={tau}", tau, True, "pmbc")
                )
    return plan


def replay(service, stream, tau):
    """Replay a query stream; per-query ``(latency_ms, backend)`` rows."""
    rows = []
    perf_counter = time.perf_counter
    for side, vertex in stream:
        t0 = perf_counter()
        result = service.query(side, vertex, tau, tau)
        rows.append(((perf_counter() - t0) * 1e3, result.backend))
    return rows


def phase_stats(rows) -> dict:
    """Latency percentiles plus the answering-backend mix of a phase."""
    backends: dict[str, int] = {}
    for __, backend in rows:
        backends[backend] = backends.get(backend, 0) + 1
    return {
        **latency_stats([ms for ms, __ in rows]),
        "by_backend": backends,
    }


def bench_serve(smoke: bool) -> tuple[dict, list[str]]:
    """Cold-vs-warm Zipf serve run; returns ``(snapshot_body, failures)``.

    The cold phase measures the degradation chain with nothing
    resident; after the background builder drains the hot set, the
    identical stream is replayed warm.  The headline comparison is
    *head* queries only: cold p50 over queries the partial tier did
    not answer vs warm p50 over queries it did.
    """
    from repro.bench.workloads import zipf_queries
    from repro.serve.service import PMBCService, ServiceConfig

    num_queries = SERVE_SMOKE_QUERIES if smoke else SERVE_NUM_QUERIES
    graph = load_dataset(SERVE_DATASET)
    stream = zipf_queries(
        graph,
        num_queries=num_queries,
        exponent=SERVE_EXPONENT,
        seed=WORKLOAD_SEED,
    )
    config = ServiceConfig(
        num_workers=2,
        max_queue=num_queries + 8,
        adaptive=True,
        index_budget_mb=SERVE_BUDGET_MB,
        hot_threshold=SERVE_HOT_THRESHOLD,
        build_interval=0.02,
    )
    budget_bytes = config.index_budget_bytes
    with PMBCService(graph, config=config) as service:
        cold_rows = replay(service, stream, SERVE_TAU)
        drained = service.builder.drain(timeout=60.0)
        warm_rows = replay(service, stream, SERVE_TAU)
        stats = service.stats()
    adaptive = stats["adaptive"]
    partial = adaptive["partial_index"]

    cold_head = [ms for ms, backend in cold_rows if backend != "partial"]
    warm_head = [ms for ms, backend in warm_rows if backend == "partial"]
    failures: list[str] = []
    if not drained:
        failures.append("background builder did not drain the hot set")
    if not adaptive["hits"]:
        failures.append("adaptive tier answered no queries (hits == 0)")
    if partial["bytes"] > budget_bytes:
        failures.append(
            f"resident bytes {partial['bytes']} exceed budget {budget_bytes}"
        )
    summary = {
        "drained": drained,
        "head_queries_warm": len(warm_head),
        "head_fraction_warm": round(len(warm_head) / len(warm_rows), 3),
    }
    if cold_head and warm_head:
        cold_p50 = percentile(cold_head, 0.50)
        warm_p50 = percentile(warm_head, 0.50)
        summary.update(
            cold_head_p50_ms=round(cold_p50, 4),
            warm_head_p50_ms=round(warm_p50, 4),
            head_speedup_p50=round(cold_p50 / warm_p50, 3)
            if warm_p50
            else None,
        )
        if warm_p50 >= cold_p50:
            failures.append(
                f"warm head p50 {warm_p50:.4f}ms not better than "
                f"cold {cold_p50:.4f}ms"
            )
    else:
        failures.append("no head queries to compare (empty cold/warm sets)")

    body = {
        "workload": {
            "dataset": SERVE_DATASET,
            "num_queries": num_queries,
            "exponent": SERVE_EXPONENT,
            "tau": SERVE_TAU,
            "seed": WORKLOAD_SEED,
            "budget_mb": SERVE_BUDGET_MB,
            "hot_threshold": SERVE_HOT_THRESHOLD,
        },
        "phases": {
            "cold": phase_stats(cold_rows),
            "warm": phase_stats(warm_rows),
        },
        "adaptive": {
            "hits": adaptive["hits"],
            "misses": adaptive["misses"],
            "builds": adaptive["builder"]["builds"],
            "entries": partial["entries"],
            "bytes": partial["bytes"],
            "budget_bytes": budget_bytes,
            "evictions": partial["evictions"],
            "coverage": stats["index_coverage"]["adaptive"]["fraction"],
        },
        "summary": summary,
    }
    return body, failures


def bench_load(smoke: bool) -> tuple[dict, list[str]]:
    """Open-loop rate hunt for both HTTP stacks; ``(body, failures)``.

    Drives the same repeating Zipf request stream at fixed arrival
    rates (latency measured from each request's *scheduled* arrival,
    so queue build-up counts — no coordinated omission) and bisects
    for the max rate whose p99 stays under :data:`LOAD_SLO_MS` with at
    most ~1% rejects/deadline-misses/errors.  The single-process
    baseline runs behind the blocking threaded front-end; the sharded
    stack behind the asyncio front-end with the same total workers.
    """
    from loadgen import (
        HTTPTarget,
        ResourceCaps,
        find_max_sustainable,
        zipf_request_stream,
    )
    from repro.serve import (
        AsyncPMBCServer,
        PMBCServer,
        PMBCService,
        ServiceConfig,
    )
    from repro.shard import ShardedService

    graph = load_dataset(LOAD_DATASET)
    requests = zipf_request_stream(
        graph, LOAD_STREAM, LOAD_TAU, LOAD_EXPONENT, WORKLOAD_SEED
    )
    duration = 1.0 if smoke else 2.0
    refine = 1 if smoke else 2
    wall_cap = 45.0 if smoke else 180.0

    def measure(label: str, server) -> dict:
        target = HTTPTarget(server.url, deadline=LOAD_DEADLINE)
        best, runs, notes = find_max_sustainable(
            target,
            requests,
            start_qps=LOAD_START_QPS,
            duration=duration,
            slo_ms=LOAD_SLO_MS,
            refine_steps=refine,
            caps=ResourceCaps(wall_seconds=wall_cap),
            log=lambda msg: print(f"[{label}]{msg}", flush=True),
        )
        return {
            "max_sustainable_qps": round(best.offered_qps, 2)
            if best
            else None,
            "best": best.to_json() if best else None,
            "rates": [r.to_json() for r in runs],
            "notes": notes,
        }

    single_config = ServiceConfig(
        num_workers=LOAD_WORKERS,
        max_queue=LOAD_STREAM,
        cache_size=LOAD_CACHE,
        default_deadline=LOAD_DEADLINE,
    )
    single = PMBCService(graph, config=single_config)
    single.start()
    server = PMBCServer(single, port=0)
    server.start()
    try:
        single_report = measure("single  ", server)
    finally:
        server.shutdown()

    shard_config = ServiceConfig(
        num_workers=max(1, LOAD_WORKERS // LOAD_SHARDS),
        max_queue=max(64, LOAD_STREAM // LOAD_SHARDS),
        cache_size=LOAD_CACHE,
        default_deadline=LOAD_DEADLINE,
    )
    sharded = ShardedService(graph, LOAD_SHARDS, config=shard_config)
    sharded.start()
    aserver = AsyncPMBCServer(sharded, port=0)
    aserver.start()
    try:
        sharded_report = measure(f"sharded{LOAD_SHARDS}", aserver)
    finally:
        aserver.shutdown()

    single_qps = single_report["max_sustainable_qps"]
    sharded_qps = sharded_report["max_sustainable_qps"]
    failures: list[str] = []
    if single_qps is None:
        failures.append("single-process stack found no sustainable rate")
    if sharded_qps is None:
        failures.append("sharded async stack found no sustainable rate")
    elif single_qps is not None and sharded_qps < single_qps:
        failures.append(
            f"sharded async stack ({sharded_qps:g} qps) below the "
            f"single-process baseline ({single_qps:g} qps)"
        )
    summary = {
        "slo_p99_ms": LOAD_SLO_MS,
        "single_qps": single_qps,
        "sharded_qps": sharded_qps,
        "speedup": round(sharded_qps / single_qps, 3)
        if single_qps and sharded_qps
        else None,
    }
    body = {
        "workload": {
            "dataset": LOAD_DATASET,
            "stream": LOAD_STREAM,
            "exponent": LOAD_EXPONENT,
            "tau": LOAD_TAU,
            "seed": WORKLOAD_SEED,
            "slo_p99_ms": LOAD_SLO_MS,
            "deadline_seconds": LOAD_DEADLINE,
            "run_duration_seconds": duration,
            "timing": "open-loop, latency from scheduled arrival",
        },
        "configs": {
            "single": {
                "front_end": "threaded",
                "shards": 1,
                "workers": LOAD_WORKERS,
                "cache_size": LOAD_CACHE,
                **single_report,
            },
            "sharded": {
                "front_end": "asyncio",
                "shards": LOAD_SHARDS,
                "workers_per_shard": max(1, LOAD_WORKERS // LOAD_SHARDS),
                "cache_size_per_shard": LOAD_CACHE,
                **sharded_report,
            },
        },
        "summary": summary,
    }
    return body, failures


def bench_update(smoke: bool) -> tuple[dict, list[str]]:
    """Temporal-replay maintenance: incremental vs rebuild.

    Replays one seeded :func:`temporal_replay` stream (edge churn with
    interleaved Zipf queries) twice:

    - **incremental** — a :class:`~repro.serve.PMBCService` applies
      each update batch through :meth:`update_batch` (in-place bound
      repair + packed-adjacency patching + scoped invalidation) and
      answers the interleaved queries;
    - **rebuild** — the pre-streaming baseline: each batch re-creates
      the :class:`BipartiteGraph` and recomputes the (α,β)-core
      bounds from scratch, then answers queries online.

    Both paths see identical batch boundaries; the headline metric is
    maintenance throughput (updates/s, query time excluded).  Every
    interleaved query is asserted equal across the two paths, and the
    run ends with a differential identity check: the incrementally
    maintained bounds must equal ``compute_bounds`` of the final
    graph, and the patched packed adjacency must be byte-identical to
    a fresh pack.  Failures are hard (returned regardless of smoke):
    this snapshot doubles as an incremental-vs-rebuild differential
    run.  The steady-state segment (after the warm-up prefix) must
    trigger zero re-packs.
    """
    from repro.bench.workloads import temporal_replay
    from repro.graph.bipartite import BipartiteGraph, Side
    from repro.kernel.dynadj import DynamicPackedAdjacency
    from repro.serve.service import PMBCService, ServiceConfig

    dataset = UPDATE_SMOKE_DATASET if smoke else UPDATE_DATASET
    num_events = UPDATE_SMOKE_EVENTS if smoke else UPDATE_NUM_EVENTS
    graph = load_dataset(dataset)
    events = temporal_replay(
        graph,
        num_updates=num_events,
        delete_fraction=UPDATE_DELETE_FRACTION,
        rewire_fraction=1.0,
        query_every=UPDATE_QUERY_EVERY,
        seed=WORKLOAD_SEED,
    )

    # Shared batch schedule: updates accumulate up to UPDATE_BATCH and
    # flush on queries, so both paths apply identical batches.
    batches: list[list] = []
    schedule: list[tuple[str, object]] = []  # ("batch", ops) | ("query", q)
    pending: list[tuple[str, int, int]] = []
    for __, kind, a, b in events:
        if kind == "query":
            if pending:
                schedule.append(("batch", pending))
                batches.append(pending)
                pending = []
            schedule.append(("query", (a, b)))
        else:
            pending.append((kind, a, b))
            if len(pending) >= UPDATE_BATCH:
                schedule.append(("batch", pending))
                batches.append(pending)
                pending = []
    if pending:
        schedule.append(("batch", pending))
        batches.append(pending)
    num_updates = sum(len(b) for b in batches)
    warmup_batches = round(len(batches) * UPDATE_WARMUP_FRACTION)

    failures: list[str] = []
    perf_counter = time.perf_counter

    # -- incremental path -------------------------------------------------
    config = ServiceConfig(num_workers=2, max_queue=64)
    inc_answers: list[int] = []
    inc_update_seconds = 0.0
    inc_query_ms: list[float] = []
    steady_repacks = repacks_at_warmup = 0
    with PMBCService(graph, config=config) as service:
        batch_index = 0
        for kind, payload in schedule:
            if kind == "batch":
                t0 = perf_counter()
                service.update_batch(payload)
                inc_update_seconds += perf_counter() - t0
                batch_index += 1
                if batch_index == warmup_batches:
                    repacks_at_warmup = service._dynadj.repack_count
            else:
                side, vertex = payload
                t0 = perf_counter()
                result = service.query(side, vertex, UPDATE_TAU, UPDATE_TAU)
                inc_query_ms.append((perf_counter() - t0) * 1e3)
                inc_answers.append(
                    result.biclique.num_edges if result.biclique else 0
                )
        stats = service.stats()
        final_graph = service.graph
        final_bounds = service.engine.bounds
        dynadj_bytes = (
            service._dynadj.canonical_bytes()
            if service._dynadj is not None
            else None
        )
        total_repacks = stats["updates"]["repacks"]
        steady_repacks = total_repacks - repacks_at_warmup
        cascade = stats["updates"]["cascade_vertices"]

    # -- rebuild baseline -------------------------------------------------
    upper_adj = [
        set(graph.neighbors(Side.UPPER, u)) for u in range(graph.num_upper)
    ]
    reb_graph = graph
    reb_bounds = compute_bounds(graph)
    reb_answers: list[int] = []
    reb_update_seconds = 0.0
    reb_query_ms: list[float] = []
    for kind, payload in schedule:
        if kind == "batch":
            for action, u, v in payload:
                if action == "insert":
                    upper_adj[u].add(v)
                else:
                    upper_adj[u].discard(v)
            t0 = perf_counter()
            reb_graph = BipartiteGraph(
                [sorted(ns) for ns in upper_adj], num_lower=graph.num_lower
            )
            reb_bounds = compute_bounds(reb_graph)
            reb_update_seconds += perf_counter() - t0
        else:
            side, vertex = payload
            t0 = perf_counter()
            result = pmbc_online(
                reb_graph, side, vertex, UPDATE_TAU, UPDATE_TAU,
                bounds=reb_bounds,
            )
            reb_query_ms.append((perf_counter() - t0) * 1e3)
            reb_answers.append(result.num_edges if result is not None else 0)

    # -- differential checks (hard failures, smoke or not) ----------------
    if inc_answers != reb_answers:
        diverged = sum(
            1 for a, b in zip(inc_answers, reb_answers) if a != b
        )
        failures.append(
            f"incremental answers diverged from rebuild on "
            f"{diverged}/{len(inc_answers)} interleaved queries"
        )
    exact = compute_bounds(final_graph)
    for side in Side:
        if (
            final_bounds.z[side] != exact.z[side]
            or final_bounds.prefix[side] != exact.prefix[side]
            or final_bounds.suffix[side] != exact.suffix[side]
        ):
            failures.append(
                f"incremental bounds diverged from recomputed bounds "
                f"on the {side.value} layer"
            )
    if dynadj_bytes is not None:
        fresh = DynamicPackedAdjacency(final_graph).canonical_bytes()
        if dynadj_bytes != fresh:
            failures.append(
                "patched packed adjacency is not byte-identical to a "
                "fresh pack of the final graph"
            )
    if steady_repacks != 0:
        failures.append(
            f"{steady_repacks} re-pack(s) on the steady-state segment "
            "(expected 0: rewire churn stays inside the drift budget)"
        )

    inc_tput = num_updates / inc_update_seconds if inc_update_seconds else 0.0
    reb_tput = num_updates / reb_update_seconds if reb_update_seconds else 0.0
    speedup = inc_tput / reb_tput if reb_tput else None
    if smoke:
        if speedup is not None and speedup <= 1.0:
            failures.append(
                f"incremental maintenance (x{speedup:.2f}) does not beat "
                "per-batch rebuild"
            )
    elif speedup is not None and speedup < 10.0:
        failures.append(
            f"incremental maintenance x{speedup:.2f} below the 10x "
            "rebuild gate on the full temporal replay"
        )

    body = {
        "workload": {
            "dataset": dataset,
            "num_events": num_events,
            "num_updates": num_updates,
            "num_queries": len(inc_answers),
            "batch_size": UPDATE_BATCH,
            "query_every": UPDATE_QUERY_EVERY,
            "delete_fraction": UPDATE_DELETE_FRACTION,
            "rewire_fraction": 1.0,
            "tau": UPDATE_TAU,
            "seed": WORKLOAD_SEED,
            "warmup_batches": warmup_batches,
            "num_batches": len(batches),
        },
        "incremental": {
            "update_seconds": round(inc_update_seconds, 4),
            "updates_per_second": round(inc_tput, 1),
            "query": latency_stats(inc_query_ms),
            "cascade_vertices": cascade,
            "repacks_total": total_repacks,
            "repacks_steady_state": steady_repacks,
        },
        "rebuild": {
            "update_seconds": round(reb_update_seconds, 4),
            "updates_per_second": round(reb_tput, 1),
            "query": latency_stats(reb_query_ms),
        },
        "summary": {
            "speedup": round(speedup, 1) if speedup else None,
            "differential_ok": not any(
                "diverged" in f or "byte-identical" in f for f in failures
            ),
            "steady_state_repack_free": steady_repacks == 0,
        },
    }
    return body, failures


def git_commit() -> str:
    """``HEAD`` hash, with ``-dirty`` when the working tree has changes."""
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        return f"{head}-dirty" if status else head
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        choices=("kernel", "serve", "load", "update", "all"),
        default="kernel",
        help="which benchmark suite(s) to run (default: kernel)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick run with pass/fail gates (the CI benchmark-smoke mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_kernel.json",
        help="kernel-suite output path (default: repo-root BENCH_kernel.json)",
    )
    parser.add_argument(
        "--serve-out",
        type=Path,
        default=REPO_ROOT / "BENCH_serve.json",
        help="serve-suite output path (default: repo-root BENCH_serve.json)",
    )
    parser.add_argument(
        "--update-out",
        type=Path,
        default=REPO_ROOT / "BENCH_update.json",
        help="update-suite output path (default: repo-root BENCH_update.json)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of-N repeats per query (default: 5, smoke: 3)",
    )
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        help="restrict the kernel suite to these datasets",
    )
    args = parser.parse_args(argv)
    status = 0
    if args.suite in ("kernel", "all"):
        status = run_kernel_suite(args) or status
    if args.suite in ("serve", "all"):
        status = run_serve_suite(args) or status
    if args.suite in ("load", "all"):
        status = run_load_suite(args) or status
    if args.suite in ("update", "all"):
        status = run_update_suite(args) or status
    return status


def _merge_serve_snapshot(path: Path, section: str, body: dict) -> dict:
    """Merge one suite's ``section`` into the snapshot at ``path``.

    ``BENCH_serve.json`` is shared by the serve and load suites; each
    run refreshes its own section plus the commit/machine stamps and
    leaves the other suite's results in place.
    """
    try:
        snapshot = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, ValueError):
        snapshot = {}
    snapshot.update(
        schema=1,
        suite="serve",
        commit=git_commit(),
        created_unix=int(time.time()),
        machine={
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
    )
    snapshot[section] = body
    path.write_text(json.dumps(snapshot, indent=2) + "\n")
    return snapshot


def run_load_suite(args) -> int:
    """Run the open-loop load benchmark; merge into ``BENCH_serve.json``."""
    body, failures = bench_load(args.smoke)
    _merge_serve_snapshot(args.serve_out, "load", body)
    summary = body["summary"]
    print(
        f"load {LOAD_DATASET}: single {summary['single_qps'] or '?'} qps "
        f"vs sharded x{LOAD_SHARDS} {summary['sharded_qps'] or '?'} qps "
        f"(x{summary['speedup'] or '?'}) under p99<={LOAD_SLO_MS:g}ms",
        flush=True,
    )
    print(f"wrote {args.serve_out}")
    if args.smoke:
        if failures:
            for failure in failures:
                print(f"SMOKE FAIL (load): {failure}", file=sys.stderr)
            return 1
        print(
            "smoke ok: sharded async stack sustains at least the "
            "single-process baseline"
        )
    return 0


def run_update_suite(args) -> int:
    """Run the temporal-replay update benchmark; write ``BENCH_update.json``.

    Differential failures (answer/bound/byte divergence) and
    steady-state re-packs fail the run in *any* mode; the throughput
    gate is strictly-beats in smoke and 10x on the full replay.
    """
    body, failures = bench_update(args.smoke)
    snapshot = {
        "schema": 1,
        "suite": "update",
        "commit": git_commit(),
        "created_unix": int(time.time()),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        **body,
    }
    args.update_out.write_text(json.dumps(snapshot, indent=2) + "\n")
    summary = body["summary"]
    print(
        f"update {body['workload']['dataset']}: incremental "
        f"{body['incremental']['updates_per_second']:,.0f} upd/s vs rebuild "
        f"{body['rebuild']['updates_per_second']:,.0f} upd/s "
        f"(x{summary['speedup'] or '?'}), "
        f"steady-state repacks="
        f"{body['incremental']['repacks_steady_state']}, "
        f"differential {'ok' if summary['differential_ok'] else 'FAILED'}",
        flush=True,
    )
    print(f"wrote {args.update_out}")
    if failures:
        for failure in failures:
            print(f"UPDATE FAIL: {failure}", file=sys.stderr)
        return 1
    if args.smoke:
        print(
            "smoke ok: incremental maintenance beats rebuild, zero "
            "steady-state re-packs, differential identity holds"
        )
    return 0


def run_serve_suite(args) -> int:
    """Run the adaptive serve benchmark and write ``BENCH_serve.json``."""
    body, failures = bench_serve(args.smoke)
    try:
        previous = json.loads(args.serve_out.read_text())
    except (OSError, json.JSONDecodeError, ValueError):
        previous = {}
    snapshot = {
        "schema": 1,
        "suite": "serve",
        "commit": git_commit(),
        "created_unix": int(time.time()),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        **body,
    }
    if "load" in previous:
        snapshot["load"] = previous["load"]
    args.serve_out.write_text(json.dumps(snapshot, indent=2) + "\n")
    summary = body["summary"]
    print(
        f"serve {SERVE_DATASET}: cold head p50="
        f"{summary.get('cold_head_p50_ms', '?')}ms warm head p50="
        f"{summary.get('warm_head_p50_ms', '?')}ms "
        f"x{summary.get('head_speedup_p50', '?')} "
        f"(warm head {summary['head_fraction_warm']:.0%} of stream, "
        f"{body['adaptive']['builds']} builds, "
        f"{body['adaptive']['bytes']:,}/{body['adaptive']['budget_bytes']:,} "
        f"bytes)",
        flush=True,
    )
    print(f"wrote {args.serve_out}")
    if args.smoke:
        if failures:
            for failure in failures:
                print(f"SMOKE FAIL (serve): {failure}", file=sys.stderr)
            return 1
        print("smoke ok: warmed adaptive tier beats the cold path")
    return 0


def run_kernel_suite(args) -> int:
    """Run the kernel and batch suites and write ``BENCH_kernel.json``."""
    repeats = args.repeats or (3 if args.smoke else 5)

    graphs: dict[str, object] = {}
    bounds_cache: dict[str, object] = {}
    workloads: dict[str, list] = {}

    def graph_of(name):
        if name not in graphs:
            graphs[name] = load_dataset(name)
        return graphs[name]

    def bounds_of(name):
        if name not in bounds_cache:
            bounds_cache[name] = compute_bounds(graph_of(name))
        return bounds_cache[name]

    def workload_of(name):
        if name not in workloads:
            workloads[name] = top_degree_queries(
                graph_of(name),
                num_queries=NUM_QUERIES,
                pool_size=QUERY_POOL,
                seed=WORKLOAD_SEED,
            )
        return workloads[name]

    rows = []
    for suite, dataset, config, tau, with_bounds, objective in build_plan(
        args.smoke, args.datasets
    ):
        graph = graph_of(dataset)
        kernels, speedups = bench_case(
            graph,
            workload_of(dataset),
            tau,
            bounds_of(dataset) if with_bounds else None,
            repeats,
            objective,
        )
        rows.append(
            {
                "suite": suite,
                "dataset": dataset,
                "size_class": size_class(graph.num_edges),
                "config": config,
                "objective": objective,
                "kernels": kernels,
                **speedups,
            }
        )
        print(
            f"{suite} {dataset:14s} {config:12s} "
            f"set={kernels['set']['mean_ms']:.3f}ms "
            f"bitset={kernels['bitset']['mean_ms']:.3f}ms "
            f"words={kernels['words']['mean_ms']:.3f}ms "
            f"x{speedups['speedup_mean']:.2f} "
            f"(p50 x{speedups['speedup_p50']:.2f}, "
            f"words x{speedups['speedup_mean_words']:.2f})",
            flush=True,
        )

    batch_datasets = SMOKE_DATASETS if args.smoke else tuple(dataset_names())
    if args.datasets:
        batch_datasets = tuple(
            d for d in batch_datasets if d in args.datasets
        ) or tuple(args.datasets)
    num_batch = BATCH_SMOKE_QUERIES if args.smoke else BATCH_NUM_QUERIES
    batch_config = f"zipf tau={BATCH_TAUS[0]}/{BATCH_TAUS[1]}"
    for dataset in batch_datasets:
        graph = graph_of(dataset)
        requests = batch_requests(graph, num_batch)
        for kernel in PACKED_KERNELS:
            modes, speedups = bench_batch_case(
                graph, requests, bounds_of(dataset), kernel, repeats
            )
            rows.append(
                {
                    "suite": "batch",
                    "dataset": dataset,
                    "size_class": size_class(graph.num_edges),
                    "config": f"{batch_config} {kernel}",
                    "objective": "pmbc",
                    "kernel": kernel,
                    "modes": modes,
                    **speedups,
                }
            )
            print(
                f"batch {dataset:14s} {kernel:7s} "
                f"per-request={modes['per_request']['mean_ms']:.1f}ms "
                f"batched={modes['batched']['mean_ms']:.1f}ms "
                f"x{speedups['speedup_mean']:.2f} "
                f"(p50 x{speedups['speedup_p50']:.2f})",
                flush=True,
            )

    summary = {}
    for suite in ("fig6", "fig7", "balanced", "batch"):
        for label in ("small", "medium", "large"):
            selected = [
                r
                for r in rows
                if r["suite"] == suite and r["size_class"] == label
            ]
            if selected:
                summary[f"{suite}_{label}_median_speedup"] = round(
                    statistics.median(r["speedup_mean"] for r in selected),
                    3,
                )
                summary[f"{suite}_{label}_median_speedup_p50"] = round(
                    statistics.median(r["speedup_p50"] for r in selected),
                    3,
                )

    snapshot = {
        "schema": 1,
        "commit": git_commit(),
        "created_unix": int(time.time()),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "workload": {
            "num_queries": NUM_QUERIES,
            "query_pool": QUERY_POOL,
            "seed": WORKLOAD_SEED,
            "repeats": repeats,
            "timing": "per-query best-of-repeats",
            "batch": {
                "num_queries": num_batch,
                "exponent": BATCH_EXPONENT,
                "taus": list(BATCH_TAUS),
                "timing": "whole-stream totals over repeats",
            },
        },
        "results": rows,
        "summary": summary,
    }
    args.out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.smoke:
        # Balanced rows are differential-only: without the Lemma 9 size
        # bounds the packed kernels' edge is not guaranteed, so only the
        # pmbc-objective rows gate on speed.
        failed = False
        for r in rows:
            if r["objective"] != "pmbc":
                continue
            if r["suite"] == "batch":
                if r["speedup_mean"] < 1.0:
                    failed = True
                    print(
                        f"SMOKE FAIL: batched not faster than per-request "
                        f"on {r['dataset']} {r['config']} "
                        f"(x{r['speedup_mean']})",
                        file=sys.stderr,
                    )
                continue
            # Only bitset gates on speed: words trades per-query scan
            # latency for in-place mutation and only wins when reduction
            # loops dominate (batch rows, index builds), so its fig6
            # columns are reported head-to-head, not gated.
            if r["speedup_mean"] < 1.0:
                failed = True
                print(
                    f"SMOKE FAIL: bitset slower than set on "
                    f"{r['dataset']} {r['config']} (x{r['speedup_mean']})",
                    file=sys.stderr,
                )
        if failed:
            return 1
        print(
            "smoke ok: bitset >= set on every pmbc smoke config, "
            "batched beats per-request on every batch row; "
            "kernels agreed on every objective"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
