#!/usr/bin/env python
"""Emit ``BENCH_kernel.json``: a set-vs-bitset kernel latency snapshot.

Runs the Figure 6 / Figure 7 query workloads (same datasets, query
pools and τ settings as ``test_fig6_query_time.py`` and
``test_fig7_vary_tau.py``) once per compute kernel and writes a
machine-readable snapshot to the repository root: per (suite, dataset,
config) row, p50/p95/mean per-query latency for each kernel plus two
speedups of ``bitset`` over ``set`` — ``speedup_mean`` on the workload
mean (the Figure 6 protocol: the benchmark times the whole query sweep,
so heavy personalized queries dominate, which is exactly the regime the
bitset kernel targets) and ``speedup_p50`` on the median query (the
typical-query view; small two-hop subgraphs leave word-parallelism
little to chew on, so this is the kernel's worst case).  The summary
reports the median of each per size class; the headline metric is the
workload one.  Latencies are per-query best-of-N to keep the snapshot
stable on noisy machines.

Both kernels answer every query in the same process and the result
sizes are asserted equal — each snapshot doubles as a differential run.

``--smoke`` runs a two-dataset subset with fewer repeats and exits
non-zero unless the bitset kernel is at least as fast as the set
kernel on every smoke row (the CI benchmark-smoke gate).
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.workloads import top_degree_queries  # noqa: E402
from repro.core.online import pmbc_online  # noqa: E402
from repro.corenum.bounds import compute_bounds  # noqa: E402
from repro.datasets.zoo import (  # noqa: E402
    dataset_names,
    load_dataset,
    scalability_dataset_names,
)

#: Same workload scaling as benchmarks/conftest.py.
NUM_QUERIES = 20
QUERY_POOL = 50
WORKLOAD_SEED = 2022
TAU_FIG6 = 5
FIG7_TAUS = (2, 4, 6, 8, 10)
#: Dataset size classes by edge count (upper bound, class name).
SIZE_CLASSES = ((2000, "small"), (5000, "medium"), (float("inf"), "large"))

SMOKE_DATASETS = ("Writers", "StackOverflow")


def size_class(num_edges: int) -> str:
    """The size-class label for a dataset with ``num_edges`` edges."""
    for bound, label in SIZE_CLASSES:
        if num_edges < bound:
            return label
    raise AssertionError("unreachable")


def percentile(values: list[float], frac: float) -> float:
    """Nearest-rank percentile of an unsorted sample."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(frac * (len(ordered) - 1))))
    return ordered[rank]


def run_workload(graph, queries, tau, bounds, kernel, repeats):
    """Per-query best-of-``repeats`` latencies (ms) and answer sizes."""
    best = [float("inf")] * len(queries)
    sizes = [0] * len(queries)
    perf_counter = time.perf_counter
    for rep in range(repeats):
        for i, (side, q) in enumerate(queries):
            t0 = perf_counter()
            result = pmbc_online(
                graph, side, q, tau, tau, bounds=bounds, kernel=kernel
            )
            elapsed = (perf_counter() - t0) * 1e3
            if elapsed < best[i]:
                best[i] = elapsed
            if rep == 0:
                sizes[i] = result.num_edges if result is not None else 0
    return best, sizes


def latency_stats(latencies: list[float]) -> dict:
    return {
        "p50_ms": round(percentile(latencies, 0.50), 4),
        "p95_ms": round(percentile(latencies, 0.95), 4),
        "mean_ms": round(statistics.fmean(latencies), 4),
    }


def bench_case(graph, queries, tau, bounds, repeats):
    """One (dataset, config) row: both kernels, checked and timed."""
    kernels = {}
    sizes_by_kernel = {}
    for kernel in ("set", "bitset"):
        latencies, sizes = run_workload(
            graph, queries, tau, bounds, kernel, repeats
        )
        kernels[kernel] = latency_stats(latencies)
        sizes_by_kernel[kernel] = sizes
    if sizes_by_kernel["set"] != sizes_by_kernel["bitset"]:
        raise AssertionError(
            "kernel answers diverged — differential failure on this config"
        )
    speedups = {
        "speedup_mean": round(
            kernels["set"]["mean_ms"] / kernels["bitset"]["mean_ms"], 3
        ),
        "speedup_p50": round(
            kernels["set"]["p50_ms"] / kernels["bitset"]["p50_ms"], 3
        ),
    }
    return kernels, speedups


def build_plan(smoke: bool, only: list[str] | None):
    """The (suite, dataset, config, tau, with_bounds) rows to run."""
    plan = []
    fig6_datasets = SMOKE_DATASETS if smoke else tuple(dataset_names())
    if only:
        fig6_datasets = tuple(d for d in fig6_datasets if d in only) or tuple(
            only
        )
    for dataset in fig6_datasets:
        plan.append(("fig6", dataset, f"OL tau={TAU_FIG6}", TAU_FIG6, False))
        plan.append(("fig6", dataset, f"OL* tau={TAU_FIG6}", TAU_FIG6, True))
    if not smoke:
        for dataset in scalability_dataset_names():
            if only and dataset not in only:
                continue
            for tau in FIG7_TAUS:
                plan.append(
                    ("fig7", dataset, f"OL* tau={tau}", tau, True)
                )
    return plan


def git_commit() -> str:
    """``HEAD`` hash, with ``-dirty`` when the working tree has changes."""
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        return f"{head}-dirty" if status else head
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="two-dataset quick run; fail unless bitset >= set everywhere",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_kernel.json",
        help="output path (default: repo-root BENCH_kernel.json)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of-N repeats per query (default: 5, smoke: 3)",
    )
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        help="restrict to these datasets",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (3 if args.smoke else 5)

    graphs: dict[str, object] = {}
    bounds_cache: dict[str, object] = {}
    workloads: dict[str, list] = {}

    def graph_of(name):
        if name not in graphs:
            graphs[name] = load_dataset(name)
        return graphs[name]

    def bounds_of(name):
        if name not in bounds_cache:
            bounds_cache[name] = compute_bounds(graph_of(name))
        return bounds_cache[name]

    def workload_of(name):
        if name not in workloads:
            workloads[name] = top_degree_queries(
                graph_of(name),
                num_queries=NUM_QUERIES,
                pool_size=QUERY_POOL,
                seed=WORKLOAD_SEED,
            )
        return workloads[name]

    rows = []
    for suite, dataset, config, tau, with_bounds in build_plan(
        args.smoke, args.datasets
    ):
        graph = graph_of(dataset)
        kernels, speedups = bench_case(
            graph,
            workload_of(dataset),
            tau,
            bounds_of(dataset) if with_bounds else None,
            repeats,
        )
        rows.append(
            {
                "suite": suite,
                "dataset": dataset,
                "size_class": size_class(graph.num_edges),
                "config": config,
                "kernels": kernels,
                **speedups,
            }
        )
        print(
            f"{suite} {dataset:14s} {config:12s} "
            f"set={kernels['set']['mean_ms']:.3f}ms "
            f"bitset={kernels['bitset']['mean_ms']:.3f}ms "
            f"x{speedups['speedup_mean']:.2f} "
            f"(p50 x{speedups['speedup_p50']:.2f})",
            flush=True,
        )

    summary = {}
    for suite in ("fig6", "fig7"):
        for label in ("small", "medium", "large"):
            selected = [
                r
                for r in rows
                if r["suite"] == suite and r["size_class"] == label
            ]
            if selected:
                summary[f"{suite}_{label}_median_speedup"] = round(
                    statistics.median(r["speedup_mean"] for r in selected),
                    3,
                )
                summary[f"{suite}_{label}_median_speedup_p50"] = round(
                    statistics.median(r["speedup_p50"] for r in selected),
                    3,
                )

    snapshot = {
        "schema": 1,
        "commit": git_commit(),
        "created_unix": int(time.time()),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "workload": {
            "num_queries": NUM_QUERIES,
            "query_pool": QUERY_POOL,
            "seed": WORKLOAD_SEED,
            "repeats": repeats,
            "timing": "per-query best-of-repeats",
        },
        "results": rows,
        "summary": summary,
    }
    args.out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.smoke:
        slow = [r for r in rows if r["speedup_mean"] < 1.0]
        if slow:
            for r in slow:
                print(
                    f"SMOKE FAIL: bitset slower than set on "
                    f"{r['dataset']} {r['config']} (x{r['speedup_mean']})",
                    file=sys.stderr,
                )
            return 1
        print("smoke ok: bitset >= set on every smoke config")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
