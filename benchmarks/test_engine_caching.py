"""Query-engine caching benchmark (ours).

Positions :class:`repro.core.engine.PMBCQueryEngine` between the two
extremes the paper evaluates: repeated online queries that revisit
vertices should sit well below cold PMBC-OL* (two-hop extraction and
seeding amortized) while needing no index build.
"""

from __future__ import annotations

import pytest

from repro.core import PMBCQueryEngine, pmbc_online
from repro.bench.workloads import top_degree_queries

pytestmark = pytest.mark.benchmark(group="engine")

DATASET = "Github"
REPEATS = 3  # each query vertex revisited this many times


@pytest.fixture(scope="module")
def revisiting_workload(graphs):
    queries = top_degree_queries(graphs(DATASET), num_queries=8, seed=3)
    return [q for q in queries for __ in range(REPEATS)]


def test_cold_online(benchmark, graphs, all_bounds, revisiting_workload):
    graph = graphs(DATASET)
    bounds = all_bounds(DATASET)
    benchmark.pedantic(
        lambda: [
            pmbc_online(graph, side, q, 2, 2, bounds=bounds)
            for side, q in revisiting_workload
        ],
        rounds=2,
        iterations=1,
    )


def test_caching_engine(benchmark, graphs, revisiting_workload):
    graph = graphs(DATASET)

    def setup():
        return (PMBCQueryEngine(graph),), {}

    def run(engine):
        results = [
            engine.query(side, q, 2, 2) for side, q in revisiting_workload
        ]
        assert engine.cache_hits > 0
        return results

    results = benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    # Same answers as the cold path.
    cold = [
        pmbc_online(graph, side, q, 2, 2)
        for side, q in revisiting_workload
    ]
    for a, b in zip(results, cold):
        assert (a.num_edges if a else 0) == (b.num_edges if b else 0)
