"""Execution-substrate scaling benchmark (ours).

Two questions about :mod:`repro.exec`:

1. **Process vs thread throughput.**  The branch-and-bound is pure
   Python, so a thread pool saturates one core under the GIL while a
   process pool uses real cores.  With >=4 cores the process backend
   must clear a 2x throughput speedup on a parallel query sweep; on
   smaller hosts the assertion is skipped (the pool only adds IPC
   overhead there) and the measurement is still reported.

2. **Batch extraction sharing.**  On a Zipf-skewed stream with an LRU
   smaller than the working set, a per-query loop re-extracts evicted
   hub subgraphs, while ``query_batch`` groups by vertex and extracts
   each distinct vertex at most once.  The >=30% miss reduction is
   machine-independent (pure counter arithmetic) and asserted always.

Runs standalone too — CI uses ``python benchmarks/test_exec_scaling.py
--quick`` as a crash-only smoke on 2 cores::

    PYTHONPATH=src python benchmarks/test_exec_scaling.py [--quick]
"""

from __future__ import annotations

import os
import time

from repro.bench.workloads import zipf_queries
from repro.core.engine import PMBCQueryEngine
from repro.core.query import QueryRequest
from repro.datasets.zoo import load_dataset
from repro.exec import create_executor

DATASET = "Github"
TAU = 2
SMALL_CACHE = 4
MIN_CORES_FOR_SPEEDUP = 4

try:  # standalone mode has no pytest
    import pytest
except ImportError:  # pragma: no cover
    pytest = None

if pytest is not None:
    pytestmark = pytest.mark.benchmark(group="exec")


def _workload(graph, num_queries: int):
    return [
        QueryRequest(side, vertex, TAU, TAU)
        for side, vertex in zipf_queries(
            graph, num_queries=num_queries, exponent=1.1, seed=13
        )
    ]


def _sweep_seconds(kind: str, graph, requests, num_workers: int) -> float:
    with create_executor(kind, graph, num_workers=num_workers) as executor:
        start = time.perf_counter()
        executor.map("query", requests)
        return time.perf_counter() - start


def _measure_speedup(graph, requests, num_workers: int) -> dict:
    thread_s = _sweep_seconds("thread", graph, requests, num_workers)
    process_s = _sweep_seconds("process", graph, requests, num_workers)
    return {
        "queries": len(requests),
        "workers": num_workers,
        "cores": os.cpu_count() or 1,
        "thread_seconds": thread_s,
        "process_seconds": process_s,
        "speedup": thread_s / process_s if process_s else float("inf"),
    }


def _measure_batch_sharing(graph, requests) -> dict:
    loop_engine = PMBCQueryEngine(graph, cache_size=SMALL_CACHE)
    for request in requests:
        loop_engine.query(request)
    loop_misses = loop_engine.cache_stats().misses

    batch_engine = PMBCQueryEngine(graph, cache_size=SMALL_CACHE)
    batch_engine.query_batch(requests)
    batch_misses = batch_engine.cache_stats().misses

    distinct = len({(r.side, r.vertex) for r in requests})
    return {
        "queries": len(requests),
        "distinct_vertices": distinct,
        "loop_misses": loop_misses,
        "batch_misses": batch_misses,
        "reduction": 1 - batch_misses / loop_misses if loop_misses else 0.0,
    }


# ----------------------------------------------------------------------
# pytest entry points


def test_process_backend_speedup(benchmark):
    graph = load_dataset(DATASET)
    requests = _workload(graph, num_queries=120)
    workers = min(4, os.cpu_count() or 1)
    info = benchmark.pedantic(
        _measure_speedup,
        args=(graph, requests, workers),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(info)
    if (os.cpu_count() or 1) < MIN_CORES_FOR_SPEEDUP:
        pytest.skip(
            f"{os.cpu_count()} core(s): the 2x speedup target needs "
            f">={MIN_CORES_FOR_SPEEDUP}"
        )
    assert info["speedup"] >= 2.0, info


def test_batch_halves_two_hop_extractions(benchmark):
    graph = load_dataset(DATASET)
    requests = _workload(graph, num_queries=150)
    info = benchmark.pedantic(
        _measure_batch_sharing, args=(graph, requests), rounds=1, iterations=1
    )
    benchmark.extra_info.update(info)
    assert info["batch_misses"] <= info["distinct_vertices"]
    assert info["reduction"] >= 0.30, info


# ----------------------------------------------------------------------
# standalone mode (CI smoke: fails only on crash)


def main(quick: bool = False) -> int:
    graph = load_dataset(DATASET)
    queries = 40 if quick else 150
    requests = _workload(graph, num_queries=queries)
    workers = 2 if quick else min(4, os.cpu_count() or 1)

    speedup = _measure_speedup(graph, requests, workers)
    print(
        "exec sweep: {queries} queries x{workers} workers on "
        "{cores} core(s): thread {thread_seconds:.3f}s, "
        "process {process_seconds:.3f}s, speedup {speedup:.2f}x".format(
            **speedup
        )
    )

    sharing = _measure_batch_sharing(graph, requests)
    print(
        "batch sharing: {queries} Zipf queries, {distinct_vertices} "
        "distinct vertices, loop misses {loop_misses}, batch misses "
        "{batch_misses} ({reduction:.0%} fewer extractions)".format(**sharing)
    )
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workload, 2 workers"
    )
    raise SystemExit(main(parser.parse_args().quick))
