"""Workload sensitivity (ours) — does Fig 6's conclusion depend on the
query workload?

The paper samples queries from the top-500 degree vertices (the hard
case: hubs have the largest two-hop subgraphs).  This experiment
re-runs the Fig 6 comparison under three workloads — hub-biased
(paper's), uniform random, and low-degree — and checks that PMBC-IQ
dominates the online algorithm under all of them.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    low_degree_queries,
    top_degree_queries,
    uniform_queries,
)
from repro.core import pmbc_index_query, pmbc_online

pytestmark = pytest.mark.benchmark(group="workload-sensitivity")

DATASET = "YouTube"
TAU = 5


def _workload(graph, kind):
    if kind == "hubs":
        return top_degree_queries(graph, num_queries=15, seed=1)
    if kind == "uniform":
        return uniform_queries(graph, num_queries=15, seed=1)
    return low_degree_queries(graph, num_queries=15, seed=1)


@pytest.mark.parametrize("kind", ["hubs", "uniform", "low-degree"])
def test_online_under_workload(benchmark, kind, graphs, all_bounds):
    graph = graphs(DATASET)
    queries = _workload(graph, kind)
    bounds = all_bounds(DATASET)
    benchmark.pedantic(
        lambda: [
            pmbc_online(graph, side, q, TAU, TAU, bounds=bounds)
            for side, q in queries
        ],
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("kind", ["hubs", "uniform", "low-degree"])
def test_index_under_workload(benchmark, kind, graphs, star_indexes):
    graph = graphs(DATASET)
    queries = _workload(graph, kind)
    index = star_indexes(DATASET)
    benchmark.pedantic(
        lambda: [
            pmbc_index_query(index, side, q, TAU, TAU)
            for side, q in queries
        ],
        rounds=5,
        iterations=3,
    )
    # The index answers must still match the online path.
    for side, q in queries:
        a = pmbc_index_query(index, side, q, TAU, TAU)
        b = pmbc_online(graph, side, q, TAU, TAU)
        assert (a.num_edges if a else 0) == (b.num_edges if b else 0)
