"""Table III — index construction time and index size.

Paper setup: all 10 datasets; columns = PMBC-IC time, PMBC-IC* time,
|G|, |T|, |A|.  Expected shape: IC* ≤ IC everywhere with the largest
gaps on the biggest datasets; total index size a small multiple of the
graph size (paper: 3.5×–6.1×); the basic index of Section IV only
completes on the smallest dataset within its budget.
"""

from __future__ import annotations

import pytest

from repro.core import build_index, build_index_star, build_naive_index
from repro.core.naive_index import NaiveIndexTimeout
from repro.datasets.zoo import dataset_names

pytestmark = pytest.mark.benchmark(group="table3")

ALL_DATASETS = dataset_names()

#: Scaled-down analogue of the paper's 10^4 s algorithm timeout.
NAIVE_BUDGET_SECONDS = 20.0


def _graph_size_bytes(graph):
    """|G| under the same word model as the index sizes (CSR-ish)."""
    return (2 * graph.num_edges + graph.num_vertices) * 8


@pytest.mark.parametrize("dataset", ALL_DATASETS)
def test_build_ic(benchmark, dataset, graphs, all_bounds):
    graph = graphs(dataset)
    bounds = all_bounds(dataset)
    index = benchmark.pedantic(
        lambda: build_index(graph, bounds=bounds), rounds=1, iterations=1
    )
    benchmark.extra_info.update(index.stats())


@pytest.mark.parametrize("dataset", ALL_DATASETS)
def test_build_ic_star(benchmark, dataset, graphs, all_bounds):
    graph = graphs(dataset)
    bounds = all_bounds(dataset)
    index = benchmark.pedantic(
        lambda: build_index_star(graph, bounds=bounds),
        rounds=1,
        iterations=1,
    )
    stats = index.stats()
    benchmark.extra_info.update(stats)
    graph_bytes = _graph_size_bytes(graph)
    benchmark.extra_info["graph_size_bytes"] = graph_bytes
    # Paper: total index size is a small multiple of |G| (3.5x-6.1x on
    # the real datasets); allow a generous band at our reduced scale.
    ratio = stats["total_size_bytes"] / graph_bytes
    benchmark.extra_info["size_ratio"] = ratio
    assert ratio < 25


def test_naive_index_feasible_only_on_smallest(benchmark, graphs):
    """The basic index completes on Writers within the budget..."""
    graph = graphs("Writers")
    naive = benchmark.pedantic(
        lambda: build_naive_index(graph, time_budget=NAIVE_BUDGET_SECONDS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["size_bytes"] = naive.size_bytes()


@pytest.mark.parametrize("dataset", ["Wikipedia", "DBLP"])
def test_naive_index_times_out_on_large(benchmark, dataset, graphs):
    """...and exceeds it on the large datasets (paper: >10^4 s on all
    datasets except Writers)."""
    graph = graphs(dataset)
    budget = 2.0

    def run():
        with pytest.raises(NaiveIndexTimeout):
            build_naive_index(graph, time_budget=budget)
        return True

    assert benchmark.pedantic(run, rounds=1, iterations=1)
