"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package, so the
PEP 517 editable-install path is unavailable offline.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on modern toolchains via pyproject.toml) work.
"""

from setuptools import setup

setup()
