"""Soak test: a broad randomized cross-check on larger graphs.

Bigger and denser than the per-module oracle tests (12×12, up to ~60
edges) — sized so brute force is still exact but the search stack's
pruning machinery is genuinely exercised.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    build_index_star,
    pmbc_index_query,
    pmbc_online_star,
)
from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import Side
from repro.graph.generators import random_bipartite, with_planted_blocks
from repro.mbc.oracle import personalized_max_brute


@pytest.mark.parametrize("seed", range(6))
def test_index_and_online_match_oracle_on_denser_graphs(seed):
    rng = random.Random(seed)
    base = random_bipartite(
        12, 12, rng.uniform(0.2, 0.45), seed=seed
    ).without_isolated_vertices()
    if base.num_edges == 0:
        return
    blocks = [(rng.randint(3, 5), rng.randint(3, 5))]
    graph = with_planted_blocks(base, blocks, seed=seed + 1)
    bounds = compute_bounds(graph)
    index = build_index_star(graph, bounds=bounds)
    queries = [
        (side, rng.randrange(graph.num_vertices_on(side)))
        for side in Side
        for __ in range(4)
    ]
    for side, q in queries:
        if graph.degree(side, q) == 0:
            continue
        for tau_u, tau_l in ((1, 1), (2, 3), (3, 3), (4, 2)):
            expected = personalized_max_brute(graph, side, q, tau_u, tau_l)
            exp_size = (
                len(expected[0]) * len(expected[1]) if expected else 0
            )
            online = pmbc_online_star(
                graph, side, q, tau_u, tau_l, bounds=bounds
            )
            indexed = pmbc_index_query(index, side, q, tau_u, tau_l)
            assert (online.num_edges if online else 0) == exp_size
            assert (indexed.num_edges if indexed else 0) == exp_size
            if indexed:
                assert indexed.contains(side, q)
                assert indexed.is_valid_in(graph)
