"""Unit tests for the maximum vertex biclique algorithm."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.generators import complete_bipartite, random_bipartite, star
from repro.mbc.oracle import all_closed_bicliques
from repro.mvb import maximum_vertex_biclique


def _brute_vertex_max(graph):
    """Max |U|+|L| over two-sided bicliques, via closed pairs."""
    best = 0
    for upper, lower in all_closed_bicliques(graph):
        # (upper, lower) may not be vertex-maximal on the upper side;
        # closing it is: all uppers adjacent to every lower.
        full_upper = set(range(graph.num_upper))
        for v in lower:
            full_upper &= graph.neighbor_set(Side.LOWER, v)
        best = max(best, len(full_upper) + len(lower))
    return best


def test_complete_bipartite():
    result = maximum_vertex_biclique(complete_bipartite(3, 5))
    assert result.shape == (3, 5)


def test_star():
    result = maximum_vertex_biclique(star(6))
    assert result.shape == (1, 6)


def test_paper_graph(paper_graph):
    result = maximum_vertex_biclique(paper_graph)
    assert result.is_valid_in(paper_graph)
    assert len(result.upper) + len(result.lower) == _brute_vertex_max(
        paper_graph
    )


@pytest.mark.parametrize("seed", list(range(15)))
def test_matches_brute_force_random(seed):
    graph = random_bipartite(6, 6, 0.35 + (seed % 4) * 0.15, seed=seed)
    graph = graph.without_isolated_vertices()
    if graph.num_edges == 0:
        return
    result = maximum_vertex_biclique(graph)
    assert result is not None
    assert result.upper and result.lower
    assert result.is_valid_in(graph)
    assert len(result.upper) + len(result.lower) == _brute_vertex_max(graph)


def test_unconstrained_mode_may_return_one_sided():
    # A perfect matching's complement has a perfect matching too; the
    # unconstrained independent set can exceed any two-sided biclique.
    graph = BipartiteGraph([[0], [1], [2]], num_lower=3)
    unconstrained = maximum_vertex_biclique(graph, require_both_sides=False)
    assert len(unconstrained.upper) + len(unconstrained.lower) >= 3
    two_sided = maximum_vertex_biclique(graph)
    assert two_sided.upper and two_sided.lower
    assert len(two_sided.upper) + len(two_sided.lower) == 2
    assert two_sided.is_valid_in(graph)


def test_empty_layer():
    graph = BipartiteGraph([], num_lower=0)
    assert maximum_vertex_biclique(graph) is None


def test_size_guard():
    graph = complete_bipartite(3, 3)
    with pytest.raises(ValueError):
        maximum_vertex_biclique(graph, max_cells=4)
