"""Unit tests for Hopcroft–Karp and König covers."""

from __future__ import annotations

import random

from repro.mvb.matching import hopcroft_karp, konig_vertex_cover


def _brute_force_matching(adj, num_lower):
    """Exponential exact matching size for cross-checks."""
    best = 0
    num_upper = len(adj)

    def extend(u, used_lower, size):
        nonlocal best
        best = max(best, size)
        if u == num_upper:
            return
        extend(u + 1, used_lower, size)  # leave u unmatched
        for v in adj[u]:
            if v not in used_lower:
                extend(u + 1, used_lower | {v}, size + 1)

    extend(0, frozenset(), 0)
    return best


def test_perfect_matching_complete():
    adj = [[0, 1, 2], [0, 1, 2], [0, 1, 2]]
    size, match_upper, match_lower = hopcroft_karp(adj, 3)
    assert size == 3
    assert sorted(match_upper) == [0, 1, 2]
    assert all(match_lower[match_upper[u]] == u for u in range(3))


def test_no_edges():
    size, match_upper, match_lower = hopcroft_karp([[], []], 2)
    assert size == 0
    assert match_upper == [None, None]


def test_star_matching():
    adj = [[0, 1, 2, 3]]
    size, __, __ = hopcroft_karp(adj, 4)
    assert size == 1


def test_matching_matches_brute_force_random():
    rng = random.Random(3)
    for trial in range(30):
        num_upper = rng.randint(1, 6)
        num_lower = rng.randint(1, 6)
        adj = [
            sorted(
                v for v in range(num_lower) if rng.random() < 0.45
            )
            for __ in range(num_upper)
        ]
        size, match_upper, match_lower = hopcroft_karp(adj, num_lower)
        assert size == _brute_force_matching(adj, num_lower), (trial, adj)
        # Matching consistency.
        for u, v in enumerate(match_upper):
            if v is not None:
                assert v in adj[u]
                assert match_lower[v] == u


def test_konig_cover_is_minimum_and_covers():
    rng = random.Random(9)
    for trial in range(30):
        num_upper = rng.randint(1, 6)
        num_lower = rng.randint(1, 6)
        adj = [
            sorted(v for v in range(num_lower) if rng.random() < 0.5)
            for __ in range(num_upper)
        ]
        size, match_upper, match_lower = hopcroft_karp(adj, num_lower)
        cover_upper, cover_lower = konig_vertex_cover(
            adj, num_lower, match_upper, match_lower
        )
        # König: |cover| == matching size.
        assert len(cover_upper) + len(cover_lower) == size
        # Every edge is covered.
        for u, neighbors in enumerate(adj):
            for v in neighbors:
                assert u in cover_upper or v in cover_lower, (trial, u, v)
