"""Unit tests for the query workload generator."""

from __future__ import annotations

import pytest

from repro.bench.workloads import top_degree_queries
from repro.graph.bipartite import Side
from repro.graph.generators import random_bipartite


def test_queries_come_from_top_pool(medium_planted_graph):
    graph = medium_planted_graph
    queries = top_degree_queries(graph, num_queries=10, pool_size=20, seed=3)
    assert len(queries) == 10
    degrees = sorted(
        (
            graph.degree(side, v)
            for side in Side
            for v in range(graph.num_vertices_on(side))
        ),
        reverse=True,
    )
    threshold = degrees[19]
    for side, v in queries:
        assert graph.degree(side, v) >= threshold


def test_single_side_restriction(medium_planted_graph):
    queries = top_degree_queries(
        medium_planted_graph, num_queries=5, side=Side.LOWER, seed=1
    )
    assert all(side is Side.LOWER for side, __ in queries)


def test_deterministic_and_distinct(medium_planted_graph):
    a = top_degree_queries(medium_planted_graph, num_queries=8, seed=5)
    b = top_degree_queries(medium_planted_graph, num_queries=8, seed=5)
    c = top_degree_queries(medium_planted_graph, num_queries=8, seed=6)
    assert a == b
    assert a != c
    assert len(set(a)) == len(a)


def test_small_pool_returns_everything():
    graph = random_bipartite(3, 3, 1.0, seed=0)
    queries = top_degree_queries(graph, num_queries=50, pool_size=50)
    assert len(queries) == 6


def test_validation(paper_graph):
    with pytest.raises(ValueError):
        top_degree_queries(paper_graph, num_queries=0)
    with pytest.raises(ValueError):
        top_degree_queries(paper_graph, pool_size=0)


def test_uniform_queries(medium_planted_graph):
    from repro.bench.workloads import uniform_queries

    queries = uniform_queries(medium_planted_graph, num_queries=12, seed=4)
    assert len(queries) == 12
    assert len(set(queries)) == 12
    for side, v in queries:
        assert medium_planted_graph.degree(side, v) > 0
    assert queries == uniform_queries(
        medium_planted_graph, num_queries=12, seed=4
    )
    with pytest.raises(ValueError):
        uniform_queries(medium_planted_graph, num_queries=0)


def test_zipf_queries_skew_and_determinism(medium_planted_graph):
    from repro.bench.workloads import zipf_queries

    graph = medium_planted_graph
    stream = zipf_queries(graph, num_queries=300, exponent=1.2, seed=5)
    assert len(stream) == 300
    # A stream, not a sample: repeats must occur at this skew.
    assert len(set(stream)) < len(stream)
    for side, v in stream:
        assert graph.degree(side, v) > 0
    assert stream == zipf_queries(graph, num_queries=300, exponent=1.2, seed=5)
    # Heavier exponent concentrates more mass on the top vertex.
    from collections import Counter

    flat = Counter(zipf_queries(graph, 300, exponent=0.5, seed=5))
    steep = Counter(zipf_queries(graph, 300, exponent=2.5, seed=5))
    assert steep.most_common(1)[0][1] > flat.most_common(1)[0][1]
    with pytest.raises(ValueError):
        zipf_queries(graph, num_queries=0)
    with pytest.raises(ValueError):
        zipf_queries(graph, exponent=0)


def test_low_degree_queries(medium_planted_graph):
    from repro.bench.workloads import low_degree_queries, top_degree_queries

    graph = medium_planted_graph
    low = low_degree_queries(graph, num_queries=10, seed=2)
    high = top_degree_queries(graph, num_queries=10, seed=2)
    mean_low = sum(graph.degree(s, v) for s, v in low) / len(low)
    mean_high = sum(graph.degree(s, v) for s, v in high) / len(high)
    assert mean_low < mean_high
    with pytest.raises(ValueError):
        low_degree_queries(graph, pool_factor=0)
