"""Unit tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.bench.harness import save_results
from repro.bench.report import (
    fig6_markdown,
    fig8_markdown,
    full_report,
    table3_markdown,
)


@pytest.fixture(autouse=True)
def isolated_results(tmp_path, monkeypatch):
    monkeypatch.setenv("PMBC_RESULTS_DIR", str(tmp_path))


def test_missing_results_reported():
    assert fig6_markdown() is None
    assert "No results found" in full_report()


def test_fig6_table():
    save_results(
        "fig6_query_time",
        {
            "Writers": {
                "PMBC-OL_ms": 0.5,
                "PMBC-OL*_ms": 0.4,
                "PMBC-IQ_ms": 0.005,
            }
        },
    )
    out = fig6_markdown()
    assert "| Writers |" in out
    assert "100x" in out  # 0.5 / 0.005


def test_table3():
    save_results(
        "table3_index_build",
        {
            "Writers": {
                "IC_seconds": 0.3,
                "IC_star_seconds": 0.25,
                "graph_kb": 10.0,
                "tree_kb": 30.0,
                "array_kb": 10.0,
            },
            "basic_index": {"dataset": "Writers", "seconds": 2.0, "kb": 66.0},
        },
    )
    out = table3_markdown()
    assert "ratio" in out
    assert "| Writers |" in out
    assert "Basic index on Writers" in out
    assert "4" in out  # ratio (30+10)/10


def test_fig8_series():
    save_results(
        "fig8_parallel",
        {"DBLP": {"IC speedup": [1, 7, 14, 20, 25, 28, 30],
                  "IC* speedup": [1, 7, 13, 19, 24, 27, 29]}},
    )
    out = fig8_markdown()
    assert "Fig 8 (DBLP)" in out
    assert "| 48 |" in out


def test_full_report_concatenates():
    save_results(
        "fig6_query_time",
        {"X": {"PMBC-OL_ms": 1.0, "PMBC-OL*_ms": 0.9, "PMBC-IQ_ms": 0.01}},
    )
    out = full_report()
    assert "Fig 6" in out
    assert "Table III" not in out  # missing sections skipped
