"""Unit tests for the temporal-replay update-stream generator."""

from __future__ import annotations

import pytest

from repro.bench.workloads import temporal_replay
from repro.graph.bipartite import Side
from repro.graph.generators import random_bipartite


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(20, 16, 0.2, seed=9)


def test_deterministic_per_seed(graph):
    a = temporal_replay(graph, num_updates=120, seed=4)
    b = temporal_replay(graph, num_updates=120, seed=4)
    c = temporal_replay(graph, num_updates=120, seed=5)
    assert a == b
    assert a != c


def test_events_are_uniform_4tuples(graph):
    events = temporal_replay(graph, num_updates=80, query_every=10, seed=1)
    for position, event in enumerate(events):
        t, kind, a, b = event
        assert t == position
        if kind == "query":
            assert a in (Side.UPPER, Side.LOWER)
            assert isinstance(b, int)
        else:
            assert kind in ("insert", "delete")


def test_stream_is_replayable(graph):
    """Deletes always hit live edges; inserts always absent edges."""
    events = temporal_replay(
        graph, num_updates=300, delete_fraction=0.5, seed=2
    )
    live = set(graph.edges())
    updates = 0
    for __, kind, u, v in events:
        if kind == "query":
            continue
        updates += 1
        if kind == "insert":
            assert (u, v) not in live
            live.add((u, v))
        else:
            assert (u, v) in live
            live.discard((u, v))
    assert updates == 300


def test_queries_interleaved_at_cadence(graph):
    events = temporal_replay(graph, num_updates=100, query_every=20, seed=3)
    seen = 0
    queries = 0
    for __, kind, *_ in events:
        if kind == "query":
            queries += 1
            assert seen % 20 == 0
        else:
            seen += 1
    assert queries == 100 // 20


def test_no_queries_by_default(graph):
    events = temporal_replay(graph, num_updates=50, seed=1)
    assert all(kind != "query" for __, kind, *_ in events)


def test_pure_rewire_stays_in_original_edge_set(graph):
    """rewire_fraction=1.0 only ever re-inserts deleted edges."""
    original = set(graph.edges())
    events = temporal_replay(
        graph,
        num_updates=400,
        delete_fraction=0.5,
        rewire_fraction=1.0,
        seed=8,
    )
    for __, kind, u, v in events:
        if kind == "insert":
            assert (u, v) in original


def test_validation_errors(graph):
    with pytest.raises(ValueError):
        temporal_replay(graph, num_updates=0)
    with pytest.raises(ValueError):
        temporal_replay(graph, num_updates=10, delete_fraction=1.5)
    with pytest.raises(ValueError):
        temporal_replay(graph, num_updates=10, rewire_fraction=-0.1)
