"""Unit tests for timing helpers, result persistence and formatting."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    load_results,
    save_results,
    time_callable,
)
from repro.bench.tables import format_series, format_table


def test_time_callable_counts_and_returns():
    calls = []

    def fn():
        calls.append(1)
        return "x"

    timed = time_callable(fn, repeat=3)
    assert len(calls) == 3
    assert timed.result == "x"
    assert timed.seconds >= 0


def test_time_callable_validates():
    with pytest.raises(ValueError):
        time_callable(lambda: None, repeat=0)


def test_save_and_load_results(tmp_path, monkeypatch):
    monkeypatch.setenv("PMBC_RESULTS_DIR", str(tmp_path))
    payload = {"dataset": "Writers", "seconds": 0.5}
    path = save_results("unit_test_exp", payload)
    assert path.exists()
    assert load_results("unit_test_exp") == payload
    assert load_results("missing_exp") is None


def test_format_table_alignment():
    out = format_table(
        ["Dataset", "Time (s)"],
        [["Writers", 0.35], ["DBLP", 733.88]],
        title="Table III",
    )
    lines = out.splitlines()
    assert lines[0] == "Table III"
    assert "Dataset" in lines[1]
    assert "Writers" in lines[3]
    assert "733.88" in lines[4]


def test_format_table_small_floats_use_scientific():
    out = format_table(["x"], [[0.0000042]])
    assert "4.200e-06" in out


def test_format_series():
    out = format_series(
        "t",
        [1, 8, 16],
        {"IC": [10.0, 2.0, 1.2], "IC*": [5.0, 1.0, 0.7]},
        title="Fig 8",
    )
    lines = out.splitlines()
    assert lines[0] == "Fig 8"
    assert "IC*" in lines[1]
    assert len(lines) == 6
