"""Instrumentation tests: the search stack populates expected counters.

These tests run real queries under an active :class:`SearchTrace` and
assert (a) the trace captures the counters documented in
``docs/observability.md`` and (b) tracing never changes an answer.
"""

from __future__ import annotations

import pytest

from repro.core.construction import build_index
from repro.core.engine import PMBCQueryEngine
from repro.core.online import pmbc_online, pmbc_online_star
from repro.core.query import QueryRequest, pmbc_index_query
from repro.graph.bipartite import Side
from repro.obs import SearchTrace, use_trace


def _traced(fn, *args, **kwargs):
    trace = SearchTrace()
    with use_trace(trace):
        answer = fn(*args, **kwargs)
    return answer, trace


def _same_answer(a, b):
    if a is None or b is None:
        return a is b
    return a.shape == b.shape and a.num_edges == b.num_edges


# ----------------------------------------------------------------------
# online path


def test_online_populates_search_counters(paper_graph):
    answer, trace = _traced(
        pmbc_online, paper_graph, Side.UPPER, 0, tau_u=2, tau_l=2
    )
    assert answer is not None
    counters = trace.counters
    assert counters["twohop_extractions"] == 1
    assert counters["twohop_vertices"] > 0
    assert counters["twohop_edges"] > 0
    assert counters["progressive_rounds"] >= 1
    assert counters["bb_calls"] >= 1
    assert counters["bb_nodes"] >= 1
    assert len(trace.rounds) == counters["progressive_rounds"]
    names = [span["name"] for span in trace.spans]
    assert "two_hop_extract" in names
    assert "progressive_search" in names


def test_online_star_records_core_prunes(medium_planted_graph):
    answer, trace = _traced(
        pmbc_online_star, medium_planted_graph, Side.UPPER, 0, 2, 2
    )
    untraced = pmbc_online_star(medium_planted_graph, Side.UPPER, 0, 2, 2)
    assert _same_answer(answer, untraced)
    # The bigger planted graph must exercise at least one pruning rule.
    assert sum(trace.prunes.values()) > 0
    assert set(trace.prunes) <= {
        "core_z_bound",
        "core_suffix_bound",
        "core_prefix_bound",
        "tau_filter",
        "shape_cap",
        "non_maximal",
        "size_bound",
        "reduction",
    }


def test_rounds_record_floors_and_nodes(small_random_graph):
    __, trace = _traced(
        pmbc_online, small_random_graph, Side.UPPER, 0, tau_u=1, tau_l=1
    )
    assert trace.rounds
    for round_info in trace.rounds:
        assert round_info["tau_p"] >= 1
        assert round_info["tau_w"] >= 1
        assert round_info["nodes"] >= 0


@pytest.mark.parametrize("fn", [pmbc_online, pmbc_online_star])
def test_tracing_does_not_change_answers(skewed_graph, fn):
    for vertex in range(0, skewed_graph.num_upper, 9):
        untraced = fn(skewed_graph, Side.UPPER, vertex, 2, 2)
        traced, __ = _traced(fn, skewed_graph, Side.UPPER, vertex, 2, 2)
        assert _same_answer(traced, untraced)


# ----------------------------------------------------------------------
# engine path (two-hop cache)


def test_engine_counts_cache_hits_and_misses(paper_graph):
    engine = PMBCQueryEngine(paper_graph)
    request = QueryRequest(Side.UPPER, 0, 2, 2)
    first, trace_miss = _traced(engine.query, request)
    second, trace_hit = _traced(engine.query, request)
    assert _same_answer(first, second)
    assert trace_miss.counters.get("cache_misses") == 1
    assert "cache_hits" not in trace_miss.counters
    assert trace_hit.counters.get("cache_hits") == 1
    assert "cache_misses" not in trace_hit.counters
    # Only the miss pays for a two-hop extraction.
    assert trace_miss.counters["twohop_extractions"] == 1
    assert "twohop_extractions" not in trace_hit.counters


# ----------------------------------------------------------------------
# index path


def test_index_query_counts_tree_visits(paper_graph):
    index = build_index(paper_graph)
    answer, trace = _traced(
        pmbc_index_query, index, Side.UPPER, 0, 2, 2
    )
    untraced = pmbc_index_query(index, Side.UPPER, 0, 2, 2)
    assert _same_answer(answer, untraced)
    assert trace.counters["index_lookups"] == 1
    assert trace.counters["index_nodes_visited"] >= 1
    # The index walk never touches the B&B machinery.
    assert "bb_nodes" not in trace.counters


# ----------------------------------------------------------------------
# cross-kernel parity


KERNELS = ("set", "bitset", "words")


@pytest.mark.parametrize("query", [(Side.UPPER, 0), (Side.LOWER, 3)])
def test_kernels_count_identical_events(skewed_graph, query):
    """All compute kernels flush identical counters and prune tallies.

    The packed kernels must be observationally equivalent, not just
    answer-equivalent: ``bb_nodes``, the prune counters behind
    ``pmbc_prune_total{rule=...}``, and the per-round records must all
    match the set kernel event for event.
    """
    side, q = query
    per_kernel = {}
    for kernel in KERNELS:
        answer, trace = _traced(
            pmbc_online, skewed_graph, side, q, 2, 2, kernel=kernel
        )
        per_kernel[kernel] = (answer, trace)
    set_answer, set_trace = per_kernel["set"]
    for kernel in KERNELS[1:]:
        answer, trace = per_kernel[kernel]
        assert _same_answer(set_answer, answer), kernel
        assert set_trace.counters == trace.counters, kernel
        assert set_trace.prunes == trace.prunes, kernel
        assert set_trace.rounds == trace.rounds, kernel


def test_kernels_count_identical_events_with_bounds(medium_planted_graph):
    """Counter parity holds on the PMBC-OL* path (z-bound prunes live)."""
    per_kernel = {}
    for kernel in KERNELS:
        answer, trace = _traced(
            pmbc_online_star,
            medium_planted_graph,
            Side.UPPER,
            0,
            2,
            2,
            kernel=kernel,
        )
        per_kernel[kernel] = (answer, trace)
    set_answer, set_trace = per_kernel["set"]
    for kernel in KERNELS[1:]:
        answer, trace = per_kernel[kernel]
        assert _same_answer(set_answer, answer), kernel
        assert set_trace.counters == trace.counters, kernel
        assert set_trace.prunes == trace.prunes, kernel
        assert set_trace.rounds == trace.rounds, kernel
