"""Unit tests for :mod:`repro.obs`: trace, ring, render, metrics bridge."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NULL_TRACE,
    PRUNE_RULES,
    SearchTrace,
    TraceRing,
    current_trace,
    new_trace_id,
    publish_trace,
    register_search_metrics,
    render_trace,
    use_trace,
)
from repro.serve.metrics import MetricsRegistry

# ----------------------------------------------------------------------
# SearchTrace / NullTrace


def test_default_trace_is_null():
    trace = current_trace()
    assert trace is NULL_TRACE
    assert not trace.enabled
    # Every recording operation must be a harmless no-op.
    trace.add("bb_nodes", 10)
    trace.prune("size_bound", 5)
    trace.record_twohop(3, 4, 12)
    trace.add_round(tau_p=1)
    trace.annotate(backend="x")
    trace.merge_summary({"counters": {"bb_nodes": 1}})
    with trace.span("anything"):
        pass


def test_use_trace_installs_and_restores():
    trace = SearchTrace()
    assert current_trace() is NULL_TRACE
    with use_trace(trace):
        assert current_trace() is trace
        inner = SearchTrace()
        with use_trace(inner):
            assert current_trace() is inner
        assert current_trace() is trace
    assert current_trace() is NULL_TRACE


def test_use_trace_is_thread_local():
    trace = SearchTrace()
    seen: list[object] = []

    def probe():
        seen.append(current_trace())

    with use_trace(trace):
        worker = threading.Thread(target=probe)
        worker.start()
        worker.join()
    # A thread spawned inside the with-block gets a *copy* of the
    # context, so either outcome is fine as long as the main thread's
    # trace never leaks across an unrelated thread's installation.
    other = SearchTrace()

    def install_and_probe():
        with use_trace(other):
            seen.append(current_trace())

    worker = threading.Thread(target=install_and_probe)
    worker.start()
    worker.join()
    assert seen[-1] is other
    assert current_trace() is NULL_TRACE


def test_counters_and_prunes_accumulate():
    trace = SearchTrace()
    trace.add("bb_nodes", 3)
    trace.add("bb_nodes", 4)
    trace.add("ignored", 0)          # zero increments are dropped
    trace.prune("size_bound", 2)
    trace.prune("size_bound")
    trace.prune("shape_cap", 0)
    assert trace.counters == {"bb_nodes": 7}
    assert trace.prunes == {"size_bound": 3}


def test_record_twohop_accumulates():
    trace = SearchTrace()
    trace.record_twohop(3, 4, 10)
    trace.record_twohop(1, 2, 2)
    assert trace.counters["twohop_extractions"] == 2
    assert trace.counters["twohop_vertices"] == 10
    assert trace.counters["twohop_edges"] == 12


def test_span_records_timing():
    trace = SearchTrace()
    with trace.span("work"):
        pass
    assert len(trace.spans) == 1
    span = trace.spans[0]
    assert span["name"] == "work"
    assert span["ms"] >= 0.0


def test_to_dict_shape_and_trace_id():
    trace = SearchTrace(trace_id="abc123")
    trace.add("bb_calls")
    trace.annotate(backend="engine")
    summary = trace.to_dict()
    assert summary["trace_id"] == "abc123"
    assert summary["counters"] == {"bb_calls": 1}
    assert summary["meta"] == {"backend": "engine"}
    assert summary["elapsed_ms"] >= 0.0
    # to_dict snapshots; later mutation must not alias.
    trace.add("bb_calls")
    assert summary["counters"] == {"bb_calls": 1}


def test_generated_trace_ids_are_unique():
    ids = {new_trace_id() for __ in range(64)}
    assert len(ids) == 64
    assert all(len(i) == 12 for i in ids)


def test_merge_summary_adds_and_appends():
    trace = SearchTrace()
    trace.add("bb_nodes", 5)
    trace.annotate(backend="parent")
    trace.merge_summary(
        {
            "counters": {"bb_nodes": 7, "cache_hits": 1},
            "prunes": {"size_bound": 4},
            "rounds": [{"tau_p": 2}],
            "spans": [{"name": "remote", "ms": 1.0}],
            "meta": {"backend": "worker", "pool": "p1"},
        }
    )
    assert trace.counters["bb_nodes"] == 12
    assert trace.counters["cache_hits"] == 1
    assert trace.prunes == {"size_bound": 4}
    assert trace.rounds == [{"tau_p": 2}]
    assert trace.spans[-1]["name"] == "remote"
    # Existing meta wins; new keys are adopted.
    assert trace.meta["backend"] == "parent"
    assert trace.meta["pool"] == "p1"


def test_prune_rules_glossary_is_well_formed():
    assert PRUNE_RULES  # non-empty
    for rule, (anchor, description) in PRUNE_RULES.items():
        assert rule and isinstance(rule, str)
        assert isinstance(anchor, str)
        assert description


# ----------------------------------------------------------------------
# TraceRing


def test_ring_keeps_most_recent_first():
    ring = TraceRing(capacity=3)
    for i in range(5):
        ring.append({"trace_id": f"t{i}"})
    assert len(ring) == 3
    assert ring.total_recorded == 5
    assert [t["trace_id"] for t in ring.snapshot()] == ["t4", "t3", "t2"]
    assert [t["trace_id"] for t in ring.snapshot(limit=1)] == ["t4"]


def test_ring_find_by_id():
    ring = TraceRing(capacity=4)
    ring.append({"trace_id": "aa"})
    ring.append({"trace_id": "bb"})
    assert ring.find("aa") == {"trace_id": "aa"}
    assert ring.find("zz") is None


def test_ring_rejects_bad_capacity():
    with pytest.raises(ValueError):
        TraceRing(capacity=0)


# ----------------------------------------------------------------------
# render_trace


def _rich_summary():
    return {
        "trace_id": "deadbeef0000",
        "elapsed_ms": 3.25,
        "meta": {
            "backend": "engine",
            "query": {"side": "upper", "vertex": 3, "tau_u": 2, "tau_l": 2},
            "result": {"shape": [3, 4], "edges": 12},
        },
        "counters": {
            "twohop_extractions": 1,
            "twohop_upper": 10,
            "twohop_lower": 8,
            "twohop_vertices": 18,
            "twohop_edges": 40,
            "progressive_rounds": 2,
            "bb_calls": 2,
            "bb_nodes": 123,
        },
        "prunes": {"size_bound": 50, "core_z_bound": 9},
        "rounds": [
            {
                "tau_p": 2,
                "tau_w": 4,
                "working_upper": 6,
                "working_lower": 5,
                "nodes": 100,
                "best_size": 12,
            }
        ],
        "spans": [{"name": "two_hop_extract", "start_ms": 0.0, "ms": 0.5}],
    }


def test_render_trace_contains_all_sections():
    report = render_trace(_rich_summary())
    assert "trace deadbeef0000" in report
    assert "backend=engine" in report
    assert "vertex=3" in report
    assert "3x4 biclique, 12 edges" in report
    assert "|vertices|=18" in report
    assert "progressive-bounding rounds: 2" in report
    assert "Branch&Bound nodes expanded: 123" in report
    assert "size_bound" in report and "[incumbent]" in report
    assert "core_z_bound" in report and "[Lemma 9]" in report
    assert "two_hop_extract" in report


def test_render_trace_tolerates_minimal_summary():
    report = render_trace({"trace_id": "x"})
    assert "trace x" in report
    # No sections beyond the header for an empty trace.
    assert "pruning" not in report


def test_render_trace_none_result():
    summary = _rich_summary()
    summary["meta"]["result"] = None
    assert "result: none" in render_trace(summary)


# ----------------------------------------------------------------------
# metrics bridge


def test_register_search_metrics_pre_registers_series():
    registry = MetricsRegistry()
    register_search_metrics(registry)
    rendered = registry.render()
    for name in (
        "pmbc_search_nodes_total",
        "pmbc_prune_total",
        "pmbc_twohop_size",
        "pmbc_traces_total",
    ):
        assert name in rendered


def test_publish_trace_aggregates_counters():
    registry = MetricsRegistry()
    register_search_metrics(registry)
    summary = _rich_summary()
    publish_trace(summary, registry)
    publish_trace(summary, registry)
    assert registry.counter("pmbc_traces_total", "").total() == 2
    assert registry.counter("pmbc_search_nodes_total", "").total() == 246
    prune = registry.counter("pmbc_prune_total", "")
    assert prune.value(rule="size_bound", objective="pmbc") == 100
    assert prune.value(rule="core_z_bound", objective="pmbc") == 18
    rendered = registry.render()
    assert 'pmbc_prune_total{objective="pmbc",rule="size_bound"}' in rendered
    assert "pmbc_twohop_size_bucket" in rendered


def test_publish_trace_handles_empty_summary():
    registry = MetricsRegistry()
    register_search_metrics(registry)
    publish_trace({"trace_id": "x"}, registry)
    assert registry.counter("pmbc_traces_total", "").total() == 1
