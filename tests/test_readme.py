"""Guards against documentation bit-rot: README snippets must run."""

from __future__ import annotations

import re
from pathlib import Path

README = Path(__file__).resolve().parents[1] / "README.md"


def _python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_and_mentions_core_api():
    text = README.read_text()
    for token in (
        "pmbc_online",
        "build_index_star",
        "pmbc_index_query",
        "DESIGN.md",
        "EXPERIMENTS.md",
    ):
        assert token in text, token


def test_readme_quickstart_snippet_runs(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # index.save writes a file
    blocks = _python_blocks(README.read_text())
    assert blocks, "README has no python snippet"
    namespace: dict = {}
    for block in blocks:
        exec(compile(block, "<README>", "exec"), namespace)
    # The quickstart built a biclique and saved an index.
    assert (tmp_path / "index.json").exists()
