"""Unit tests for incremental (α,β)-core bound maintenance."""

from __future__ import annotations

import random

import pytest

from repro.corenum.bounds import compute_bounds
from repro.corenum.incremental import IncrementalCoreBounds
from repro.graph.bipartite import Side
from repro.graph.generators import power_law_bipartite, random_bipartite


def _churn(inc, graph, steps, seed, record=None):
    rng = random.Random(seed)
    live = set(graph.edges())
    for __ in range(steps):
        if live and rng.random() < 0.45:
            u, v = rng.choice(sorted(live))
            inc.delete_edge(u, v)
            live.discard((u, v))
        else:
            u = rng.randrange(graph.num_upper)
            v = rng.randrange(graph.num_lower)
            if (u, v) in live:
                continue
            inc.insert_edge(u, v)
            live.add((u, v))
        if record is not None:
            record.append(None)
    return live


@pytest.mark.parametrize(
    "graph",
    [
        random_bipartite(14, 11, 0.3, seed=1),
        power_law_bipartite(24, 18, 90, 1.6, seed=2),
    ],
    ids=["random", "power-law"],
)
def test_churn_matches_recompute(graph):
    inc = IncrementalCoreBounds(graph)
    _churn(inc, graph, 200, seed=6)
    inc.verify()
    exact = compute_bounds(inc.snapshot())
    for side in Side:
        assert inc.bounds.z[side] == exact.z[side]
        assert inc.bounds.prefix[side] == exact.prefix[side]
        assert inc.bounds.suffix[side] == exact.suffix[side]


def test_bounds_object_is_mutated_in_place():
    graph = random_bipartite(10, 8, 0.3, seed=3)
    inc = IncrementalCoreBounds(graph)
    bounds = inc.bounds
    _churn(inc, graph, 60, seed=4)
    assert inc.bounds is bounds


def test_noops_are_free_and_counted():
    graph = random_bipartite(10, 8, 0.4, seed=5)
    inc = IncrementalCoreBounds(graph)
    u, v = next(iter(graph.edges()))
    absent = next(
        (a, b)
        for a in range(graph.num_upper)
        for b in range(graph.num_lower)
        if not graph.has_edge(a, b)
    )
    before_z = {side: list(inc.bounds.z[side]) for side in Side}
    stats = inc.insert_edge(u, v)
    assert stats.cascade == 0 and stats.sweeps_repaired == 0
    stats = inc.delete_edge(*absent)
    assert stats.cascade == 0 and stats.sweeps_repaired == 0
    assert inc.noop_updates == 2
    for side in Side:
        assert inc.bounds.z[side] == before_z[side]


def test_delete_then_reinsert_restores_bounds():
    graph = random_bipartite(12, 9, 0.3, seed=7)
    inc = IncrementalCoreBounds(graph)
    want = {side: list(inc.bounds.z[side]) for side in Side}
    u, v = next(iter(graph.edges()))
    inc.delete_edge(u, v)
    inc.insert_edge(u, v)
    for side in Side:
        assert inc.bounds.z[side] == want[side]


def test_defer_refresh_equals_eager():
    graph = random_bipartite(14, 11, 0.3, seed=8)
    eager = IncrementalCoreBounds(graph)
    deferred = IncrementalCoreBounds(graph)
    ops = [("delete", *edge) for edge in list(graph.edges())[:5]]
    ops += [("insert", *ops[0][1:]), ("insert", *ops[2][1:])]
    for action, u, v in ops:
        getattr(eager, f"{action}_edge")(u, v)
    with deferred.defer_refresh():
        for action, u, v in ops:
            getattr(deferred, f"{action}_edge")(u, v)
    for side in Side:
        assert deferred.bounds.z[side] == eager.bounds.z[side]
        assert deferred.bounds.prefix[side] == eager.bounds.prefix[side]
        assert deferred.bounds.suffix[side] == eager.bounds.suffix[side]
    deferred.verify()


def test_defer_refresh_is_not_reentrant():
    graph = random_bipartite(6, 5, 0.4, seed=9)
    inc = IncrementalCoreBounds(graph)
    with inc.defer_refresh():
        with pytest.raises(RuntimeError):
            with inc.defer_refresh():
                pass


def test_cascade_cap_fallback_stays_correct():
    graph = power_law_bipartite(20, 16, 80, 1.5, seed=10)
    inc = IncrementalCoreBounds(graph, cascade_cap=1)
    _churn(inc, graph, 80, seed=11)
    assert inc.sweep_fallbacks > 0
    inc.verify()


def test_growth_extends_layers():
    graph = random_bipartite(8, 6, 0.3, seed=12)
    inc = IncrementalCoreBounds(graph)
    inc.insert_edge(graph.num_upper + 1, graph.num_lower + 2)
    snap = inc.snapshot()
    assert snap.num_upper == graph.num_upper + 2
    assert snap.num_lower == graph.num_lower + 3
    inc.verify()
