"""Unit tests for (α,β)-core peeling."""

from __future__ import annotations

import pytest

from repro.corenum.peeling import alpha_beta_core, max_delta
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.generators import complete_bipartite, star


def test_core_degree_conditions_hold(medium_planted_graph):
    graph = medium_planted_graph
    for alpha, beta in ((1, 1), (2, 2), (3, 2), (2, 4)):
        upper, lower = alpha_beta_core(graph, alpha, beta)
        for u in upper:
            inside = sum(1 for v in graph.neighbors(Side.UPPER, u) if v in lower)
            assert inside >= alpha
        for v in lower:
            inside = sum(1 for u in graph.neighbors(Side.LOWER, v) if u in upper)
            assert inside >= beta


def test_core_monotonicity(medium_planted_graph):
    graph = medium_planted_graph
    u1, l1 = alpha_beta_core(graph, 2, 2)
    u2, l2 = alpha_beta_core(graph, 3, 2)
    u3, l3 = alpha_beta_core(graph, 2, 3)
    assert u2 <= u1 and l2 <= l1
    assert u3 <= u1 and l3 <= l1


def test_core_of_complete_bipartite():
    graph = complete_bipartite(3, 4)
    upper, lower = alpha_beta_core(graph, 4, 3)
    assert upper == {0, 1, 2}
    assert lower == {0, 1, 2, 3}
    upper, lower = alpha_beta_core(graph, 5, 3)
    assert upper == set() and lower == set()


def test_core_of_star():
    graph = star(4)
    upper, lower = alpha_beta_core(graph, 1, 1)
    assert upper == {0}
    assert len(lower) == 4
    upper, lower = alpha_beta_core(graph, 2, 2)
    assert upper == set() and lower == set()


def test_one_one_core_drops_nothing_without_isolated(paper_graph):
    upper, lower = alpha_beta_core(paper_graph, 1, 1)
    assert len(upper) == paper_graph.num_upper
    assert len(lower) == paper_graph.num_lower


def test_invalid_parameters(paper_graph):
    with pytest.raises(ValueError):
        alpha_beta_core(paper_graph, 0, 1)
    with pytest.raises(ValueError):
        alpha_beta_core(paper_graph, 1, -1)


def test_max_delta_complete():
    assert max_delta(complete_bipartite(4, 4)) == 4
    assert max_delta(complete_bipartite(2, 7)) == 2
    assert max_delta(star(9)) == 1


def test_max_delta_empty():
    assert max_delta(BipartiteGraph([], num_lower=0)) == 0


def test_max_delta_matches_definition(paper_graph):
    delta = max_delta(paper_graph)
    upper, __ = alpha_beta_core(paper_graph, delta, delta)
    assert upper
    upper, __ = alpha_beta_core(paper_graph, delta + 1, delta + 1)
    assert not upper
