"""Unit tests for the Lemma 9 / prefix / suffix biclique-size bounds."""

from __future__ import annotations

import pytest

from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import Side
from repro.graph.generators import complete_bipartite, random_bipartite, star
from repro.mbc.oracle import all_closed_bicliques


def _check_bounds_dominate(graph):
    """Every bound must dominate every biclique it claims to cover.

    Closed bicliques dominate all bicliques in each constraint class,
    so checking against them is exhaustive (see oracle docstring).
    """
    bounds = compute_bounds(graph)
    for upper, lower in all_closed_bicliques(graph):
        size = len(upper) * len(lower)
        for side, members, own in (
            (Side.UPPER, upper, len(upper)),
            (Side.LOWER, lower, len(lower)),
        ):
            for x in members:
                assert bounds.z_bound(side, x) >= size
                assert bounds.own_side_at_most(side, x, own) >= size
                assert bounds.own_side_at_least(side, x, own) >= size
                # Looser constraints can only raise the bound.
                assert (
                    bounds.own_side_at_most(side, x, own + 1)
                    >= bounds.own_side_at_most(side, x, own)
                )
                assert (
                    bounds.own_side_at_least(side, x, own)
                    >= bounds.own_side_at_least(side, x, own + 1)
                )


@pytest.mark.parametrize("seed", [0, 1, 2, 5])
def test_bounds_dominate_random(seed):
    graph = random_bipartite(6, 7, 0.5, seed=seed)
    _check_bounds_dominate(graph)


def test_bounds_dominate_paper(paper_graph):
    _check_bounds_dominate(paper_graph)


def test_z_exact_on_complete_bipartite():
    graph = complete_bipartite(3, 4)
    bounds = compute_bounds(graph)
    for u in range(3):
        assert bounds.z_bound(Side.UPPER, u) == 12
    for v in range(4):
        assert bounds.z_bound(Side.LOWER, v) == 12


def test_z_exact_on_star():
    graph = star(6)
    bounds = compute_bounds(graph)
    assert bounds.z_bound(Side.UPPER, 0) == 6
    assert bounds.z_bound(Side.LOWER, 3) == 6


def test_prefix_bound_on_complete_bipartite():
    graph = complete_bipartite(3, 4)
    bounds = compute_bounds(graph)
    # Upper vertex with own-side (upper) count capped at 1: best is 1x4.
    assert bounds.own_side_at_most(Side.UPPER, 0, 1) == 4
    assert bounds.own_side_at_most(Side.UPPER, 0, 2) == 8
    assert bounds.own_side_at_most(Side.UPPER, 0, 3) == 12
    # Beyond the true layer size the constraint is inactive.
    assert bounds.own_side_at_most(Side.UPPER, 0, 10) == 12


def test_suffix_bound_on_complete_bipartite():
    graph = complete_bipartite(3, 4)
    bounds = compute_bounds(graph)
    assert bounds.own_side_at_least(Side.LOWER, 0, 4) == 12
    assert bounds.own_side_at_least(Side.LOWER, 0, 5) == 0
    assert bounds.own_side_at_least(Side.LOWER, 0, 1) == 12


def test_degenerate_inputs():
    graph = star(1)
    bounds = compute_bounds(graph)
    assert bounds.own_side_at_most(Side.UPPER, 0, 0) == 0
    assert bounds.own_side_at_least(Side.UPPER, 0, 0) == bounds.z_bound(
        Side.UPPER, 0
    )


def test_paper_example_z_values(paper_graph):
    """z bounds of the reconstructed Figure 2 graph (cf. Example 5).

    The paper's Figure 5 lists z values for its exact drawing; our
    reconstruction differs in one edge, so we assert the values
    computed against this graph's own brute-force maxima instead.
    """
    bounds = compute_bounds(paper_graph)
    best_per_vertex_upper = {}
    best_per_vertex_lower = {}
    for upper, lower in all_closed_bicliques(paper_graph):
        size = len(upper) * len(lower)
        for x in upper:
            best_per_vertex_upper[x] = max(best_per_vertex_upper.get(x, 0), size)
        for x in lower:
            best_per_vertex_lower[x] = max(best_per_vertex_lower.get(x, 0), size)
    for x, best in best_per_vertex_upper.items():
        assert bounds.z_bound(Side.UPPER, x) >= best
    for x, best in best_per_vertex_lower.items():
        assert bounds.z_bound(Side.LOWER, x) >= best
