"""Unit tests for the full bicore decomposition."""

from __future__ import annotations

import pytest

from repro.corenum.decomposition import decompose
from repro.corenum.peeling import alpha_beta_core
from repro.graph.bipartite import Side
from repro.graph.generators import (
    complete_bipartite,
    random_bipartite,
    star,
)


def _check_against_peeling(graph):
    """Every (α,β) membership reported must match direct peeling."""
    decomposition = decompose(graph)
    alpha_limit = graph.max_degree(Side.UPPER) + 1
    beta_limit = graph.max_degree(Side.LOWER) + 1
    for alpha in range(1, alpha_limit + 1):
        for beta in range(1, beta_limit + 1):
            upper, lower = alpha_beta_core(graph, alpha, beta)
            for side, members in ((Side.UPPER, upper), (Side.LOWER, lower)):
                for v in range(graph.num_vertices_on(side)):
                    assert decomposition.in_core(side, v, alpha, beta) == (
                        v in members
                    ), (side, v, alpha, beta)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_decomposition_matches_peeling_random(seed):
    graph = random_bipartite(6, 7, 0.45, seed=seed)
    _check_against_peeling(graph)


def test_decomposition_matches_peeling_paper(paper_graph):
    _check_against_peeling(paper_graph)


def test_decomposition_complete_bipartite():
    graph = complete_bipartite(3, 5)
    decomposition = decompose(graph)
    assert decomposition.delta == 3
    # Upper vertices: in (α,β)-core for α ≤ 5, β ≤ 3.
    assert decomposition.s_a(Side.UPPER, 0, 5) == 3
    assert decomposition.s_a(Side.UPPER, 0, 6) == 0
    assert decomposition.s_b(Side.UPPER, 0, 3) == 5
    assert decomposition.alpha_max(Side.UPPER, 0) == 5
    assert decomposition.beta_max(Side.UPPER, 0) == 3


def test_decomposition_star():
    graph = star(4)
    decomposition = decompose(graph)
    assert decomposition.delta == 1
    assert decomposition.s_a(Side.UPPER, 0, 4) == 1
    assert decomposition.s_a(Side.UPPER, 0, 1) == 1
    assert decomposition.s_b(Side.LOWER, 2, 1) == 4


def test_staircases_are_monotone(skewed_graph):
    decomposition = decompose(skewed_graph)
    for side in Side:
        for stairs in decomposition.alpha_stairs[side]:
            assert all(
                stairs[i] >= stairs[i + 1] for i in range(len(stairs) - 1)
            )
            assert all(value >= 1 for value in stairs)
        for stairs in decomposition.beta_stairs[side]:
            assert all(
                stairs[i] >= stairs[i + 1] for i in range(len(stairs) - 1)
            )


def test_offsets_reject_invalid_arguments(paper_graph):
    decomposition = decompose(paper_graph)
    with pytest.raises(ValueError):
        decomposition.s_a(Side.UPPER, 0, 0)
    with pytest.raises(ValueError):
        decomposition.s_b(Side.LOWER, 0, -1)


def test_staircase_inversion_consistency(skewed_graph):
    """alpha- and beta-indexed staircases describe the same region."""
    decomposition = decompose(skewed_graph)
    for side in Side:
        for v in range(skewed_graph.num_vertices_on(side)):
            a_max = decomposition.alpha_max(side, v)
            for alpha in range(1, a_max + 1):
                beta = decomposition.s_a(side, v, alpha)
                assert beta >= 1
                # The beta-indexed staircase must admit (alpha, beta).
                assert decomposition.s_b(side, v, beta) >= alpha
