"""Unit tests for synthetic generators."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import Side
from repro.graph.generators import (
    capped_power_law_bipartite,
    complete_bipartite,
    paper_example_graph,
    planted_biclique_graph,
    power_law_bipartite,
    random_bipartite,
    star,
    with_planted_blocks,
)


def test_capped_power_law_respects_caps():
    graph = capped_power_law_bipartite(
        200, 60, 800, cap_upper=5, cap_lower=30, seed=4
    )
    assert max(graph.degrees(Side.UPPER)) <= 5
    assert max(graph.degrees(Side.LOWER)) <= 30
    assert graph.degree_one_free()
    # Edge count close to target (stub collisions cost a little).
    assert graph.num_edges >= 0.8 * 800


def test_capped_power_law_determinism():
    a = capped_power_law_bipartite(50, 50, 200, seed=9)
    b = capped_power_law_bipartite(50, 50, 200, seed=9)
    c = capped_power_law_bipartite(50, 50, 200, seed=10)
    assert a == b
    assert a != c


def test_capped_power_law_validation():
    with pytest.raises(ValueError):
        capped_power_law_bipartite(0, 5, 10)
    with pytest.raises(ValueError):
        capped_power_law_bipartite(5, 5, 10, cap_upper=0)


def test_with_planted_blocks_adds_biclique():
    base = random_bipartite(20, 20, 0.05, seed=2).without_isolated_vertices()
    planted = with_planted_blocks(base, [(4, 5)], seed=3)
    assert planted.num_upper == base.num_upper
    assert planted.num_lower == base.num_lower
    assert planted.num_edges >= base.num_edges
    # Some 4 uppers now share 5 common neighbors.
    from repro.mbc import maximum_biclique

    best = maximum_biclique(planted, 4, 5)
    assert best is not None
    assert best.num_edges >= 20


def test_with_planted_blocks_validation(paper_graph):
    with pytest.raises(ValueError):
        with_planted_blocks(paper_graph, [(100, 2)])


def test_random_bipartite_determinism():
    g1 = random_bipartite(10, 12, 0.3, seed=5)
    g2 = random_bipartite(10, 12, 0.3, seed=5)
    g3 = random_bipartite(10, 12, 0.3, seed=6)
    assert g1 == g2
    assert g1 != g3


def test_random_bipartite_extremes():
    empty = random_bipartite(4, 4, 0.0, seed=1)
    assert empty.num_edges == 0
    full = random_bipartite(4, 4, 1.0, seed=1)
    assert full.num_edges == 16


def test_random_bipartite_validates_probability():
    with pytest.raises(ValueError):
        random_bipartite(2, 2, 1.5)


def test_power_law_bipartite_shape():
    graph = power_law_bipartite(50, 40, 200, exponent=1.5, seed=3)
    assert graph.num_edges <= 200
    assert graph.num_edges > 100  # collisions should not dominate
    assert graph.degree_one_free()
    # Determinism.
    assert graph == power_law_bipartite(50, 40, 200, exponent=1.5, seed=3)


def test_power_law_is_skewed():
    graph = power_law_bipartite(200, 200, 900, exponent=1.6, seed=9)
    degrees = sorted(graph.degrees(Side.UPPER), reverse=True)
    # The hub should be far above the median degree.
    assert degrees[0] >= 4 * degrees[len(degrees) // 2]


def test_power_law_validates_layers():
    with pytest.raises(ValueError):
        power_law_bipartite(0, 5, 10)


def test_planted_biclique_graph_contains_blocks():
    graph = planted_biclique_graph(
        30, 30, 60, planted=((5, 4),), seed=21
    )
    # Some 5 upper vertices must share 4 common lower neighbors.
    found = False
    for u in range(graph.num_upper):
        if graph.degree(Side.UPPER, u) < 4:
            continue
        # Count uppers whose neighborhood includes a popular 4-subset by
        # brute force over this small graph.
        for v_set in _four_subsets(graph.neighbors(Side.UPPER, u)):
            holders = [
                w
                for w in range(graph.num_upper)
                if v_set <= graph.neighbor_set(Side.UPPER, w)
            ]
            if len(holders) >= 5:
                found = True
                break
        if found:
            break
    assert found


def _four_subsets(neighbors):
    from itertools import combinations

    return [frozenset(c) for c in combinations(neighbors, 4)]


def test_planted_block_validation():
    with pytest.raises(ValueError):
        planted_biclique_graph(3, 3, 5, planted=((10, 2),))


def test_complete_bipartite_and_star():
    k = complete_bipartite(3, 4)
    assert k.num_edges == 12
    s = star(5)
    assert s.num_upper == 1
    assert s.num_lower == 5
    assert s.degree(Side.UPPER, 0) == 5


def test_paper_example_claims():
    graph = paper_example_graph()

    def u(name):
        return graph.vertex_by_label(Side.UPPER, name)

    def v(name):
        return graph.vertex_by_label(Side.LOWER, name)

    # {u1..u4} x {v1..v3} is a biclique.
    for un in ("u1", "u2", "u3", "u4"):
        for vn in ("v1", "v2", "v3"):
            assert graph.has_edge(u(un), v(vn))
    # {u1..u5} x {v1, v2} is a biclique.
    for un in ("u1", "u2", "u3", "u4", "u5"):
        for vn in ("v1", "v2"):
            assert graph.has_edge(u(un), v(vn))
    # {u5, u6, u7} x {v4, v5, v6} is a biclique.
    for un in ("u5", "u6", "u7"):
        for vn in ("v4", "v5", "v6"):
            assert graph.has_edge(u(un), v(vn))
    # {u1, u4} x {v1..v4} is a biclique (the (2x4) result of Example 3).
    for un in ("u1", "u4"):
        for vn in ("v1", "v2", "v3", "v4"):
            assert graph.has_edge(u(un), v(vn))
