"""Unit tests for graph statistics."""

from __future__ import annotations

from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.generators import complete_bipartite, star
from repro.graph.stats import graph_stats, wedge_count


def test_stats_of_complete_bipartite():
    stats = graph_stats(complete_bipartite(3, 4))
    assert stats.num_edges == 12
    assert stats.upper.min_degree == stats.upper.max_degree == 4
    assert stats.lower.mean_degree == 3
    assert stats.upper.hub_fraction == 1.0
    # Wedges through lowers: each lower has 3 uppers -> 3*2 = 6 each.
    assert stats.num_wedges_upper == 4 * 6


def test_stats_of_star():
    stats = graph_stats(star(5))
    assert stats.upper.max_degree == 5
    assert stats.lower.max_degree == 1
    assert stats.num_wedges_lower == 5 * 4  # through the center
    assert stats.num_wedges_upper == 0


def test_median_even_and_odd():
    graph = BipartiteGraph([[0], [0, 1], [0, 1, 2]], num_lower=3)
    stats = graph_stats(graph)
    assert stats.upper.median_degree == 2  # degrees 1,2,3
    graph = BipartiteGraph([[0], [0, 1]], num_lower=2)
    stats = graph_stats(graph)
    assert stats.upper.median_degree == 1.5


def test_empty_graph():
    stats = graph_stats(BipartiteGraph([], num_lower=0))
    assert stats.num_edges == 0
    assert stats.upper.num_vertices == 0
    assert stats.upper.mean_degree == 0.0


def test_wedge_count_matches_manual(paper_graph):
    manual = sum(
        d * (d - 1) for d in paper_graph.degrees(Side.LOWER)
    )
    assert wedge_count(paper_graph, Side.LOWER) == manual


def test_zoo_analogues_keep_hubs_proportionate():
    """The capped generator keeps hub fractions small — the property
    that makes the analogues faithful to the KONECT originals."""
    from repro.datasets.zoo import load_dataset

    for name in ("Writers", "Teams", "DBLP"):
        stats = graph_stats(load_dataset(name))
        assert stats.upper.hub_fraction <= 0.25
        assert stats.lower.hub_fraction <= 0.25
