"""Unit tests for induced / two-hop subgraphs and LocalGraph."""

from __future__ import annotations

from repro.graph.bipartite import Side
from repro.graph.subgraph import induced_subgraph, two_hop_subgraph


def u_id(graph, name):
    return graph.vertex_by_label(Side.UPPER, name)


def v_id(graph, name):
    return graph.vertex_by_label(Side.LOWER, name)


def test_induced_subgraph_basic(paper_graph):
    ids_u = [u_id(paper_graph, n) for n in ("u1", "u2")]
    ids_v = [v_id(paper_graph, n) for n in ("v1", "v2", "v3")]
    sub, upper_map, lower_map = induced_subgraph(paper_graph, ids_u, ids_v)
    assert sub.num_upper == 2
    assert sub.num_lower == 3
    assert sub.num_edges == 6  # u1, u2 both adjacent to v1..v3
    assert set(upper_map) == set(ids_u)
    assert set(lower_map) == set(ids_v)
    assert sub.label(Side.UPPER, upper_map[ids_u[0]]) == "u1"


def test_induced_subgraph_drops_outside_edges(paper_graph):
    ids_u = [u_id(paper_graph, "u1")]
    ids_v = [v_id(paper_graph, "v5")]  # u1 not adjacent to v5
    sub, __, __ = induced_subgraph(paper_graph, ids_u, ids_v)
    assert sub.num_edges == 0


def test_two_hop_subgraph_of_u1(paper_graph):
    q = u_id(paper_graph, "u1")
    local = two_hop_subgraph(paper_graph, Side.UPPER, q)
    # L(H_q) = N(u1) = {v1, v2, v3, v4}
    lower_names = {
        paper_graph.label(Side.LOWER, g) for g in local.lower_globals
    }
    assert lower_names == {"v1", "v2", "v3", "v4"}
    # U(H_q) = u1 plus every vertex sharing a neighbor with u1.
    upper_names = {
        paper_graph.label(Side.UPPER, g) for g in local.upper_globals
    }
    assert upper_names == {"u1", "u2", "u3", "u4", "u5", "u6", "u7"}
    assert local.q_local is not None
    assert local.upper_globals[local.q_local] == q
    assert local.upper_side is Side.UPPER


def test_two_hop_subgraph_query_on_lower_side(paper_graph):
    q = v_id(paper_graph, "v5")
    local = two_hop_subgraph(paper_graph, Side.LOWER, q)
    # q is oriented into the local upper layer.
    assert local.upper_side is Side.LOWER
    assert local.upper_globals[local.q_local] == q
    # N(v5) = {u5, u6, u7}.
    lower_names = {
        paper_graph.label(Side.UPPER, g) for g in local.lower_globals
    }
    assert lower_names == {"u5", "u6", "u7"}


def test_two_hop_adjacency_restricted(paper_graph):
    q = u_id(paper_graph, "u1")
    local = two_hop_subgraph(paper_graph, Side.UPPER, q)
    # u6's neighbors within H_q must only be v4 (v5, v6 not in N(u1)).
    u6_local = local.upper_globals.index(u_id(paper_graph, "u6"))
    v4_local = local.lower_globals.index(v_id(paper_graph, "v4"))
    assert local.adj_upper[u6_local] == {v4_local}


def test_local_graph_q_adjacent_to_all_lower(paper_graph):
    """The structural fact behind Lemma 1."""
    for name in ("u1", "u5", "u7"):
        q = u_id(paper_graph, name)
        local = two_hop_subgraph(paper_graph, Side.UPPER, q)
        assert local.adj_upper[local.q_local] == set(range(local.num_lower))


def test_local_graph_consistency(paper_graph):
    q = u_id(paper_graph, "u1")
    local = two_hop_subgraph(paper_graph, Side.UPPER, q)
    for u, neighbors in enumerate(local.adj_upper):
        for v in neighbors:
            assert u in local.adj_lower[v]
    assert local.num_edges == sum(len(ns) for ns in local.adj_lower)


def test_local_restrict(paper_graph):
    q = u_id(paper_graph, "u1")
    local = two_hop_subgraph(paper_graph, Side.UPPER, q)
    keep_upper = [local.q_local]
    keep_lower = list(range(local.num_lower))[:2]
    small = local.restrict(keep_upper, keep_lower)
    assert small.num_upper == 1
    assert small.num_lower == 2
    assert small.q_local == 0
    assert small.adj_upper[0] == {0, 1}
    # Dropping q clears the anchor.
    no_q = local.restrict([], keep_lower)
    assert no_q.q_local is None


def test_local_to_global_and_check_biclique(paper_graph):
    q = u_id(paper_graph, "u1")
    local = two_hop_subgraph(paper_graph, Side.UPPER, q)
    uppers = [local.q_local]
    lowers = list(local.adj_upper[local.q_local])
    assert local.check_biclique(uppers, lowers)
    side, upper_g, lower_g = local.to_global(uppers, lowers)
    assert side is Side.UPPER
    assert upper_g == frozenset({q})
    assert lower_g == frozenset(paper_graph.neighbors(Side.UPPER, q))
    # A non-biclique is rejected.
    u6_local = local.upper_globals.index(u_id(paper_graph, "u6"))
    assert not local.check_biclique([local.q_local, u6_local], lowers)
