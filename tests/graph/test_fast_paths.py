"""Fast-path invariants on the core graph types.

The incremental repair loops rely on two :class:`Side` fast paths
(identity hash, precomputed ``.other``) and the dynamic-adjacency
snapshot path relies on the trusted ``_from_sorted_rows`` constructor;
these tests pin their semantics.
"""

from __future__ import annotations

import pickle

from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.generators import random_bipartite


def test_side_other_is_precomputed():
    assert Side.UPPER.other is Side.LOWER
    assert Side.LOWER.other is Side.UPPER


def test_side_hash_is_identity_and_stable():
    assert hash(Side.UPPER) == object.__hash__(Side.UPPER)
    assert {Side.UPPER: 1, Side.LOWER: 2}[Side.UPPER] == 1
    assert len({Side.UPPER, Side.UPPER, Side.LOWER}) == 2


def test_side_survives_pickling():
    for side in Side:
        clone = pickle.loads(pickle.dumps(side))
        # Enum members are singletons even across pickling, so the
        # identity hash stays consistent with equality.
        assert clone is side
        assert hash(clone) == hash(side)
        assert clone.other is side.other


def test_from_sorted_rows_equals_normalizing_constructor():
    graph = random_bipartite(12, 9, 0.3, seed=21)
    upper = tuple(
        graph.neighbors(Side.UPPER, u) for u in range(graph.num_upper)
    )
    lower = tuple(
        graph.neighbors(Side.LOWER, v) for v in range(graph.num_lower)
    )
    trusted = BipartiteGraph._from_sorted_rows(upper, lower, graph.num_edges)
    assert trusted == graph
    assert trusted.num_edges == graph.num_edges
    assert trusted.num_upper == graph.num_upper
    assert trusted.num_lower == graph.num_lower
    for side in Side:
        for v in range(graph.num_vertices_on(side)):
            assert trusted.neighbors(side, v) == graph.neighbors(side, v)
            assert trusted.neighbor_set(side, v) == graph.neighbor_set(
                side, v
            )
    assert trusted.labels(Side.UPPER) is None
    assert trusted.label(Side.UPPER, 0) == 0
