"""Unit tests for KONECT / edge-list IO."""

from __future__ import annotations

import io

import pytest

from repro.graph.bipartite import Side
from repro.graph.io import (
    read_edge_list,
    read_konect,
    write_edge_list,
    write_konect,
)


def test_read_konect_basic():
    text = "% bip unweighted test\n% 3 2 2\n1 1\n1 2\n2 2\n"
    graph = read_konect(io.StringIO(text))
    assert graph.num_upper == 2
    assert graph.num_lower == 2
    assert graph.num_edges == 3


def test_read_konect_ignores_weights_and_blank_lines():
    text = "1 1 5 1111\n\n2 1 3\n"
    graph = read_konect(io.StringIO(text))
    assert graph.num_edges == 2


def test_read_konect_rejects_zero_based_ids():
    with pytest.raises(ValueError):
        read_konect(io.StringIO("0 1\n"))


def test_read_konect_rejects_single_column():
    with pytest.raises(ValueError):
        read_konect(io.StringIO("42\n"))


def test_konect_roundtrip(paper_graph, tmp_path):
    path = tmp_path / "out.test"
    write_konect(paper_graph, path)
    back = read_konect(path)
    assert back.num_edges == paper_graph.num_edges
    assert back.num_upper == paper_graph.num_upper
    assert back.num_lower == paper_graph.num_lower
    assert sorted(back.edges()) == sorted(paper_graph.edges())


def test_edge_list_roundtrip(paper_graph, tmp_path):
    path = tmp_path / "edges.txt"
    write_edge_list(paper_graph, path)
    back = read_edge_list(path)
    assert back.num_edges == paper_graph.num_edges
    # Labels survive the roundtrip.
    assert back.vertex_by_label(Side.UPPER, "u1") is not None


def test_graph_json_roundtrip(paper_graph, tmp_path):
    from repro.graph.io import load_graph_json, save_graph_json

    path = tmp_path / "graph.json"
    save_graph_json(paper_graph, path)
    back = load_graph_json(path)
    assert back == paper_graph
    assert back.label(Side.UPPER, 0) == "u1"


def test_graph_json_roundtrip_unlabeled(tmp_path):
    from repro.graph.bipartite import BipartiteGraph
    from repro.graph.io import load_graph_json, save_graph_json

    graph = BipartiteGraph([[0, 1], [1]], num_lower=2)
    path = tmp_path / "g.json"
    save_graph_json(graph, path)
    back = load_graph_json(path)
    assert back == graph
    assert back.labels(Side.UPPER) is None


def test_read_edge_list_comments_and_errors():
    graph = read_edge_list(io.StringIO("# header\na x\nb y\n"))
    assert graph.num_edges == 2
    with pytest.raises(ValueError):
        read_edge_list(io.StringIO("a x extra\n"))
