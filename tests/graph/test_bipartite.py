"""Unit tests for the BipartiteGraph data structure."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import BipartiteGraph, Side, Vertex


def test_empty_graph():
    graph = BipartiteGraph([], num_lower=0)
    assert graph.num_upper == 0
    assert graph.num_lower == 0
    assert graph.num_vertices == 0
    assert graph.num_edges == 0
    assert list(graph.edges()) == []
    assert graph.max_degree(Side.UPPER) == 0
    assert graph.degree_one_free()


def test_basic_adjacency():
    graph = BipartiteGraph([[0, 1], [1, 2], [2]], num_lower=3)
    assert graph.num_upper == 3
    assert graph.num_lower == 3
    assert graph.num_edges == 5
    assert graph.neighbors(Side.UPPER, 0) == (0, 1)
    assert graph.neighbors(Side.LOWER, 1) == (0, 1)
    assert graph.neighbors(Side.LOWER, 2) == (1, 2)
    assert graph.degree(Side.UPPER, 1) == 2
    assert graph.degree(Side.LOWER, 0) == 1


def test_duplicate_neighbors_collapse():
    graph = BipartiteGraph([[0, 0, 1, 1, 1]], num_lower=2)
    assert graph.num_edges == 2
    assert graph.neighbors(Side.UPPER, 0) == (0, 1)


def test_neighbors_are_sorted():
    graph = BipartiteGraph([[3, 1, 2, 0]], num_lower=4)
    assert graph.neighbors(Side.UPPER, 0) == (0, 1, 2, 3)


def test_out_of_range_neighbor_rejected():
    with pytest.raises(ValueError):
        BipartiteGraph([[5]], num_lower=3)
    with pytest.raises(ValueError):
        BipartiteGraph([[-1]], num_lower=3)


def test_num_lower_inferred():
    graph = BipartiteGraph([[0, 4]])
    assert graph.num_lower == 5
    assert graph.degree(Side.LOWER, 3) == 0


def test_has_edge_both_directions():
    graph = BipartiteGraph([[0, 1], [1]], num_lower=2)
    assert graph.has_edge(0, 0)
    assert graph.has_edge(0, 1)
    assert graph.has_edge(1, 1)
    assert not graph.has_edge(1, 0)


def test_neighbor_set_is_cached_and_consistent():
    graph = BipartiteGraph([[0, 2], [1]], num_lower=3)
    first = graph.neighbor_set(Side.UPPER, 0)
    assert first == frozenset({0, 2})
    assert graph.neighbor_set(Side.UPPER, 0) is first


def test_edges_iteration_matches_adjacency():
    graph = BipartiteGraph([[0, 1], [], [2]], num_lower=3)
    assert sorted(graph.edges()) == [(0, 0), (0, 1), (2, 2)]


def test_vertices_iteration():
    graph = BipartiteGraph([[0]], num_lower=2)
    verts = list(graph.vertices())
    assert verts == [
        Vertex(Side.UPPER, 0),
        Vertex(Side.LOWER, 0),
        Vertex(Side.LOWER, 1),
    ]


def test_max_degree_and_degrees():
    graph = BipartiteGraph([[0, 1, 2], [0]], num_lower=3)
    assert graph.max_degree(Side.UPPER) == 3
    assert graph.max_degree(Side.LOWER) == 2
    assert graph.degrees(Side.UPPER) == [3, 1]
    assert graph.degrees(Side.LOWER) == [2, 1, 1]


def test_labels_roundtrip():
    graph = BipartiteGraph(
        [[0], [1]],
        num_lower=2,
        upper_labels=["alice", "bob"],
        lower_labels=["x", "y"],
    )
    assert graph.label(Side.UPPER, 0) == "alice"
    assert graph.label(Side.LOWER, 1) == "y"
    assert graph.vertex_by_label(Side.UPPER, "bob") == 1
    assert graph.vertex_by_label(Side.LOWER, "x") == 0
    with pytest.raises(KeyError):
        graph.vertex_by_label(Side.UPPER, "carol")


def test_unlabeled_vertex_by_label_accepts_ids():
    graph = BipartiteGraph([[0]], num_lower=1)
    assert graph.vertex_by_label(Side.UPPER, 0) == 0
    with pytest.raises(KeyError):
        graph.vertex_by_label(Side.UPPER, 3)


def test_label_length_validation():
    with pytest.raises(ValueError):
        BipartiteGraph([[0]], num_lower=1, upper_labels=["a", "b"])


def test_without_isolated_vertices():
    graph = BipartiteGraph(
        [[0], []],
        num_lower=3,
        upper_labels=["keep", "drop"],
        lower_labels=["a", "b", "c"],
    )
    cleaned = graph.without_isolated_vertices()
    assert cleaned.num_upper == 1
    assert cleaned.num_lower == 1
    assert cleaned.label(Side.UPPER, 0) == "keep"
    assert cleaned.label(Side.LOWER, 0) == "a"
    assert cleaned.degree_one_free()


def test_side_other():
    assert Side.UPPER.other is Side.LOWER
    assert Side.LOWER.other is Side.UPPER


def test_equality_and_repr():
    g1 = BipartiteGraph([[0]], num_lower=1)
    g2 = BipartiteGraph([[0]], num_lower=1)
    g3 = BipartiteGraph([[0], [0]], num_lower=1)
    assert g1 == g2
    assert g1 != g3
    assert "BipartiteGraph" in repr(g1)


def test_paper_graph_shape(paper_graph):
    assert paper_graph.num_upper == 7
    assert paper_graph.num_lower == 6
    assert paper_graph.num_edges == 25
    u1 = paper_graph.vertex_by_label(Side.UPPER, "u1")
    assert paper_graph.degree(Side.UPPER, u1) == 4
