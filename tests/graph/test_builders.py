"""Unit tests for graph builders."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import Side
from repro.graph.builders import (
    from_biadjacency,
    from_edges,
    from_networkx,
    to_networkx,
)


def test_from_edges_first_seen_order():
    graph = from_edges([("b", "x"), ("a", "x"), ("b", "y")])
    assert graph.num_upper == 2
    assert graph.num_lower == 2
    assert graph.label(Side.UPPER, 0) == "b"
    assert graph.label(Side.UPPER, 1) == "a"
    assert graph.num_edges == 3


def test_from_edges_duplicate_edges_collapse():
    graph = from_edges([("a", "x"), ("a", "x")])
    assert graph.num_edges == 1


def test_from_edges_with_fixed_labels():
    graph = from_edges(
        [("a", "x")],
        upper_labels=["a", "b"],
        lower_labels=["x", "y", "z"],
    )
    assert graph.num_upper == 2
    assert graph.num_lower == 3
    assert graph.degree(Side.UPPER, 1) == 0


def test_from_edges_unknown_label_rejected():
    with pytest.raises(KeyError):
        from_edges([("c", "x")], upper_labels=["a", "b"])
    with pytest.raises(KeyError):
        from_edges([("a", "w")], lower_labels=["x"])


def test_from_edges_duplicate_fixed_labels_rejected():
    with pytest.raises(ValueError):
        from_edges([], upper_labels=["a", "a"])


def test_from_biadjacency():
    graph = from_biadjacency([[1, 0, 1], [0, 1, 0]])
    assert graph.num_upper == 2
    assert graph.num_lower == 3
    assert sorted(graph.edges()) == [(0, 0), (0, 2), (1, 1)]


def test_from_biadjacency_numpy():
    numpy = pytest.importorskip("numpy")
    matrix = numpy.array([[1, 1], [0, 1]])
    graph = from_biadjacency(matrix)
    assert graph.num_edges == 3


def test_to_biadjacency_roundtrip(paper_graph):
    numpy = pytest.importorskip("numpy")
    from repro.graph.builders import to_biadjacency

    matrix = to_biadjacency(paper_graph)
    assert matrix.shape == (paper_graph.num_upper, paper_graph.num_lower)
    assert int(matrix.sum()) == paper_graph.num_edges
    back = from_biadjacency(matrix)
    assert sorted(back.edges()) == sorted(paper_graph.edges())


def test_networkx_roundtrip(paper_graph):
    nx_graph = to_networkx(paper_graph)
    assert nx_graph.number_of_nodes() == paper_graph.num_vertices
    assert nx_graph.number_of_edges() == paper_graph.num_edges
    back = from_networkx(nx_graph)
    assert back.num_edges == paper_graph.num_edges
    assert back.num_upper == paper_graph.num_upper


def test_from_networkx_rejects_same_layer_edge():
    nx = pytest.importorskip("networkx")
    nx_graph = nx.Graph()
    nx_graph.add_edge("a", "b")
    with pytest.raises(ValueError):
        from_networkx(nx_graph, upper_nodes=["a", "b"])
    with pytest.raises(ValueError):
        from_networkx(nx_graph, upper_nodes=[])


def test_from_networkx_requires_bipartite_attribute():
    nx = pytest.importorskip("networkx")
    nx_graph = nx.Graph()
    nx_graph.add_edge("a", "x")
    with pytest.raises(ValueError):
        from_networkx(nx_graph)
