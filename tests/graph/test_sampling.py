"""Unit tests for edge sampling (Fig 9 workload)."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import Side
from repro.graph.sampling import sample_edges


def test_full_fraction_preserves_edges(paper_graph):
    sampled = sample_edges(paper_graph, 1.0)
    assert sampled.num_edges == paper_graph.num_edges


def test_sampled_edge_count(medium_planted_graph):
    sampled = sample_edges(medium_planted_graph, 0.5, seed=1)
    expected = round(0.5 * medium_planted_graph.num_edges)
    assert sampled.num_edges == expected


def test_sampled_edges_are_subset(paper_graph):
    sampled = sample_edges(paper_graph, 0.4, seed=2)
    original = {
        (paper_graph.label(Side.UPPER, u), paper_graph.label(Side.LOWER, v))
        for u, v in paper_graph.edges()
    }
    for u, v in sampled.edges():
        key = (sampled.label(Side.UPPER, u), sampled.label(Side.LOWER, v))
        assert key in original


def test_no_isolated_vertices(medium_planted_graph):
    sampled = sample_edges(medium_planted_graph, 0.2, seed=3)
    assert sampled.degree_one_free()


def test_determinism(medium_planted_graph):
    s1 = sample_edges(medium_planted_graph, 0.3, seed=9)
    s2 = sample_edges(medium_planted_graph, 0.3, seed=9)
    assert s1 == s2


def test_invalid_fraction(paper_graph):
    with pytest.raises(ValueError):
        sample_edges(paper_graph, 0.0)
    with pytest.raises(ValueError):
        sample_edges(paper_graph, 1.2)
