"""Documentation gate: docstring coverage and executable doc examples.

Mirrors the CI gate locally (CI additionally runs ``ruff check
--select D1`` over the same packages; ruff is not installed in every
dev environment, so this test re-implements the D1xx subset with
``ast`` — missing docstrings on public modules, classes, and
functions/methods fail here first).
"""

from __future__ import annotations

import ast
import doctest
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: Packages whose public surface must be fully documented (ruff D1xx).
DOCUMENTED_PACKAGES = ("core", "serve", "obs", "adaptive")


def _documented_files():
    for pkg in DOCUMENTED_PACKAGES:
        yield from sorted((SRC / pkg).rglob("*.py"))


def _missing_docstrings(path: Path) -> list[str]:
    tree = ast.parse(path.read_text())
    rel = path.relative_to(REPO)
    missing: list[str] = []
    if not ast.get_docstring(tree):
        missing.append(f"{rel}:1 undocumented public module (D100)")

    def walk(node: ast.AST, prefix: str = "") -> None:
        for child in ast.iter_child_nodes(node):
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if child.name.startswith("_"):
                continue  # private: D1xx does not apply
            qualname = prefix + child.name
            if not ast.get_docstring(child):
                kind = (
                    "class (D101)"
                    if isinstance(child, ast.ClassDef)
                    else "function/method (D102/D103)"
                )
                missing.append(
                    f"{rel}:{child.lineno} undocumented public "
                    f"{kind}: {qualname}"
                )
            if isinstance(child, ast.ClassDef):
                walk(child, qualname + ".")

    walk(tree)
    return missing


@pytest.mark.parametrize(
    "path", list(_documented_files()), ids=lambda p: str(p.relative_to(SRC))
)
def test_public_api_is_documented(path):
    missing = _missing_docstrings(path)
    assert not missing, "\n".join(missing)


def test_api_guide_examples_run():
    """Every ``>>>`` example in docs/api.md executes and matches."""
    results = doctest.testfile(
        str(REPO / "docs" / "api.md"),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0, "docs/api.md lost its doctest examples"
    assert results.failed == 0
