"""Unit tests for the ``pmbc update`` command."""

from __future__ import annotations

import json

import pytest

from repro.cli import _parse_update_op, main
from repro.graph.bipartite import Side
from repro.graph.generators import paper_example_graph
from repro.serve import PMBCServer, PMBCService


def test_parse_update_op_forms():
    assert _parse_update_op("insert:3:5") == ("insert", 3, 5)
    assert _parse_update_op("delete:0:1") == ("delete", 0, 1)
    assert _parse_update_op("+3:5") == ("insert", 3, 5)
    assert _parse_update_op("-0:1") == ("delete", 0, 1)


@pytest.mark.parametrize(
    "token",
    ["upsert:1:2", "insert:1", "insert:a:2", "insert:1:2:3", "", "3:5"],
)
def test_parse_update_op_rejects(token):
    with pytest.raises(ValueError):
        _parse_update_op(token)


@pytest.fixture
def server():
    srv = PMBCServer(PMBCService(paper_example_graph()).start(), port=0)
    srv.start()
    try:
        yield srv
    finally:
        srv.shutdown()


def _missing_edge(graph):
    return next(
        (u, v)
        for u in range(graph.num_upper)
        for v in range(graph.num_lower)
        if not graph.has_edge(u, v)
    )


def test_update_command_applies_ops(server, capsys):
    u, v = _missing_edge(server.service.graph)
    code = main(["update", "--url", server.url, f"insert:{u}:{v}"])
    assert code == 0
    out = capsys.readouterr().out
    assert "applied 1" in out
    assert server.service.graph.has_edge(u, v)


def test_update_command_json_output(server, capsys):
    u = 0
    v = server.service.graph.neighbors(Side.UPPER, u)[0]
    code = main(
        ["update", "--url", server.url, "--json", f"delete:{u}:{v}"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["applied"] == 1
    assert payload["deletes"] == 1


def test_update_command_ops_file(server, tmp_path, capsys):
    graph = server.service.graph
    u, v = _missing_edge(graph)
    path = tmp_path / "ops.txt"
    path.write_text(
        f"# comment line\ninsert {u} {v}\ndelete {u} {v}\n"
    )
    code = main(["update", "--url", server.url, "--file", str(path)])
    assert code == 0
    assert "applied 0" in capsys.readouterr().out  # net no-op batch


def test_update_command_bad_token_exits_2(server, capsys):
    assert main(["update", "--url", server.url, "upsert:1:2"]) == 2


def test_update_command_no_ops_exits_2(server, capsys):
    assert main(["update", "--url", server.url]) == 2


def test_update_command_unreachable_server_exits_1(capsys):
    code = main(
        [
            "update",
            "--url",
            "http://127.0.0.1:9",
            "--timeout",
            "1",
            "insert:0:1",
        ]
    )
    assert code == 1
