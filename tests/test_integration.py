"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import pytest

from repro import (
    Side,
    build_index,
    build_index_parallel,
    build_index_star,
    build_naive_index,
    pmbc_index_query,
    pmbc_online,
    pmbc_online_star,
)
from repro.bench.workloads import top_degree_queries
from repro.core.index import PMBCIndex
from repro.corenum.bounds import compute_bounds
from repro.datasets.zoo import load_dataset
from repro.mbe import personalized_max_from_enumeration


@pytest.fixture(scope="module")
def writers():
    return load_dataset("Writers")


@pytest.fixture(scope="module")
def writers_bounds(writers):
    return compute_bounds(writers)


@pytest.fixture(scope="module")
def writers_index(writers, writers_bounds):
    return build_index_star(writers, bounds=writers_bounds)


def test_all_query_paths_agree_on_zoo_dataset(
    writers, writers_bounds, writers_index
):
    """PMBC-OL, PMBC-OL*, PMBC-IQ and the naive index agree everywhere."""
    naive = build_naive_index(writers, bounds=writers_bounds, time_budget=60)
    queries = top_degree_queries(writers, num_queries=8, seed=7)
    for side, q in queries:
        for tau_u, tau_l in ((1, 1), (2, 2), (3, 3), (5, 2)):
            online = pmbc_online(writers, side, q, tau_u, tau_l)
            star = pmbc_online_star(
                writers, side, q, tau_u, tau_l, bounds=writers_bounds
            )
            indexed = pmbc_index_query(writers_index, side, q, tau_u, tau_l)
            basic = naive.query(side, q, tau_u, tau_l)
            sizes = {
                "online": online.num_edges if online else 0,
                "star": star.num_edges if star else 0,
                "indexed": indexed.num_edges if indexed else 0,
                "naive": basic.num_edges if basic else 0,
            }
            assert len(set(sizes.values())) == 1, (side, q, tau_u, tau_l, sizes)


def test_index_roundtrip_on_zoo_dataset(writers, writers_index, tmp_path):
    path = tmp_path / "writers.json"
    writers_index.save(path)
    loaded = PMBCIndex.load(path)
    queries = top_degree_queries(writers, num_queries=5, seed=9)
    for side, q in queries:
        a = pmbc_index_query(writers_index, side, q, 2, 2)
        b = pmbc_index_query(loaded, side, q, 2, 2)
        assert (a.num_edges if a else 0) == (b.num_edges if b else 0)


def test_parallel_build_on_zoo_dataset(writers, writers_bounds, writers_index):
    parallel = build_index_parallel(
        writers, num_threads=3, bounds=writers_bounds
    )
    queries = top_degree_queries(writers, num_queries=6, seed=11)
    for side, q in queries:
        for tau_u, tau_l in ((1, 1), (3, 2)):
            a = pmbc_index_query(writers_index, side, q, tau_u, tau_l)
            b = pmbc_index_query(parallel, side, q, tau_u, tau_l)
            assert (a.num_edges if a else 0) == (b.num_edges if b else 0)


def test_enumeration_oracle_agrees_on_small_subgraph(writers):
    """Cross-validate against iMBEA on a small induced subgraph."""
    from repro.graph.sampling import sample_edges

    small = sample_edges(writers, 0.15, seed=4)
    index = build_index_star(small)
    for side in Side:
        step = max(1, small.num_vertices_on(side) // 6)
        for q in range(0, small.num_vertices_on(side), step):
            for tau_u, tau_l in ((1, 1), (2, 2)):
                indexed = pmbc_index_query(index, side, q, tau_u, tau_l)
                via_enum = personalized_max_from_enumeration(
                    small, side, q, tau_u, tau_l
                )
                assert (indexed.num_edges if indexed else 0) == (
                    via_enum.num_edges if via_enum else 0
                )


def test_ic_and_ic_star_answer_identically(writers, writers_bounds, writers_index):
    """IC and IC* may pick different equal-size optima (and thus grow
    differently shaped trees), but every query answer size must agree."""
    plain = build_index(writers, bounds=writers_bounds)
    queries = top_degree_queries(writers, num_queries=10, seed=13)
    for side, q in queries:
        for tau_u, tau_l in ((1, 1), (2, 3), (4, 2), (6, 6)):
            a = pmbc_index_query(plain, side, q, tau_u, tau_l)
            b = pmbc_index_query(writers_index, side, q, tau_u, tau_l)
            assert (a.num_edges if a else 0) == (b.num_edges if b else 0)
