"""Unit tests for the Biclique value type."""

from __future__ import annotations

from repro.core.result import Biclique
from repro.graph.bipartite import Side


def test_shape_and_size():
    c = Biclique(upper=frozenset({1, 2}), lower=frozenset({0, 3, 4}))
    assert c.shape == (2, 3)
    assert c.num_edges == 6
    assert c.side_count(Side.UPPER) == 2
    assert c.side_count(Side.LOWER) == 3


def test_membership_and_constraints():
    c = Biclique(upper=frozenset({1}), lower=frozenset({2, 3}))
    assert c.contains(Side.UPPER, 1)
    assert not c.contains(Side.LOWER, 1)
    assert c.satisfies(1, 2)
    assert not c.satisfies(2, 1)


def test_dominates():
    big = Biclique(upper=frozenset({1, 2}), lower=frozenset({1, 2}))
    small = Biclique(upper=frozenset({1}), lower=frozenset({1, 2}))
    assert big.dominates(small)
    assert not small.dominates(big)
    assert big.dominates(big)


def test_signature_is_canonical():
    c1 = Biclique(upper=frozenset({2, 1}), lower=frozenset({5, 4}))
    c2 = Biclique(upper=frozenset({1, 2}), lower=frozenset({4, 5}))
    assert c1.signature() == c2.signature()
    assert c1 == c2
    assert hash(c1) == hash(c2)


def test_accepts_plain_sets():
    c = Biclique(upper={1, 2}, lower={3})
    assert isinstance(c.upper, frozenset)
    assert c.num_edges == 2


def test_validity_and_labels(paper_graph):
    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    def v(name):
        return paper_graph.vertex_by_label(Side.LOWER, name)

    good = Biclique(
        upper=frozenset({u("u1"), u("u2")}),
        lower=frozenset({v("v1"), v("v2")}),
    )
    assert good.is_valid_in(paper_graph)
    bad = Biclique(
        upper=frozenset({u("u1"), u("u6")}),
        lower=frozenset({v("v1")}),
    )
    assert not bad.is_valid_in(paper_graph)
    upper_labels, lower_labels = good.with_labels(paper_graph)
    assert upper_labels == {"u1", "u2"}
    assert lower_labels == {"v1", "v2"}


def test_repr():
    c = Biclique(upper=frozenset({1}), lower=frozenset({2, 3}))
    assert "1x2" in repr(c)
