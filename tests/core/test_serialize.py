"""Unit tests for the binary index format."""

from __future__ import annotations

import pytest

from repro.core import build_index_star, pmbc_index_query
from repro.core.serialize import (
    IndexFormatError,
    load_binary,
    save_binary,
)
from repro.graph.bipartite import Side
from repro.graph.generators import random_bipartite


def test_binary_roundtrip(paper_graph, tmp_path):
    index = build_index_star(paper_graph)
    path = tmp_path / "index.bin"
    written = save_binary(index, path)
    assert written == path.stat().st_size > 0
    loaded = load_binary(path)
    assert loaded.num_upper == index.num_upper
    assert loaded.num_lower == index.num_lower
    assert loaded.num_bicliques == index.num_bicliques
    assert loaded.num_tree_nodes == index.num_tree_nodes
    for side in Side:
        for q in range(paper_graph.num_vertices_on(side)):
            for tau_u, tau_l in ((1, 1), (2, 4), (5, 1)):
                a = pmbc_index_query(index, side, q, tau_u, tau_l)
                b = pmbc_index_query(loaded, side, q, tau_u, tau_l)
                if a is None:
                    assert b is None
                else:
                    assert a.num_edges == b.num_edges


def test_binary_smaller_than_json(tmp_path):
    graph = random_bipartite(20, 20, 0.3, seed=3)
    index = build_index_star(graph)
    json_path = tmp_path / "index.json"
    bin_path = tmp_path / "index.bin"
    index.save(json_path)
    save_binary(index, bin_path)
    assert bin_path.stat().st_size < json_path.stat().st_size


def test_binary_size_close_to_model(paper_graph, tmp_path):
    """On-disk size stays within 2.5x of the Table III word model."""
    index = build_index_star(paper_graph)
    path = tmp_path / "index.bin"
    written = save_binary(index, path)
    model = index.total_size_bytes()
    assert written <= 2.5 * model


def test_bad_magic(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"NOTANIDX" + b"\x00" * 64)
    with pytest.raises(IndexFormatError):
        load_binary(path)


def test_truncated_file(paper_graph, tmp_path):
    index = build_index_star(paper_graph)
    path = tmp_path / "index.bin"
    save_binary(index, path)
    data = path.read_bytes()
    truncated = tmp_path / "trunc.bin"
    truncated.write_bytes(data[: len(data) // 2])
    with pytest.raises(IndexFormatError):
        load_binary(truncated)
