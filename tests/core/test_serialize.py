"""Unit tests for index persistence: binary format + unified save/load."""

from __future__ import annotations

import pytest

from repro.core import build_index_star, pmbc_index_query
from repro.core.index import PMBCIndex
from repro.core.serialize import (
    IndexFormatError,
    load_binary,
    read_binary,
    save_binary,
    write_binary,
)
from repro.graph.bipartite import Side
from repro.graph.generators import random_bipartite


def _assert_same_answers(index, loaded, graph):
    assert loaded.num_upper == index.num_upper
    assert loaded.num_lower == index.num_lower
    assert loaded.num_bicliques == index.num_bicliques
    assert loaded.num_tree_nodes == index.num_tree_nodes
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            for tau_u, tau_l in ((1, 1), (2, 4), (5, 1)):
                a = pmbc_index_query(index, side, q, tau_u, tau_l)
                b = pmbc_index_query(loaded, side, q, tau_u, tau_l)
                if a is None:
                    assert b is None
                else:
                    assert a.num_edges == b.num_edges


def test_binary_roundtrip(paper_graph, tmp_path):
    index = build_index_star(paper_graph)
    path = tmp_path / "index.bin"
    written = write_binary(index, path)
    assert written == path.stat().st_size > 0
    loaded = read_binary(path)
    _assert_same_answers(index, loaded, paper_graph)


def test_unified_save_auto_detects_format_by_extension(
    paper_graph, tmp_path
):
    from repro.core.serialize import MAGIC

    index = build_index_star(paper_graph)
    bin_path = tmp_path / "index.bin"
    json_path = tmp_path / "index.json"
    index.save(bin_path)  # .bin -> binary
    index.save(json_path)  # .json -> JSON
    assert bin_path.read_bytes().startswith(MAGIC)
    assert json_path.read_bytes().lstrip().startswith(b"{")


def test_unified_save_explicit_format_overrides_extension(
    paper_graph, tmp_path
):
    from repro.core.serialize import MAGIC

    index = build_index_star(paper_graph)
    path = tmp_path / "index.json"
    index.save(path, format="binary")
    assert path.read_bytes().startswith(MAGIC)
    with pytest.raises(ValueError):
        index.save(tmp_path / "x.bin", format="msgpack")


@pytest.mark.parametrize("suffix", ["bin", "pmbc", "pmbcidx", "json"])
def test_unified_load_reads_either_format(paper_graph, tmp_path, suffix):
    index = build_index_star(paper_graph)
    path = tmp_path / f"index.{suffix}"
    index.save(path)
    loaded = PMBCIndex.load(path)
    _assert_same_answers(index, loaded, paper_graph)


def test_save_binary_alias_warns_and_delegates(paper_graph, tmp_path):
    index = build_index_star(paper_graph)
    path = tmp_path / "index.bin"
    with pytest.warns(DeprecationWarning, match="save_binary"):
        written = save_binary(index, path)
    assert written == path.stat().st_size
    with pytest.warns(DeprecationWarning, match="load_binary"):
        loaded = load_binary(path)
    _assert_same_answers(index, loaded, paper_graph)


def test_binary_smaller_than_json(tmp_path):
    graph = random_bipartite(20, 20, 0.3, seed=3)
    index = build_index_star(graph)
    json_path = tmp_path / "index.json"
    bin_path = tmp_path / "index.bin"
    index.save(json_path)
    index.save(bin_path)
    assert bin_path.stat().st_size < json_path.stat().st_size


def test_binary_size_close_to_model(paper_graph, tmp_path):
    """On-disk size stays within 2.5x of the Table III word model."""
    index = build_index_star(paper_graph)
    path = tmp_path / "index.bin"
    written = write_binary(index, path)
    model = index.total_size_bytes()
    assert written <= 2.5 * model


def test_bad_magic(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"NOTANIDX" + b"\x00" * 64)
    with pytest.raises(IndexFormatError):
        read_binary(path)


def test_truncated_file(paper_graph, tmp_path):
    index = build_index_star(paper_graph)
    path = tmp_path / "index.bin"
    write_binary(index, path)
    data = path.read_bytes()
    truncated = tmp_path / "trunc.bin"
    truncated.write_bytes(data[: len(data) // 2])
    with pytest.raises(IndexFormatError):
        read_binary(truncated)
