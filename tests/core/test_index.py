"""Unit tests for the PMBC-Index structure, array and serialization."""

from __future__ import annotations

from repro.core import Biclique, build_index_star
from repro.core.index import (
    BicliqueArray,
    PMBCIndex,
    SearchTree,
    SearchTreeNode,
)
from repro.core.query import pmbc_index_query
from repro.graph.bipartite import Side


def test_biclique_array_deduplicates():
    array = BicliqueArray()
    a = Biclique(upper=frozenset({1, 2}), lower=frozenset({3}))
    b = Biclique(upper=frozenset({2, 1}), lower=frozenset({3}))
    c = Biclique(upper=frozenset({1}), lower=frozenset({3}))
    id_a, new_a = array.add(a)
    id_b, new_b = array.add(b)
    id_c, new_c = array.add(c)
    assert new_a and not new_b and new_c
    assert id_a == id_b != id_c
    assert len(array) == 2
    assert array[id_a] == a
    assert list(array) == [a, c]


def test_search_tree_root():
    tree = SearchTree()
    assert tree.root is None
    tree.nodes.append(SearchTreeNode(tau_u=1, tau_l=1))
    assert tree.root.tau_u == 1
    assert len(tree) == 1
    assert list(tree.walk()) == tree.nodes


def test_index_stats_and_sizes(paper_graph):
    index = build_index_star(paper_graph)
    stats = index.stats()
    assert stats["num_bicliques"] == index.num_bicliques > 0
    assert stats["num_tree_nodes"] == index.num_tree_nodes > 0
    assert stats["tree_size_bytes"] == index.num_tree_nodes * 5 * 8
    assert stats["array_size_bytes"] == sum(
        (len(b.upper) + len(b.lower) + 2) * 8 for b in index.array
    )
    assert (
        stats["total_size_bytes"]
        == stats["tree_size_bytes"] + stats["array_size_bytes"]
    )


def test_every_tree_node_points_to_valid_biclique(paper_graph):
    index = build_index_star(paper_graph)
    for side in Side:
        for v, tree in enumerate(index.trees[side]):
            for node in tree.walk():
                if node.biclique_id is None:
                    continue
                biclique = index.biclique(node.biclique_id)
                assert biclique.is_valid_in(paper_graph)
                assert biclique.contains(side, v)
                assert biclique.satisfies(node.tau_u, node.tau_l)


def test_tree_children_follow_lemma4(paper_graph):
    index = build_index_star(paper_graph)
    for side in Side:
        for tree in index.trees[side]:
            for node in tree.walk():
                if node.biclique_id is None:
                    assert node.left is None and node.right is None
                    continue
                biclique = index.biclique(node.biclique_id)
                num_u, num_l = biclique.shape
                if node.left is not None:
                    child = tree.nodes[node.left]
                    assert child.tau_u == num_u + 1
                    assert child.tau_l == node.tau_l
                if node.right is not None:
                    child = tree.nodes[node.right]
                    assert child.tau_u == node.tau_u
                    assert child.tau_l == num_l + 1


def test_tree_node_count_bound(paper_graph):
    """Lemma 5: |T_q| = O(deg(q)) — check the explicit 4*deg+1 form."""
    index = build_index_star(paper_graph)
    for side in Side:
        for v, tree in enumerate(index.trees[side]):
            deg = paper_graph.degree(side, v)
            assert len(tree) <= 4 * deg + 1


def test_save_load_roundtrip(paper_graph, tmp_path):
    index = build_index_star(paper_graph)
    path = tmp_path / "index.json"
    index.save(path)
    loaded = PMBCIndex.load(path)
    assert loaded.num_upper == index.num_upper
    assert loaded.num_lower == index.num_lower
    assert loaded.num_bicliques == index.num_bicliques
    assert loaded.num_tree_nodes == index.num_tree_nodes
    # Queries on the loaded index must match the original.
    for side in Side:
        for q in range(paper_graph.num_vertices_on(side)):
            for tau_u in (1, 2, 4):
                for tau_l in (1, 3):
                    a = pmbc_index_query(index, side, q, tau_u, tau_l)
                    b = pmbc_index_query(loaded, side, q, tau_u, tau_l)
                    if a is None:
                        assert b is None
                    else:
                        assert b is not None
                        assert a.num_edges == b.num_edges


def test_paper_root_bicliques(paper_graph):
    """The root of T_q stores C^q_{1,1}."""
    index = build_index_star(paper_graph)

    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    tree = index.tree(Side.UPPER, u("u1"))
    root_biclique = index.biclique(tree.root.biclique_id)
    assert root_biclique.shape == (4, 3)
    tree = index.tree(Side.UPPER, u("u7"))
    root_biclique = index.biclique(tree.root.biclique_id)
    assert root_biclique.shape == (3, 3)
