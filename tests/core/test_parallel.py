"""Unit tests for parallel construction and the Fig 8 schedule model."""

from __future__ import annotations

import pytest

from repro.core import (
    build_index_parallel,
    build_index_star,
    measure_task_costs,
    pmbc_index_query,
    simulate_parallel_schedule,
)
from repro.graph.bipartite import Side
from repro.graph.generators import random_bipartite


@pytest.mark.parametrize("num_threads", [1, 2, 4])
def test_parallel_build_matches_sequential(num_threads):
    graph = random_bipartite(10, 10, 0.4, seed=7)
    sequential = build_index_star(graph)
    parallel = build_index_parallel(graph, num_threads=num_threads)
    assert parallel.num_tree_nodes == sequential.num_tree_nodes
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            for tau_u, tau_l in ((1, 1), (2, 2), (3, 1), (1, 3)):
                a = pmbc_index_query(sequential, side, q, tau_u, tau_l)
                b = pmbc_index_query(parallel, side, q, tau_u, tau_l)
                assert (a.num_edges if a else 0) == (b.num_edges if b else 0)


def test_parallel_without_skyline(medium_planted_graph):
    parallel = build_index_parallel(
        medium_planted_graph, num_threads=3, use_skyline=False
    )
    sequential = build_index_star(medium_planted_graph)
    for q in range(0, medium_planted_graph.num_upper, 9):
        a = pmbc_index_query(parallel, Side.UPPER, q, 2, 2)
        b = pmbc_index_query(sequential, Side.UPPER, q, 2, 2)
        assert (a.num_edges if a else 0) == (b.num_edges if b else 0)


def test_parallel_validates_thread_count(paper_graph):
    with pytest.raises(ValueError):
        build_index_parallel(paper_graph, num_threads=0)


def test_schedule_simulation_basics():
    result = simulate_parallel_schedule([1.0, 1.0, 1.0, 1.0], 2)
    assert result.makespan == pytest.approx(2.0)
    assert result.speedup == pytest.approx(2.0)
    assert result.total_work == pytest.approx(4.0)


def test_schedule_simulation_skewed_tasks():
    # One dominating task bounds the makespan from below.
    result = simulate_parallel_schedule([10.0, 1.0, 1.0, 1.0], 4)
    assert result.makespan == pytest.approx(10.0)
    assert result.speedup == pytest.approx(13.0 / 10.0)


def test_schedule_monotone_in_workers():
    costs = [0.5, 0.2, 0.9, 0.1, 0.4, 0.7, 0.3] * 10
    previous = None
    for workers in (1, 2, 4, 8, 16):
        result = simulate_parallel_schedule(costs, workers)
        if previous is not None:
            assert result.makespan <= previous + 1e-12
        previous = result.makespan
    one = simulate_parallel_schedule(costs, 1)
    assert one.makespan == pytest.approx(sum(costs))


def test_schedule_edge_cases():
    empty = simulate_parallel_schedule([], 4)
    assert empty.makespan == 0.0
    assert empty.speedup == 4.0
    with pytest.raises(ValueError):
        simulate_parallel_schedule([1.0], 0)


def test_measure_task_costs(paper_graph):
    index, costs = measure_task_costs(paper_graph)
    assert len(costs) == paper_graph.num_vertices
    assert all(cost >= 0 for cost in costs)
    assert index.num_bicliques > 0
