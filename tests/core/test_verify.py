"""Unit tests for the answer verification utility."""

from __future__ import annotations

from repro.core import (
    Biclique,
    check_personalized_answer,
    pmbc_online,
)
from repro.graph.bipartite import Side


def _ids(graph, names, side):
    return frozenset(graph.vertex_by_label(side, n) for n in names)


def test_correct_answer_passes(paper_graph):
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    answer = pmbc_online(paper_graph, Side.UPPER, q, 1, 1)
    check = check_personalized_answer(
        paper_graph, Side.UPPER, q, 1, 1, answer, exact=True
    )
    assert check
    assert check.reasons == ()


def test_missing_query_vertex_detected(paper_graph):
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    wrong = Biclique(
        upper=_ids(paper_graph, ("u5", "u6", "u7"), Side.UPPER),
        lower=_ids(paper_graph, ("v4", "v5", "v6"), Side.LOWER),
    )
    check = check_personalized_answer(
        paper_graph, Side.UPPER, q, 1, 1, wrong
    )
    assert not check
    assert any("not in the answer" in r for r in check.reasons)


def test_constraint_violation_detected(paper_graph):
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    small = Biclique(
        upper=frozenset({q}),
        lower=_ids(paper_graph, ("v1",), Side.LOWER),
    )
    check = check_personalized_answer(
        paper_graph, Side.UPPER, q, 2, 2, small
    )
    assert not check
    assert any("violates constraints" in r for r in check.reasons)


def test_incomplete_subgraph_detected(paper_graph):
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    broken = Biclique(
        upper=_ids(paper_graph, ("u1", "u6"), Side.UPPER),
        lower=_ids(paper_graph, ("v1",), Side.LOWER),
    )
    check = check_personalized_answer(
        paper_graph, Side.UPPER, q, 1, 1, broken
    )
    assert not check
    assert any("complete" in r for r in check.reasons)


def test_suboptimal_answer_detected_with_exact(paper_graph):
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    suboptimal = Biclique(
        upper=_ids(paper_graph, ("u1", "u2"), Side.UPPER),
        lower=_ids(paper_graph, ("v1", "v2"), Side.LOWER),
    )
    # Structurally fine...
    assert check_personalized_answer(
        paper_graph, Side.UPPER, q, 1, 1, suboptimal
    )
    # ...but not the optimum.
    check = check_personalized_answer(
        paper_graph, Side.UPPER, q, 1, 1, suboptimal, exact=True
    )
    assert not check
    assert any("optimum" in r for r in check.reasons)


def test_none_answer(paper_graph):
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    # Infeasible constraints: None is the exact answer.
    assert check_personalized_answer(
        paper_graph, Side.UPPER, q, 6, 1, None, exact=True
    )
    # Feasible constraints: None is wrong under exact.
    check = check_personalized_answer(
        paper_graph, Side.UPPER, q, 1, 1, None, exact=True
    )
    assert not check
    # Without exact, None is accepted with a caveat.
    check = check_personalized_answer(
        paper_graph, Side.UPPER, q, 1, 1, None
    )
    assert check
    assert check.reasons
