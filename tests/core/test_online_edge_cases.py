"""Targeted edge-case tests for branches the main suites do not reach."""

from __future__ import annotations

from repro.core import Biclique, pmbc_online
from repro.core.online import _seed_to_local
from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.subgraph import two_hop_subgraph
from repro.mbc.progressive import SearchOptions, maximum_biclique_local


def test_seed_outside_two_hop_subgraph_is_ignored(paper_graph):
    """A (bogus) seed naming vertices outside H_q must be dropped, not
    crash or corrupt the answer."""
    q = paper_graph.vertex_by_label(Side.UPPER, "u7")
    u1 = paper_graph.vertex_by_label(Side.UPPER, "u1")
    v1 = paper_graph.vertex_by_label(Side.LOWER, "v1")
    # u1/v1 are not inside H_{u7} (u7's products are v4..v6).
    outside = Biclique(upper=frozenset({u1}), lower=frozenset({v1}))
    local = two_hop_subgraph(paper_graph, Side.UPPER, q)
    assert _seed_to_local(local, outside, Side.UPPER) is None
    result = pmbc_online(paper_graph, Side.UPPER, q, 1, 1, seed=outside)
    assert result.shape == (3, 3)


def test_isolated_query_vertex_returns_none():
    graph = BipartiteGraph([[0], []], num_lower=1)
    assert pmbc_online(graph, Side.UPPER, 1, 1, 1) is None


def test_z_prune_stops_anchored_search(paper_graph):
    """When the anchor's z bound cannot beat the seed, the search skips
    every round and returns the seed."""
    bounds = compute_bounds(paper_graph)
    q = paper_graph.vertex_by_label(Side.UPPER, "u6")  # z is small
    local = two_hop_subgraph(paper_graph, Side.UPPER, q)
    # Feed a fake "seed" with size equal to z_q: nothing can beat it.
    z_q = bounds.z_bound(Side.UPPER, q)
    u7 = paper_graph.vertex_by_label(Side.UPPER, "u7")
    seed_local_upper = frozenset(
        i
        for i, g in enumerate(local.upper_globals)
        if g in (q, u7, paper_graph.vertex_by_label(Side.UPPER, "u5"))
    )
    seed_local_lower = frozenset(range(local.num_lower))
    seed = (seed_local_upper, seed_local_lower)
    assert len(seed_local_upper) * len(seed_local_lower) == z_q == 9
    result = maximum_biclique_local(
        local, 1, 1, seed=seed, options=SearchOptions(bounds=bounds)
    )
    assert result == seed


def test_two_hop_subgraph_of_degree_zero_vertex():
    graph = BipartiteGraph([[0], []], num_lower=1)
    local = two_hop_subgraph(graph, Side.UPPER, 1)
    assert local.num_lower == 0
    assert local.num_upper == 1  # just q itself


def test_degree_sequence_decrement_path():
    """_capped_zipf_degrees must shrink an over-provisioned sequence."""
    import random

    from repro.graph.generators import _capped_zipf_degrees

    rng = random.Random(0)
    # n vertices with min degree 1 forces total >= n > m_target.
    degrees = _capped_zipf_degrees(10, 5, exponent=1.0, cap=3, rng=rng)
    assert len(degrees) == 10
    assert all(d >= 1 for d in degrees)
    # Cannot go below n (every vertex keeps >= 1).
    assert sum(degrees) == 10


def test_cli_bench_missing_script(monkeypatch, capsys):
    from repro import cli

    monkeypatch.setattr(
        cli, "__file__", "/nonexistent/site-packages/repro/cli.py"
    )
    code = cli.main(["bench", "--quick"])
    assert code == 2
    assert "not found" in capsys.readouterr().err
