"""Unit tests for the skyline maximal biclique inverted index S."""

from __future__ import annotations

from repro.core import Biclique, build_index_star
from repro.core.index import BicliqueArray
from repro.core.skyline import SkylineIndex
from repro.graph.bipartite import Side
from repro.graph.generators import complete_bipartite


def _make(graph=None):
    graph = graph or complete_bipartite(4, 4)
    array = BicliqueArray()
    return graph, array, SkylineIndex(graph, array)


def _register(array, skyline, upper, lower):
    biclique = Biclique(upper=frozenset(upper), lower=frozenset(lower))
    biclique_id, __ = array.add(biclique)
    skyline.update(biclique, biclique_id)
    return biclique


def test_lookup_empty_returns_none():
    __, __, skyline = _make()
    assert skyline.lookup(Side.UPPER, 0, 1, 1) is None


def test_lookup_respects_constraints():
    __, array, skyline = _make()
    _register(array, skyline, {0, 1}, {0, 1, 2})
    assert skyline.lookup(Side.UPPER, 0, 1, 1) is not None
    assert skyline.lookup(Side.UPPER, 0, 3, 1) is None
    assert skyline.lookup(Side.UPPER, 0, 2, 3) is not None
    # Vertex 3 is not a member.
    assert skyline.lookup(Side.UPPER, 3, 1, 1) is None


def test_lookup_returns_largest_valid():
    __, array, skyline = _make()
    _register(array, skyline, {0, 1, 2}, {0})  # 3 edges, shape (3,1)
    _register(array, skyline, {0}, {0, 1})  # 2 edges, shape (1,2)
    best = skyline.lookup(Side.UPPER, 0, 1, 1)
    assert best.num_edges == 3
    # With tau_l = 2 only the (1,2) qualifies.
    best = skyline.lookup(Side.UPPER, 0, 1, 2)
    assert best.shape == (1, 2)


def test_dominated_shapes_are_evicted():
    __, array, skyline = _make()
    _register(array, skyline, {0}, {0})  # (1,1)
    _register(array, skyline, {0, 1}, {0, 1})  # (2,2) dominates (1,1)
    entries = skyline.entries(Side.UPPER, 0)
    assert len(entries) == 1
    assert array[entries[0]].shape == (2, 2)


def test_dominating_insert_is_skipped():
    __, array, skyline = _make()
    _register(array, skyline, {0, 1}, {0, 1})
    _register(array, skyline, {0}, {0})  # dominated: must not be added
    assert len(skyline.entries(Side.UPPER, 0)) == 1


def test_incomparable_shapes_coexist():
    __, array, skyline = _make()
    _register(array, skyline, {0, 1, 2}, {0})  # (3,1)
    _register(array, skyline, {0}, {0, 1, 2})  # (1,3)
    assert len(skyline.entries(Side.UPPER, 0)) == 2
    assert len(skyline.entries(Side.LOWER, 0)) == 2


def test_lemma8_bound_during_real_build(medium_planted_graph):
    """|S[v]| <= deg(v) for every vertex (Lemma 8)."""
    graph = medium_planted_graph
    array = BicliqueArray()
    skyline = SkylineIndex(graph, array)
    from repro.core.construction import build_search_tree
    from repro.corenum.bounds import compute_bounds

    bounds = compute_bounds(graph)
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            build_search_tree(graph, side, q, array, bounds, skyline)
    for side in Side:
        for v in range(graph.num_vertices_on(side)):
            assert len(skyline.entries(side, v)) <= max(
                1, graph.degree(side, v)
            )


def test_locking_mode_behaves_identically():
    graph = complete_bipartite(3, 3)
    array = BicliqueArray()
    skyline = SkylineIndex(graph, array, locking=True)
    biclique = Biclique(upper=frozenset({0, 1}), lower=frozenset({0}))
    biclique_id, __ = array.add(biclique)
    skyline.update(biclique, biclique_id)
    assert skyline.lookup(Side.UPPER, 0, 1, 1) == biclique
