"""Unit tests for PMBC-OL and PMBC-OL* (the online query algorithms)."""

from __future__ import annotations

import pytest

from repro.core.online import pmbc_online, pmbc_online_star
from repro.core.result import Biclique
from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import Side
from repro.graph.generators import random_bipartite, star
from repro.mbc.oracle import personalized_max_brute


def u_id(graph, name):
    return graph.vertex_by_label(Side.UPPER, name)


def v_id(graph, name):
    return graph.vertex_by_label(Side.LOWER, name)


def test_paper_example_queries(paper_graph):
    cases = [
        ("u1", 1, 1, (4, 3)),
        ("u1", 5, 1, (5, 2)),
        ("u1", 1, 4, (2, 4)),
        ("u7", 1, 1, (3, 3)),
    ]
    for name, tau_u, tau_l, shape in cases:
        result = pmbc_online(paper_graph, Side.UPPER, u_id(paper_graph, name), tau_u, tau_l)
        assert result is not None
        assert result.shape == shape
        assert result.contains(Side.UPPER, u_id(paper_graph, name))
        assert result.is_valid_in(paper_graph)


def test_infeasible_query_returns_none(paper_graph):
    assert pmbc_online(paper_graph, Side.UPPER, 0, 6, 1) is None
    assert pmbc_online(paper_graph, Side.UPPER, 0, 1, 5) is None


def test_lower_side_queries(paper_graph):
    result = pmbc_online(paper_graph, Side.LOWER, v_id(paper_graph, "v5"), 1, 1)
    assert result is not None
    assert result.contains(Side.LOWER, v_id(paper_graph, "v5"))
    assert result.shape == (3, 3)


def test_invalid_arguments(paper_graph):
    with pytest.raises(ValueError):
        pmbc_online(paper_graph, Side.UPPER, 99, 1, 1)
    with pytest.raises(ValueError):
        pmbc_online(paper_graph, Side.UPPER, 0, 0, 1)
    with pytest.raises(ValueError):
        pmbc_online(paper_graph, Side.UPPER, 0, 1, 0)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_online_matches_oracle(seed):
    graph = random_bipartite(7, 7, 0.45, seed=seed)
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            if graph.degree(side, q) == 0:
                continue
            for tau_u, tau_l in ((1, 1), (2, 2), (3, 2), (2, 3)):
                got = pmbc_online(graph, side, q, tau_u, tau_l)
                expected = personalized_max_brute(graph, side, q, tau_u, tau_l)
                got_size = got.num_edges if got else 0
                exp_size = (
                    len(expected[0]) * len(expected[1]) if expected else 0
                )
                assert got_size == exp_size, (side, q, tau_u, tau_l)
                if got:
                    assert got.is_valid_in(graph)
                    assert got.contains(side, q)
                    assert got.satisfies(tau_u, tau_l)


@pytest.mark.parametrize("seed", [10, 11, 12])
def test_star_matches_plain(seed):
    graph = random_bipartite(8, 8, 0.4, seed=seed)
    bounds = compute_bounds(graph)
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            if graph.degree(side, q) == 0:
                continue
            for tau_u, tau_l in ((1, 1), (2, 2)):
                plain = pmbc_online(graph, side, q, tau_u, tau_l)
                fast = pmbc_online_star(
                    graph, side, q, tau_u, tau_l, bounds=bounds
                )
                plain_size = plain.num_edges if plain else 0
                fast_size = fast.num_edges if fast else 0
                assert plain_size == fast_size


def test_star_computes_bounds_on_demand(paper_graph):
    result = pmbc_online_star(paper_graph, Side.UPPER, 0, 1, 1)
    assert result is not None
    assert result.shape == (4, 3)


def test_seed_lower_bound_is_respected(paper_graph):
    """A provided optimal seed must be returned unchanged."""
    q = u_id(paper_graph, "u1")
    optimal = pmbc_online(paper_graph, Side.UPPER, q, 1, 1)
    again = pmbc_online(paper_graph, Side.UPPER, q, 1, 1, seed=optimal)
    assert again.num_edges == optimal.num_edges


def test_invalid_seed_is_ignored(paper_graph):
    """A seed violating the constraints must not corrupt the answer."""
    q = u_id(paper_graph, "u1")
    tiny = Biclique(
        upper=frozenset({q}), lower=frozenset({v_id(paper_graph, "v1")})
    )
    result = pmbc_online(paper_graph, Side.UPPER, q, 2, 2, seed=tiny)
    assert result is not None
    assert result.shape == (4, 3)


def test_star_query_on_a_star_graph():
    graph = star(5)
    result = pmbc_online(graph, Side.UPPER, 0, 1, 5)
    assert result is not None
    assert result.shape == (1, 5)
    leaf = pmbc_online(graph, Side.LOWER, 0, 1, 2)
    assert leaf is not None and leaf.shape == (1, 5)
    assert pmbc_online(graph, Side.LOWER, 0, 2, 1) is None
