"""Concurrency stress tests for the shared structures of Algorithm 6."""

from __future__ import annotations

import threading

from repro.core import Biclique
from repro.core.parallel import _LockedBicliqueArray
from repro.core.skyline import SkylineIndex
from repro.graph.generators import complete_bipartite
from repro.graph.bipartite import Side


def test_locked_array_concurrent_dedup():
    """Many threads adding overlapping bicliques: ids stay consistent
    and duplicates never enter the array."""
    array = _LockedBicliqueArray()
    bicliques = [
        Biclique(upper=frozenset({i % 7}), lower=frozenset({j % 5}))
        for i in range(7)
        for j in range(5)
    ]
    results: list[list[tuple[int, bool]]] = [[] for __ in range(8)]

    def worker(slot: int) -> None:
        for __ in range(50):
            for biclique in bicliques:
                results[slot].append(array.add(biclique))

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # Exactly 35 distinct bicliques, each with one stable id.
    assert len(array) == 35
    id_by_signature = {}
    for slot in results:
        for (biclique_id, __), biclique in zip(slot, bicliques * 50):
            signature = biclique.signature()
            id_by_signature.setdefault(signature, biclique_id)
            assert id_by_signature[signature] == biclique_id
    # "Newly added" fired exactly once per distinct biclique.
    new_count = sum(
        1 for slot in results for __, newly in slot if newly
    )
    assert new_count == 35


def test_locking_skyline_concurrent_updates():
    graph = complete_bipartite(8, 8)
    array = _LockedBicliqueArray()
    skyline = SkylineIndex(graph, array, locking=True)
    shapes = [(a, b) for a in range(1, 7) for b in range(1, 7)]

    def worker(offset: int) -> None:
        for a, b in shapes[offset:] + shapes[:offset]:
            biclique = Biclique(
                upper=frozenset(range(a)), lower=frozenset(range(b))
            )
            biclique_id, __ = array.add(biclique)
            skyline.update(biclique, biclique_id)
            skyline.lookup(Side.UPPER, 0, 1, 1)

    threads = [
        threading.Thread(target=worker, args=(i * 5,)) for i in range(6)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # Vertex 0 is in every shape; its skyline must reduce to the single
    # dominating (6,6) entry and stay an antichain.
    entries = [array[i] for i in skyline.entries(Side.UPPER, 0)]
    assert entries
    for i, first in enumerate(entries):
        for second in entries[i + 1 :]:
            assert not first.dominates(second)
            assert not second.dominates(first)
    assert any(e.shape == (6, 6) for e in entries)
