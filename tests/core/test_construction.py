"""Unit tests for PMBC-IC / PMBC-IC* construction."""

from __future__ import annotations

from repro.core import (
    build_index,
    build_index_star,
    pmbc_index_query,
    pmbc_online,
)
from repro.core.construction import vertex_constraint_limits
from repro.graph.bipartite import Side
from repro.graph.generators import star


def test_vertex_constraint_limits(paper_graph):
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    limit_u, limit_l = vertex_constraint_limits(paper_graph, Side.UPPER, q)
    # tau_l is capped by deg(u1) = 4; tau_u by the largest neighbor
    # degree (v1 and v2 have degree 5).
    assert limit_l == 4
    assert limit_u == 5
    v = paper_graph.vertex_by_label(Side.LOWER, "v5")
    limit_u, limit_l = vertex_constraint_limits(paper_graph, Side.LOWER, v)
    assert limit_u == 3  # deg(v5)
    assert limit_l == 5  # deg(u5)


def test_ic_and_ic_star_agree_on_query_answers(medium_planted_graph):
    graph = medium_planted_graph
    plain = build_index(graph)
    star_index = build_index_star(graph)
    for side in Side:
        step = max(1, graph.num_vertices_on(side) // 10)
        for q in range(0, graph.num_vertices_on(side), step):
            for tau_u, tau_l in ((1, 1), (2, 2), (3, 3), (4, 2)):
                a = pmbc_index_query(plain, side, q, tau_u, tau_l)
                b = pmbc_index_query(star_index, side, q, tau_u, tau_l)
                assert (a.num_edges if a else 0) == (
                    b.num_edges if b else 0
                ), (side, q, tau_u, tau_l)


def test_index_answers_match_online(medium_planted_graph):
    graph = medium_planted_graph
    index = build_index_star(graph)
    for side in Side:
        step = max(1, graph.num_vertices_on(side) // 8)
        for q in range(0, graph.num_vertices_on(side), step):
            for tau_u, tau_l in ((1, 1), (2, 3), (3, 2)):
                via_index = pmbc_index_query(index, side, q, tau_u, tau_l)
                via_online = pmbc_online(graph, side, q, tau_u, tau_l)
                assert (via_index.num_edges if via_index else 0) == (
                    via_online.num_edges if via_online else 0
                ), (side, q, tau_u, tau_l)


def test_instrumentation(paper_graph):
    index, stats = build_index_star(paper_graph, instrument=True)
    assert stats.seconds > 0
    assert stats.online_calls >= index.num_tree_nodes
    assert len(stats.per_vertex_seconds[Side.UPPER]) == paper_graph.num_upper
    assert len(stats.per_vertex_seconds[Side.LOWER]) == paper_graph.num_lower


def test_cost_sharing_seeds_hit(medium_planted_graph):
    """IC* must actually reuse previously computed bicliques."""
    __, stats = build_index_star(medium_planted_graph, instrument=True)
    assert stats.skyline_seed_hits > 0


def test_array_is_shared_across_vertices(paper_graph):
    """Multiple query vertices share one biclique instance in A
    (Lemma 10 / the p_c design); A must be smaller than the total
    number of non-empty tree nodes."""
    index = build_index_star(paper_graph)
    stored_nodes = sum(
        1
        for side in Side
        for tree in index.trees[side]
        for node in tree.walk()
        if node.biclique_id is not None
    )
    assert index.num_bicliques < stored_nodes


def test_total_biclique_bound(medium_planted_graph):
    """Lemma 10: |A| <= sum of degrees."""
    index = build_index_star(medium_planted_graph)
    degree_sum = sum(
        medium_planted_graph.degree(side, v)
        for side in Side
        for v in range(medium_planted_graph.num_vertices_on(side))
    )
    assert index.num_bicliques <= degree_sum


def test_star_graph_index():
    graph = star(4)
    index = build_index_star(graph)
    center = pmbc_index_query(index, Side.UPPER, 0, 1, 4)
    assert center is not None and center.shape == (1, 4)
    assert pmbc_index_query(index, Side.UPPER, 0, 2, 1) is None
    leaf = pmbc_index_query(index, Side.LOWER, 1, 1, 1)
    assert leaf is not None
    assert leaf.contains(Side.LOWER, 1)


def test_build_without_core_bounds_matches(paper_graph):
    """use_core_bounds=False (plain PMBC-OL inside) gives equal answers."""
    fast = build_index_star(paper_graph)
    slow = build_index_star(paper_graph, use_core_bounds=False)
    for side in Side:
        for q in range(paper_graph.num_vertices_on(side)):
            for tau_u, tau_l in ((1, 1), (2, 2), (5, 1), (1, 4)):
                a = pmbc_index_query(fast, side, q, tau_u, tau_l)
                b = pmbc_index_query(slow, side, q, tau_u, tau_l)
                assert (a.num_edges if a else 0) == (b.num_edges if b else 0)
