"""Unit tests for the basic (naive) index baseline."""

from __future__ import annotations

import pytest

from repro.core import build_naive_index, pmbc_index_query, build_index_star
from repro.core.naive_index import NaiveIndexTimeout
from repro.graph.bipartite import Side
from repro.graph.generators import random_bipartite
from repro.mbc.oracle import personalized_max_brute


@pytest.mark.parametrize("seed", [0, 1])
def test_naive_index_matches_oracle(seed):
    graph = random_bipartite(7, 7, 0.45, seed=seed)
    naive = build_naive_index(graph)
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            if graph.degree(side, q) == 0:
                continue
            for tau_u in range(1, 5):
                for tau_l in range(1, 5):
                    got = naive.query(side, q, tau_u, tau_l)
                    expected = personalized_max_brute(
                        graph, side, q, tau_u, tau_l
                    )
                    got_size = got.num_edges if got else 0
                    exp_size = (
                        len(expected[0]) * len(expected[1])
                        if expected
                        else 0
                    )
                    assert got_size == exp_size, (side, q, tau_u, tau_l)


def test_naive_matches_pmbc_index(paper_graph):
    naive = build_naive_index(paper_graph)
    index = build_index_star(paper_graph)
    for side in Side:
        for q in range(paper_graph.num_vertices_on(side)):
            for tau_u in range(1, 7):
                for tau_l in range(1, 6):
                    a = naive.query(side, q, tau_u, tau_l)
                    b = pmbc_index_query(index, side, q, tau_u, tau_l)
                    assert (a.num_edges if a else 0) == (
                        b.num_edges if b else 0
                    )


def test_naive_query_validation(paper_graph):
    naive = build_naive_index(paper_graph)
    with pytest.raises(ValueError):
        naive.query(Side.UPPER, 0, 0, 1)


def test_time_budget_triggers(medium_planted_graph):
    with pytest.raises(NaiveIndexTimeout):
        build_naive_index(medium_planted_graph, time_budget=0.0)


def test_naive_size_accounting(paper_graph):
    naive = build_naive_index(paper_graph)
    assert naive.size_bytes() > 0
    # The naive index stores at least as many bicliques as the
    # PMBC-Index (it has no tighter structure to avoid them).
    index = build_index_star(paper_graph)
    assert len(naive.array) >= index.num_bicliques
