"""Differential tests for the shared tree-invalidation rule.

The affected-set rule (:func:`repro.core.dynamic.edge_affected_sets`)
backs two consumers: :class:`~repro.core.dynamic.DynamicPMBCIndex`
*rebuilds* affected trees in place, and
:class:`repro.adaptive.PartialIndex` *evicts* them for the background
builder to repair.  Both paths must converge to the same answers as a
from-scratch :func:`~repro.core.construction_star.build_index_star`
over the mutated graph.
"""

from __future__ import annotations

import itertools

import pytest

from repro.adaptive import MISS, PartialIndex
from repro.core.construction import build_search_tree
from repro.core.construction_star import build_index_star
from repro.core.dynamic import DynamicPMBCIndex, edge_affected_sets
from repro.core.index import BicliqueArray
from repro.core.query import pmbc_index_query
from repro.graph.bipartite import Side

TAUS = tuple(itertools.product((1, 2, 3), (1, 2, 3)))


def answers_match(got, want):
    if want is None:
        return got is None
    return got is not None and got.signature() == want.signature()


def assert_full_parity(dynamic, graph):
    """Every vertex of ``dynamic`` answers like a from-scratch index."""
    scratch = build_index_star(graph)
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            for tau_u, tau_l in TAUS:
                got = dynamic.query(side, q, tau_u, tau_l)
                want = pmbc_index_query(scratch, side, q, tau_u, tau_l)
                assert answers_match(got, want), (
                    f"{side.value}:{q} τ=({tau_u},{tau_l}): "
                    f"{got} != {want}"
                )


# ----------------------------------------------------------------------
# dynamic rebuild path


def test_delete_then_rebuild_matches_scratch(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    u = 0
    v = paper_graph.neighbors(Side.UPPER, u)[0]
    rebuilt = dynamic.delete_edge(u, v)
    assert rebuilt > 0
    assert_full_parity(dynamic, dynamic.graph())


def test_insert_then_rebuild_matches_scratch(small_random_graph):
    dynamic = DynamicPMBCIndex(small_random_graph)
    # Find a missing edge to insert.
    u, v = next(
        (u, v)
        for u in range(small_random_graph.num_upper)
        for v in range(small_random_graph.num_lower)
        if not dynamic.has_edge(u, v)
    )
    assert dynamic.insert_edge(u, v) > 0
    assert_full_parity(dynamic, dynamic.graph())


def test_update_sequence_matches_scratch(small_random_graph):
    dynamic = DynamicPMBCIndex(small_random_graph)
    u = 0
    v = small_random_graph.neighbors(Side.UPPER, u)[0]
    dynamic.delete_edge(u, v)
    dynamic.insert_edge(u, v)  # reinsert the same edge
    assert_full_parity(dynamic, dynamic.graph())


# ----------------------------------------------------------------------
# adaptive evict-and-repair path


def resident_tree(graph, side, q):
    array = BicliqueArray()
    tree = build_search_tree(graph, side, q, array)
    return tree, list(array)


def fill_all(graph, partial):
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            partial.put(side, q, *resident_tree(graph, side, q))


def repair(graph, partial, dropped):
    """What the background builder does for still-hot dropped keys."""
    for side, q in dropped:
        partial.put(side, q, *resident_tree(graph, side, q))


def test_invalidated_then_rebuilt_tree_matches_scratch(paper_graph):
    partial = PartialIndex(budget_bytes=1 << 22)
    fill_all(paper_graph, partial)
    dynamic = DynamicPMBCIndex(paper_graph)
    u = 0
    v = paper_graph.neighbors(Side.UPPER, u)[0]
    # Invalidate against the pre-deletion graph (the dynamic module's
    # convention for deletions), then mutate and repair.
    dropped = partial.invalidate_edge(paper_graph, u, v)
    dynamic.delete_edge(u, v)
    mutated = dynamic.graph()
    repair(mutated, partial, dropped)

    scratch = build_index_star(mutated)
    for side in Side:
        for q in range(mutated.num_vertices_on(side)):
            for tau_u, tau_l in TAUS:
                got = partial.lookup(side, q, tau_u, tau_l)
                want = pmbc_index_query(scratch, side, q, tau_u, tau_l)
                assert got is not MISS
                assert answers_match(got, want)


def test_adaptive_eviction_set_equals_dynamic_rebuild_set(
    medium_planted_graph,
):
    graph = medium_planted_graph
    partial = PartialIndex(budget_bytes=1 << 24)
    fill_all(graph, partial)
    dynamic = DynamicPMBCIndex(graph)
    u = 1
    v = graph.neighbors(Side.UPPER, u)[0]

    dropped = set(partial.invalidate_edge(graph, u, v))
    rebuilt = dynamic.delete_edge(u, v)
    affected_upper, affected_lower = edge_affected_sets(
        graph.neighbors(Side.UPPER, u),
        graph.neighbors(Side.LOWER, v),
        u,
        v,
    )
    expected = {(Side.UPPER, x) for x in affected_upper} | {
        (Side.LOWER, x) for x in affected_lower
    }
    assert dropped == expected
    assert rebuilt == len(expected)


def test_stale_tree_would_answer_wrong(paper_graph):
    """The control: skipping invalidation really does corrupt answers.

    Deleting a hub edge without evicting affected trees leaves the
    partial index answering from the old graph — this documents why
    the eviction hook exists.
    """
    partial = PartialIndex(budget_bytes=1 << 22)
    fill_all(paper_graph, partial)
    dynamic = DynamicPMBCIndex(paper_graph)
    # Remove every edge of the highest-degree upper vertex: its old
    # tree cannot possibly stay correct.
    hub = max(
        range(paper_graph.num_upper),
        key=lambda x: paper_graph.degree(Side.UPPER, x),
    )
    dynamic.delete_vertex(Side.UPPER, hub)
    mutated = dynamic.graph()
    scratch = build_index_star(mutated)
    stale = partial.lookup(Side.UPPER, hub, 1, 1)
    fresh = pmbc_index_query(scratch, Side.UPPER, hub, 1, 1)
    assert fresh is None  # isolated vertex answers nothing
    assert stale is not None  # the stale tree still answers — wrongly


@pytest.mark.parametrize("as_insertion", (False, True))
def test_affected_sets_cover_all_answer_changes(
    small_random_graph, as_insertion
):
    """No vertex outside the affected sets changes its answer."""
    graph = small_random_graph
    dynamic = DynamicPMBCIndex(graph)
    if as_insertion:
        u, v = next(
            (u, v)
            for u in range(graph.num_upper)
            for v in range(graph.num_lower)
            if not dynamic.has_edge(u, v)
        )
        before = build_index_star(graph)
        dynamic.insert_edge(u, v)
        mutated = dynamic.graph()
        affected_upper, affected_lower = edge_affected_sets(
            mutated.neighbors(Side.UPPER, u),
            mutated.neighbors(Side.LOWER, v),
            u,
            v,
        )
    else:
        u = 0
        v = graph.neighbors(Side.UPPER, u)[0]
        before = build_index_star(graph)
        affected_upper, affected_lower = edge_affected_sets(
            graph.neighbors(Side.UPPER, u),
            graph.neighbors(Side.LOWER, v),
            u,
            v,
        )
        dynamic.delete_edge(u, v)
        mutated = dynamic.graph()
    after = build_index_star(mutated)
    affected = {(Side.UPPER, x) for x in affected_upper} | {
        (Side.LOWER, x) for x in affected_lower
    }
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            if (side, q) in affected:
                continue
            for tau_u, tau_l in TAUS:
                old = pmbc_index_query(before, side, q, tau_u, tau_l)
                new = pmbc_index_query(after, side, q, tau_u, tau_l)
                assert answers_match(new, old), (
                    f"unaffected {side.value}:{q} changed its answer"
                )
