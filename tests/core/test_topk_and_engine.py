"""Unit tests for the top-k index query and the caching query engine."""

from __future__ import annotations

import pytest

from repro.core import (
    PMBCQueryEngine,
    build_index_star,
    pmbc_index_query,
    pmbc_index_topk,
    pmbc_online,
)
from repro.core.online import pmbc_online_batch
from repro.core.query import QueryRequest
from repro.graph.bipartite import Side
from repro.graph.generators import random_bipartite
from repro.obs import SearchTrace, use_trace


# ----------------------------------------------------------------------
# pmbc_index_topk
# ----------------------------------------------------------------------
def test_topk_first_is_the_maximum(paper_graph):
    index = build_index_star(paper_graph)
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    top = pmbc_index_topk(index, Side.UPPER, q, 3)
    best = pmbc_index_query(index, Side.UPPER, q, 1, 1)
    assert top[0].num_edges == best.num_edges
    # Sorted descending, all distinct, all contain q.
    sizes = [c.num_edges for c in top]
    assert sizes == sorted(sizes, reverse=True)
    assert len({c.signature() for c in top}) == len(top)
    for c in top:
        assert c.contains(Side.UPPER, q)


def test_topk_respects_constraints(paper_graph):
    index = build_index_star(paper_graph)
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    top = pmbc_index_topk(index, Side.UPPER, q, 10, tau_u=1, tau_l=4)
    assert top  # the (2x4) exists
    for c in top:
        assert c.satisfies(1, 4)
    none = pmbc_index_topk(index, Side.UPPER, q, 5, tau_u=6, tau_l=1)
    assert none == []


def test_topk_k_truncation(paper_graph):
    index = build_index_star(paper_graph)
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    everything = pmbc_index_topk(index, Side.UPPER, q, 100)
    one = pmbc_index_topk(index, Side.UPPER, q, 1)
    assert len(one) == 1
    assert len(everything) >= 3  # u1 has several distinct maxima
    assert one[0] == everything[0]


def test_topk_validation(paper_graph):
    index = build_index_star(paper_graph)
    with pytest.raises(ValueError):
        pmbc_index_topk(index, Side.UPPER, 0, 0)
    with pytest.raises(ValueError):
        pmbc_index_topk(index, Side.UPPER, 0, 1, tau_u=0)
    with pytest.raises(ValueError):
        pmbc_index_topk(index, Side.UPPER, 99, 1)


# ----------------------------------------------------------------------
# PMBCQueryEngine
# ----------------------------------------------------------------------
def test_engine_matches_online(paper_graph):
    engine = PMBCQueryEngine(paper_graph)
    for side in Side:
        for q in range(paper_graph.num_vertices_on(side)):
            for tau_u, tau_l in ((1, 1), (2, 2), (5, 1), (1, 4)):
                got = engine.query(side, q, tau_u, tau_l)
                expected = pmbc_online(paper_graph, side, q, tau_u, tau_l)
                assert (got.num_edges if got else 0) == (
                    expected.num_edges if expected else 0
                )


def test_engine_caches_two_hop_subgraphs(paper_graph):
    engine = PMBCQueryEngine(paper_graph)
    engine.query(Side.UPPER, 0, 1, 1)
    assert engine.cache_misses == 1
    engine.query(Side.UPPER, 0, 2, 2)
    assert engine.cache_hits == 1
    engine.query(Side.UPPER, 1, 1, 1)
    assert engine.cache_misses == 2


def test_engine_lru_eviction():
    graph = random_bipartite(6, 6, 0.5, seed=1)
    engine = PMBCQueryEngine(graph, cache_size=2)
    engine.query(Side.UPPER, 0)
    engine.query(Side.UPPER, 1)
    engine.query(Side.UPPER, 2)  # evicts vertex 0
    engine.query(Side.UPPER, 0)
    assert engine.cache_misses == 4
    assert engine.cache_hits == 0


def test_engine_without_bounds(paper_graph):
    engine = PMBCQueryEngine(paper_graph, use_core_bounds=False)
    assert engine.bounds is None
    result = engine.query(Side.UPPER, 0, 1, 1)
    assert result.shape == (4, 3)


def test_engine_validation(paper_graph):
    with pytest.raises(ValueError):
        PMBCQueryEngine(paper_graph, cache_size=0)
    engine = PMBCQueryEngine(paper_graph)
    with pytest.raises(ValueError):
        engine.query(Side.UPPER, 99)
    with pytest.raises(ValueError):
        engine.query(Side.UPPER, 0, 0, 1)


def test_engine_cache_stats_snapshot():
    from repro.core import CacheStats

    graph = random_bipartite(6, 6, 0.5, seed=1)
    engine = PMBCQueryEngine(graph, cache_size=2)
    engine.query(Side.UPPER, 0)
    engine.query(Side.UPPER, 1)
    engine.query(Side.UPPER, 2)  # evicts vertex 0
    engine.query(Side.UPPER, 2)  # hit
    stats = engine.cache_stats()
    assert isinstance(stats, CacheStats)
    assert stats.hits == 1
    assert stats.misses == 3
    assert stats.evictions == 1
    assert stats.size == 2
    assert stats.capacity == 2
    assert stats.hit_rate == pytest.approx(0.25)
    assert CacheStats(0, 0, 0, 0, 2).hit_rate == 0.0


def test_engine_clear_cache_keeps_counters(paper_graph):
    engine = PMBCQueryEngine(paper_graph)
    engine.query(Side.UPPER, 0)
    engine.clear_cache()
    stats = engine.cache_stats()
    assert stats.size == 0
    assert stats.misses == 1
    engine.query(Side.UPPER, 0)  # re-extracts after clear
    assert engine.cache_misses == 2


def test_engine_thread_safe_under_concurrent_queries(paper_graph):
    import threading

    engine = PMBCQueryEngine(paper_graph, cache_size=3)
    expected = {
        (side, q): pmbc_online(paper_graph, side, q, 1, 1)
        for side in Side
        for q in range(paper_graph.num_vertices_on(side))
    }
    errors: list[BaseException] = []

    def worker(offset: int) -> None:
        keys = list(expected)
        keys = keys[offset:] + keys[:offset]
        try:
            for __ in range(5):
                for side, q in keys:
                    got = engine.query(side, q, 1, 1)
                    reference = expected[(side, q)]
                    assert (got.num_edges if got else 0) == (
                        reference.num_edges if reference else 0
                    )
        except BaseException as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i * 3,)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = engine.cache_stats()
    assert stats.size <= 3
    assert stats.hits + stats.misses == 8 * 5 * len(expected)


# ----------------------------------------------------------------------
# batch deduplication (shared packed search per distinct request)
# ----------------------------------------------------------------------
def _batch_trace(fn, *args, **kwargs):
    trace = SearchTrace()
    with use_trace(trace):
        results = fn(*args, **kwargs)
    return results, trace


def test_engine_batch_dedups_identical_requests(paper_graph):
    """Two identical requests in one batch share a single packed search.

    The node-count telemetry proves it: a batch with duplicates runs
    exactly the searches of its deduplicated request set, and every
    skipped duplicate is tallied by the ``batch_dedup`` counter.
    """
    request = QueryRequest(Side.UPPER, 0, 2, 2)
    reference, single = _batch_trace(
        PMBCQueryEngine(paper_graph).query_batch, [request]
    )
    results, trace = _batch_trace(
        PMBCQueryEngine(paper_graph).query_batch, [request, request, request]
    )
    assert [r.shape for r in results] == [reference[0].shape] * 3
    assert trace.counters["batch_dedup"] == 2
    assert trace.counters.get("bb_calls", 0) == single.counters.get("bb_calls", 0)
    assert trace.counters.get("bb_nodes", 0) == single.counters.get("bb_nodes", 0)
    assert (
        trace.counters["progressive_rounds"]
        == single.counters["progressive_rounds"]
    )


def test_engine_batch_dedup_keeps_distinct_requests_apart(paper_graph):
    """Requests differing in τ or objective never share an answer slot."""
    a = QueryRequest(Side.UPPER, 0, 1, 1)
    b = QueryRequest(Side.UPPER, 0, 2, 4)
    c = QueryRequest(Side.UPPER, 0, 1, 1, objective="balanced")
    engine = PMBCQueryEngine(paper_graph)
    results, trace = _batch_trace(engine.query_batch, [a, b, a, c, b])
    assert trace.counters["batch_dedup"] == 2
    for request, got in zip([a, b, a, c, b], results):
        want = engine.query(request)
        assert (got.shape if got else None) == (want.shape if want else None)


def test_online_batch_dedups_identical_requests(paper_graph):
    """pmbc_online_batch shares one search across duplicate requests."""
    request = QueryRequest(Side.LOWER, 1, 2, 2)
    __, single = _batch_trace(
        pmbc_online_batch, paper_graph, [request]
    )
    results, trace = _batch_trace(
        pmbc_online_batch, paper_graph, [request, request]
    )
    assert trace.counters["batch_dedup"] == 1
    assert trace.counters.get("bb_calls", 0) == single.counters.get("bb_calls", 0)
    assert trace.counters.get("bb_nodes", 0) == single.counters.get("bb_nodes", 0)
    assert results[0] == results[1]
