"""Unit tests for the top-k index query and the caching query engine."""

from __future__ import annotations

import pytest

from repro.core import (
    PMBCQueryEngine,
    build_index_star,
    pmbc_index_query,
    pmbc_index_topk,
    pmbc_online,
)
from repro.graph.bipartite import Side
from repro.graph.generators import random_bipartite


# ----------------------------------------------------------------------
# pmbc_index_topk
# ----------------------------------------------------------------------
def test_topk_first_is_the_maximum(paper_graph):
    index = build_index_star(paper_graph)
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    top = pmbc_index_topk(index, Side.UPPER, q, 3)
    best = pmbc_index_query(index, Side.UPPER, q, 1, 1)
    assert top[0].num_edges == best.num_edges
    # Sorted descending, all distinct, all contain q.
    sizes = [c.num_edges for c in top]
    assert sizes == sorted(sizes, reverse=True)
    assert len({c.signature() for c in top}) == len(top)
    for c in top:
        assert c.contains(Side.UPPER, q)


def test_topk_respects_constraints(paper_graph):
    index = build_index_star(paper_graph)
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    top = pmbc_index_topk(index, Side.UPPER, q, 10, tau_u=1, tau_l=4)
    assert top  # the (2x4) exists
    for c in top:
        assert c.satisfies(1, 4)
    none = pmbc_index_topk(index, Side.UPPER, q, 5, tau_u=6, tau_l=1)
    assert none == []


def test_topk_k_truncation(paper_graph):
    index = build_index_star(paper_graph)
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    everything = pmbc_index_topk(index, Side.UPPER, q, 100)
    one = pmbc_index_topk(index, Side.UPPER, q, 1)
    assert len(one) == 1
    assert len(everything) >= 3  # u1 has several distinct maxima
    assert one[0] == everything[0]


def test_topk_validation(paper_graph):
    index = build_index_star(paper_graph)
    with pytest.raises(ValueError):
        pmbc_index_topk(index, Side.UPPER, 0, 0)
    with pytest.raises(ValueError):
        pmbc_index_topk(index, Side.UPPER, 0, 1, tau_u=0)
    with pytest.raises(ValueError):
        pmbc_index_topk(index, Side.UPPER, 99, 1)


# ----------------------------------------------------------------------
# PMBCQueryEngine
# ----------------------------------------------------------------------
def test_engine_matches_online(paper_graph):
    engine = PMBCQueryEngine(paper_graph)
    for side in Side:
        for q in range(paper_graph.num_vertices_on(side)):
            for tau_u, tau_l in ((1, 1), (2, 2), (5, 1), (1, 4)):
                got = engine.query(side, q, tau_u, tau_l)
                expected = pmbc_online(paper_graph, side, q, tau_u, tau_l)
                assert (got.num_edges if got else 0) == (
                    expected.num_edges if expected else 0
                )


def test_engine_caches_two_hop_subgraphs(paper_graph):
    engine = PMBCQueryEngine(paper_graph)
    engine.query(Side.UPPER, 0, 1, 1)
    assert engine.cache_misses == 1
    engine.query(Side.UPPER, 0, 2, 2)
    assert engine.cache_hits == 1
    engine.query(Side.UPPER, 1, 1, 1)
    assert engine.cache_misses == 2


def test_engine_lru_eviction():
    graph = random_bipartite(6, 6, 0.5, seed=1)
    engine = PMBCQueryEngine(graph, cache_size=2)
    engine.query(Side.UPPER, 0)
    engine.query(Side.UPPER, 1)
    engine.query(Side.UPPER, 2)  # evicts vertex 0
    engine.query(Side.UPPER, 0)
    assert engine.cache_misses == 4
    assert engine.cache_hits == 0


def test_engine_without_bounds(paper_graph):
    engine = PMBCQueryEngine(paper_graph, use_core_bounds=False)
    assert engine.bounds is None
    result = engine.query(Side.UPPER, 0, 1, 1)
    assert result.shape == (4, 3)


def test_engine_validation(paper_graph):
    with pytest.raises(ValueError):
        PMBCQueryEngine(paper_graph, cache_size=0)
    engine = PMBCQueryEngine(paper_graph)
    with pytest.raises(ValueError):
        engine.query(Side.UPPER, 99)
    with pytest.raises(ValueError):
        engine.query(Side.UPPER, 0, 0, 1)


def test_engine_cache_stats_snapshot():
    from repro.core import CacheStats

    graph = random_bipartite(6, 6, 0.5, seed=1)
    engine = PMBCQueryEngine(graph, cache_size=2)
    engine.query(Side.UPPER, 0)
    engine.query(Side.UPPER, 1)
    engine.query(Side.UPPER, 2)  # evicts vertex 0
    engine.query(Side.UPPER, 2)  # hit
    stats = engine.cache_stats()
    assert isinstance(stats, CacheStats)
    assert stats.hits == 1
    assert stats.misses == 3
    assert stats.evictions == 1
    assert stats.size == 2
    assert stats.capacity == 2
    assert stats.hit_rate == pytest.approx(0.25)
    assert CacheStats(0, 0, 0, 0, 2).hit_rate == 0.0


def test_engine_clear_cache_keeps_counters(paper_graph):
    engine = PMBCQueryEngine(paper_graph)
    engine.query(Side.UPPER, 0)
    engine.clear_cache()
    stats = engine.cache_stats()
    assert stats.size == 0
    assert stats.misses == 1
    engine.query(Side.UPPER, 0)  # re-extracts after clear
    assert engine.cache_misses == 2


def test_engine_thread_safe_under_concurrent_queries(paper_graph):
    import threading

    engine = PMBCQueryEngine(paper_graph, cache_size=3)
    expected = {
        (side, q): pmbc_online(paper_graph, side, q, 1, 1)
        for side in Side
        for q in range(paper_graph.num_vertices_on(side))
    }
    errors: list[BaseException] = []

    def worker(offset: int) -> None:
        keys = list(expected)
        keys = keys[offset:] + keys[:offset]
        try:
            for __ in range(5):
                for side, q in keys:
                    got = engine.query(side, q, 1, 1)
                    reference = expected[(side, q)]
                    assert (got.num_edges if got else 0) == (
                        reference.num_edges if reference else 0
                    )
        except BaseException as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i * 3,)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = engine.cache_stats()
    assert stats.size <= 3
    assert stats.hits + stats.misses == 8 * 5 * len(expected)
