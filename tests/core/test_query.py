"""Unit tests for PMBC-IQ (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core import build_index, build_index_star, pmbc_index_query
from repro.graph.bipartite import Side
from repro.graph.generators import random_bipartite
from repro.mbc.oracle import personalized_max_brute


def test_paper_example_walkthrough(paper_graph):
    """Example 3: query (u1, 2, 4) descends to the (1,4) child."""
    index = build_index_star(paper_graph)
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    result = pmbc_index_query(index, Side.UPPER, q, 2, 4)
    assert result is not None
    assert result.shape == (2, 4)


def test_infeasible_query_returns_none(paper_graph):
    index = build_index_star(paper_graph)
    q = paper_graph.vertex_by_label(Side.UPPER, "u1")
    assert pmbc_index_query(index, Side.UPPER, q, 6, 1) is None
    assert pmbc_index_query(index, Side.UPPER, q, 1, 5) is None


def test_invalid_arguments(paper_graph):
    index = build_index_star(paper_graph)
    with pytest.raises(ValueError):
        pmbc_index_query(index, Side.UPPER, 0, 0, 1)
    with pytest.raises(ValueError):
        pmbc_index_query(index, Side.UPPER, 99, 1, 1)


@pytest.mark.parametrize("builder", [build_index, build_index_star])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_index_query_matches_oracle(builder, seed):
    graph = random_bipartite(7, 7, 0.45, seed=seed)
    index = builder(graph)
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            if graph.degree(side, q) == 0:
                continue
            for tau_u in range(1, 5):
                for tau_l in range(1, 5):
                    got = pmbc_index_query(index, side, q, tau_u, tau_l)
                    expected = personalized_max_brute(
                        graph, side, q, tau_u, tau_l
                    )
                    got_size = got.num_edges if got else 0
                    exp_size = (
                        len(expected[0]) * len(expected[1])
                        if expected
                        else 0
                    )
                    assert got_size == exp_size, (side, q, tau_u, tau_l)
                    if got:
                        assert got.contains(side, q)
                        assert got.satisfies(tau_u, tau_l)
                        assert got.is_valid_in(graph)


def test_monotonicity_along_constraints(paper_graph):
    """Lemma 2 at query level: tighter constraints never grow the answer."""
    index = build_index_star(paper_graph)
    for side in Side:
        for q in range(paper_graph.num_vertices_on(side)):
            previous = None
            for tau in range(1, 6):
                result = pmbc_index_query(index, side, q, tau, 1)
                size = result.num_edges if result else 0
                if previous is not None:
                    assert size <= previous
                previous = size


def test_query_on_isolated_vertex_tree():
    """A vertex that lost all edges has an empty tree and returns None."""
    from repro.core.index import BicliqueArray, PMBCIndex, SearchTree

    index = PMBCIndex(
        num_upper=1,
        num_lower=1,
        trees={Side.UPPER: [SearchTree()], Side.LOWER: [SearchTree()]},
        array=BicliqueArray(),
    )
    assert pmbc_index_query(index, Side.UPPER, 0, 1, 1) is None
